// The paper's Section 4.2 workflow as a program: detect behavioral-
// clustering anomalies by combining the B and M perspectives, then heal
// them by re-executing only the suspect samples.
//
//   $ ./anomaly_healing
#include <iostream>

#include "analysis/anomaly.hpp"
#include "analysis/healing.hpp"
#include "report/reports.hpp"
#include "scenario/paper.hpp"

int main() {
  using namespace repro;
  scenario::ScenarioOptions options;
  options.scale = 0.15;
  options.seed = 11;
  std::cout << "building a reduced-scale dataset (seed " << options.seed
            << ", scale " << options.scale << ")...\n\n";
  scenario::Dataset ds = scenario::build_paper_dataset(options);

  std::cout << "B-clusters: " << ds.b.cluster_count() << " ("
            << ds.b.singleton_count() << " singletons)\n";

  // Cross the behavioral view with the static M-clusters: a singleton
  // B-cluster whose M-cluster is full of well-behaved samples is a
  // misclassification, not a new threat.
  const auto report =
      analysis::detect_singleton_anomalies(ds.db, ds.e, ds.p, ds.m, ds.b);
  std::cout << report::figure4(report) << "\n";

  std::cout << "re-executing the " << report.anomalous_samples.size()
            << " suspect samples three times each and intersecting their "
               "profiles...\n";
  const auto outcome = analysis::heal_by_reexecution(
      ds.db, ds.landscape, ds.environment, report.anomalous_samples, ds.b,
      /*reruns=*/3);
  std::cout << report::healing(outcome.report) << "\n";

  const auto remaining = analysis::detect_singleton_anomalies(
      ds.db, ds.e, ds.p, ds.m, outcome.after);
  std::cout << "anomalies before healing: " << report.anomalies
            << ", after: " << remaining.anomalies << "\n"
            << "(the survivors are genuinely rare samples in 1-1 "
               "correspondence with their\n M-cluster -- the paper's "
               "'infrequent malware' case, not artifacts)\n";
  return 0;
}
