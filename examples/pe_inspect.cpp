// Static analysis on one synthetic sample: build a PE the way the
// landscape does, then inspect it with the parser, the libmagic-style
// detector, the peHash baseline, and the EPM mu features — the same
// toolchain the clustering pipeline runs on every collected binary.
//
//   $ ./pe_inspect
#include <iostream>

#include "cluster/feature.hpp"
#include "cluster/pehash.hpp"
#include "malware/binary.hpp"
#include "malware/landscape.hpp"
#include "pe/filetype.hpp"
#include "pe/parser.hpp"
#include "util/hex.hpp"
#include "util/md5.hpp"
#include "util/strings.hpp"

int main() {
  using namespace repro;

  // The paper's "M-cluster 13" shape: 59904 bytes, 3 sections,
  // KERNEL32-only imports, linker 9.2.
  malware::MalwareVariant variant;
  variant.name = "demo";
  variant.seed = 2024;
  variant.polymorphism = malware::PolymorphismMode::kPerSource;
  malware::PeShape shape;
  shape.section_names = {".text", "rdata", ".data"};
  shape.import_section = 1;
  shape.imports = {{"KERNEL32.dll", {"GetProcAddress", "LoadLibraryA"}}};
  shape.target_file_size = 59904;
  variant.pe_template = malware::make_pe_template(shape, variant.seed);
  variant.mutable_sections =
      malware::mutable_section_indices(variant.pe_template);

  const auto binary =
      malware::realize_binary(variant, net::Ipv4{81, 57, 112, 9}, 0);

  std::cout << "== header bytes ==\n";
  std::cout << hex_encode(std::span<const std::uint8_t>{binary.data(), 64})
            << "...\n\n";

  std::cout << "== parsed structure ==\n";
  const pe::PeInfo info = pe::parse_pe(binary);
  std::cout << "machine: " << info.machine << " (0x" << std::hex
            << info.machine << std::dec << ")\n"
            << "linker:  " << static_cast<int>(info.linker_major) << "."
            << static_cast<int>(info.linker_minor) << "\n"
            << "os:      " << info.os_major << "." << info.os_minor << "\n";
  for (const pe::SectionInfo& section : info.sections) {
    std::cout << "section '" << escape_bytes(section.raw_name) << "' vsize "
              << section.virtual_size << " raw " << section.raw_size << " @ "
              << section.raw_offset << "\n";
  }
  for (const pe::ImportInfo& import : info.imports) {
    std::cout << "imports " << import.dll << ":";
    for (const auto& symbol : import.symbols) std::cout << " " << symbol;
    std::cout << "\n";
  }

  std::cout << "\n== identification ==\n";
  std::cout << "md5:    " << Md5::hex_digest(binary) << "\n"
            << "type:   " << pe::detect_file_type(binary) << "\n"
            << "pehash: " << cluster::pehash(binary).value_or("(n/a)")
            << "\n";

  std::cout << "\n== EPM mu features (Table 1) ==\n";
  honeypot::MalwareSample sample;
  sample.content = binary;
  sample.md5 = Md5::hex_digest(binary);
  const auto features = cluster::extract_mu(sample);
  const auto schema = cluster::mu_schema();
  for (std::size_t f = 0; f < schema.size(); ++f) {
    std::cout << "  " << schema.names[f] << " = " << features.values[f]
              << "\n";
  }

  std::cout << "\n== per-source polymorphism ==\n";
  const auto same_source =
      malware::realize_binary(variant, net::Ipv4{81, 57, 112, 9}, 7);
  const auto other_source =
      malware::realize_binary(variant, net::Ipv4{9, 8, 7, 6}, 0);
  std::cout << "same source again:  " << Md5::hex_digest(same_source)
            << (same_source == binary ? "  (identical)" : "  (DIFFERENT?)")
            << "\n"
            << "different source:   " << Md5::hex_digest(other_source)
            << (other_source != binary ? "  (mutated)" : "  (SAME?)") << "\n"
            << "pehash of mutated:  "
            << cluster::pehash(other_source).value_or("(n/a)")
            << (cluster::pehash(other_source) == cluster::pehash(binary)
                    ? "  (structure unchanged)"
                    : "  (structure changed?)")
            << "\n";
  return 0;
}
