// Tracking bot-herders with propagation context: the paper's Section
// 4.3 workflow. Picks the B-clusters split across the most M-clusters,
// prints their Figure-5 context (population, IP spread, activity), and
// correlates IRC C&C coordinates across M-clusters (Table 2).
//
//   $ ./botnet_tracking
#include <iostream>

#include "analysis/c2.hpp"
#include "analysis/context.hpp"
#include "report/landscape_report.hpp"
#include "report/reports.hpp"
#include "scenario/paper.hpp"

int main() {
  using namespace repro;
  scenario::ScenarioOptions options;
  options.scale = 0.2;
  options.seed = 23;
  std::cout << "building a reduced-scale dataset (seed " << options.seed
            << ", scale " << options.scale << ")...\n\n";
  const scenario::Dataset ds = scenario::build_paper_dataset(options);

  const auto split = analysis::most_split_b_clusters(ds.db, ds.m, ds.b, 3);
  for (const int b_cluster : split) {
    const auto context = analysis::propagation_context(
        ds.db, ds.m, ds.b, b_cluster, ds.landscape.start_time,
        ds.landscape.weeks);
    std::cout << report::figure5(context);
    if (!context.per_m_cluster.empty()) {
      const auto& lead = context.per_m_cluster.front();
      std::cout << "reading: "
                << (lead.ip_entropy > 0.5
                        ? "widespread population, long-lived activity -> "
                          "self-propagating worm;\nthe M-cluster split "
                          "reflects patches/recompilations coexisting in "
                          "the wild\n"
                        : "small population in specific networks, bursty "
                          "coordinated activity ->\nbotnet under C&C "
                          "control\n")
                << "\n";
    }
  }

  std::cout << report::table2(analysis::correlate_irc(ds.db, ds.m, ds.b));

  // Finally, the analyst-facing synthesis of all four perspectives.
  report::LandscapeReportOptions report_options;
  report_options.top = 3;
  report_options.origin = ds.landscape.start_time;
  report_options.weeks = ds.landscape.weeks;
  std::cout << "\n"
            << report::landscape_report(ds.db, ds.e, ds.p, ds.m, ds.b,
                                        report_options);
  return 0;
}
