// Export a generated dataset to CSV/JSONL for downstream tooling
// (pandas, SQL, plotting). Writes four files into the given directory
// (default: current directory) and reloads the events table to verify
// the roundtrip.
//
//   $ ./dataset_export [output-dir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "io/csv_export.hpp"
#include "io/csv_import.hpp"
#include "scenario/paper.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";

  scenario::ScenarioOptions options;
  options.scale = 0.1;
  std::cout << "building a reduced-scale dataset (scale " << options.scale
            << ")...\n";
  const scenario::Dataset ds = scenario::build_paper_dataset(options);

  const auto write_file = [&](const std::string& name, auto&& writer) {
    const std::filesystem::path path = out_dir / name;
    std::ofstream file{path};
    if (!file) {
      std::cerr << "cannot open " << path << " for writing\n";
      std::exit(1);
    }
    writer(file);
    std::cout << "wrote " << path.string() << " ("
              << std::filesystem::file_size(path) << " bytes)\n";
  };

  write_file("events.csv", [&](std::ostream& os) {
    io::write_events_csv(os, ds.db, ds.e, ds.p, ds.m, ds.b);
  });
  write_file("samples.csv", [&](std::ostream& os) {
    io::write_samples_csv(os, ds.db, ds.b);
  });
  write_file("clusters_mu.csv", [&](std::ostream& os) {
    io::write_clusters_csv(os, ds.m);
  });
  write_file("profiles.jsonl", [&](std::ostream& os) {
    io::write_profiles_jsonl(os, ds.db);
  });

  // Verify the roundtrip.
  std::ifstream events_file{out_dir / "events.csv"};
  const auto records = io::read_events_csv(events_file);
  std::cout << "reloaded " << records.size() << " event rows ("
            << (records.size() == ds.db.events().size() ? "matches"
                                                        : "MISMATCH")
            << " the in-memory dataset)\n";
  return 0;
}
