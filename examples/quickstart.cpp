// Quickstart: the five-minute tour of the library.
//
// Builds a small synthetic malware landscape, observes it with a
// simulated SGNET deployment, runs EPM clustering on the three
// dimensions and behavioral clustering on the sandbox profiles, and
// prints what each perspective sees.
//
//   $ ./quickstart
#include <iostream>

#include "analysis/bview.hpp"
#include "analysis/graph.hpp"
#include "cluster/epm.hpp"
#include "cluster/feature.hpp"
#include "honeypot/deployment.hpp"
#include "honeypot/enrichment.hpp"
#include "malware/binary.hpp"
#include "malware/landscape.hpp"
#include "scenario/paper.hpp"

int main() {
  using namespace repro;

  // 1. A world to observe. The paper-scale preset scaled down to a few
  // hundred events keeps this example fast; build your own
  // malware::Landscape for full control (see honeypot_walkthrough.cpp).
  scenario::ScenarioOptions options;
  options.scale = 0.05;
  options.seed = 42;
  const malware::Landscape landscape =
      scenario::make_paper_landscape(options);
  const sandbox::Environment environment =
      scenario::make_paper_environment(landscape);
  std::cout << "landscape: " << landscape.families.size() << " families, "
            << landscape.variants.size() << " variants, "
            << landscape.exploits.size() << " exploit implementations, "
            << landscape.payloads.size() << " payload configurations\n";

  // 2. Observe it: 150 honeypot IPs in 30 network locations, Jan 2008
  // to May 2009.
  honeypot::DeploymentConfig config;
  config.seed = options.seed;
  honeypot::Deployment deployment{landscape, config};
  honeypot::EventDatabase db = deployment.run();
  std::cout << "observed " << db.events().size() << " code-injection attacks"
            << ", collected " << db.samples().size() << " distinct binaries\n";

  // 3. Enrich: sandbox profiles (Anubis stand-in) + AV labels
  // (VirusTotal stand-in).
  const auto stats = honeypot::enrich_database(db, landscape, environment);
  std::cout << "sandbox executed " << stats.executed << " samples ("
            << stats.failed << " truncated/corrupted downloads failed)\n\n";

  // 4. Cluster each perspective.
  const auto e = cluster::epm_cluster(cluster::build_epsilon_data(db));
  const auto p = cluster::epm_cluster(cluster::build_pi_data(db));
  const auto m = cluster::epm_cluster(cluster::build_mu_data(db));
  const auto b = analysis::BehavioralView::build(db);
  std::cout << "E-clusters (exploit dialogs):      " << e.cluster_count()
            << "\n"
            << "P-clusters (injected payloads):    " << p.cluster_count()
            << "\n"
            << "M-clusters (static binary shape):  " << m.cluster_count()
            << "\n"
            << "B-clusters (runtime behavior):     " << b.cluster_count()
            << " (" << b.singleton_count() << " singletons)\n\n";

  // 5. Look at one pattern from each dimension.
  if (!p.patterns.empty()) {
    std::cout << "largest P-cluster pattern:\n";
    std::size_t largest = 0;
    for (std::size_t i = 1; i < p.members.size(); ++i) {
      if (p.members[i].size() > p.members[largest].size()) largest = i;
    }
    std::cout << p.patterns[largest].describe(p.schema) << "\n\n";
  }

  // 6. Combine the perspectives: the Figure-3 style graph.
  const auto graph = analysis::build_relationship_graph(db, e, p, m, b, 10);
  std::cout << "relationship graph (clusters with >=10 events): "
            << graph.nodes.size() << " nodes, " << graph.edges.size()
            << " edges\n"
            << "payloads shared by several exploits: "
            << graph.shared_p_count() << "\n"
            << "behaviors split across several static clusters: "
            << graph.split_b_count() << "\n";
  return 0;
}
