// A single attack, end to end, with every pipeline stage made visible:
// exploit dialog synthesis, ScriptGen FSM life-cycle (proxy -> refine
// -> autonomous), taint-guided payload stripping, Nepenthes-style
// shellcode analysis, download emulation, PE feature extraction.
//
// This mirrors the SGNET architecture of the paper's Figure 1.
//
//   $ ./honeypot_walkthrough
#include <iostream>

#include "honeypot/gateway.hpp"
#include "proto/incremental.hpp"
#include "malware/binary.hpp"
#include "malware/landscape.hpp"
#include "malware/payload_spec.hpp"
#include "pe/filetype.hpp"
#include "pe/parser.hpp"
#include "proto/services.hpp"
#include "shellcode/analyzer.hpp"
#include "shellcode/builder.hpp"
#include "util/hex.hpp"
#include "util/md5.hpp"
#include "util/strings.hpp"

int main() {
  using namespace repro;
  Rng rng{7};

  // --- The attacker side (ground truth the honeypot must rediscover).
  const auto exploit =
      proto::make_exploit_template(proto::ServiceKind::kSmb445, 3);
  malware::PayloadSpec payload_spec;  // PUSH-based download on tcp/9988
  malware::MalwareVariant worm;
  worm.name = "demo-worm";
  worm.seed = 99;
  worm.polymorphism = malware::PolymorphismMode::kPerInstance;
  malware::PeShape shape;
  shape.target_file_size = 59904;
  worm.pe_template = malware::make_pe_template(shape, worm.seed);
  worm.mutable_sections = malware::mutable_section_indices(worm.pe_template);

  const net::Ipv4 attacker{81, 57, 112, 9};
  const net::Ipv4 honeypot_ip{140, 20, 31, 10};

  std::cout << "== 1. attacker builds the injection ==\n";
  const auto intent = malware::realize_intent(payload_spec, attacker, rng);
  const auto shellcode_bytes =
      shellcode::build_shellcode(intent, payload_spec.encoder, rng);
  const auto conversation = proto::synthesize_attack(
      exploit, shellcode_bytes, attacker, honeypot_ip, rng);
  std::cout << "exploit '" << exploit.id << "' -> "
            << conversation.messages.size() << " messages on port "
            << conversation.dst_port << "; payload of "
            << shellcode_bytes.size() << " bytes\n";
  const auto& first = conversation.messages.front().bytes;
  std::cout << "first client bytes: "
            << escape_bytes(std::string{first.begin(),
                                        first.begin() + 40})
            << "...\n\n";

  std::cout << "== 2. sensor/gateway: ScriptGen FSM life-cycle ==\n";
  honeypot::Gateway gateway;
  const auto location = proto::payload_location(exploit);
  for (int attempt = 0; attempt < 5; ++attempt) {
    const auto fresh = proto::synthesize_attack(
        exploit, shellcode::build_shellcode(intent, payload_spec.encoder, rng),
        attacker, honeypot_ip, rng);
    const auto outcome = gateway.handle(fresh, location);
    std::cout << "attack " << attempt + 1 << ": "
              << (outcome.proxied
                      ? "proxied to sample factory (model immature), "
                        "ScriptGen refined"
                      : "handled autonomously, FSM path = " +
                            outcome.fsm_path)
              << "\n";
  }
  // Once mature, the sensor can also *answer* the attacker using the
  // learned model (ScriptGen's original purpose): play the dialog one
  // client message at a time and let the model supply the replies.
  {
    const auto probe = proto::synthesize_attack(
        exploit, shellcode::build_shellcode(intent, payload_spec.encoder, rng),
        attacker, honeypot_ip, rng);
    proto::Conversation dialog;
    dialog.dst_port = probe.dst_port;
    std::cout << "emulating the service from the learned model:\n";
    // Rebuild the per-port model the gateway trained (the gateway owns
    // its models; here we retrain a local one for display).
    proto::IncrementalFsm sensor_model{probe.dst_port};
    for (int i = 0; i < 4; ++i) {
      sensor_model.train(proto::strip_payload(
          proto::synthesize_attack(
              exploit,
              shellcode::build_shellcode(intent, payload_spec.encoder, rng),
              attacker, honeypot_ip, rng),
          location));
    }
    for (const proto::Bytes* client : probe.client_messages()) {
      proto::Message message;
      message.direction = proto::Message::Direction::kClientToServer;
      message.bytes = *client;
      dialog.messages.push_back(message);
      const auto reply = sensor_model.respond(dialog);
      std::cout << "  client " << client->size() << " bytes -> sensor "
                << (reply ? "replies '" +
                                escape_bytes(std::string{reply->begin(),
                                                         reply->end()}) +
                                "'"
                          : "would proxy")
                << "\n";
      if (reply) {
        proto::Message server;
        server.direction = proto::Message::Direction::kServerToClient;
        server.bytes = *reply;
        dialog.messages.push_back(server);
      }
    }
  }

  std::cout << "\n== 3. Nepenthes-style shellcode analysis ==\n";
  // The analyzer sees only raw bytes: locate the decoder, recover the
  // intent.
  std::vector<std::uint8_t> stream;
  for (const proto::Bytes* message : conversation.client_messages()) {
    stream.insert(stream.end(), message->begin(), message->end());
  }
  const auto analyzed = shellcode::analyze_shellcode(stream);
  if (!analyzed) {
    std::cout << "analysis failed (unexpected)\n";
    return 1;
  }
  std::cout << "protocol: " << shellcode::protocol_name(analyzed->protocol)
            << ", port: " << analyzed->port << ", interaction: "
            << shellcode::interaction_name(
                   shellcode::classify_interaction(*analyzed, attacker))
            << "\n\n";

  std::cout << "== 4. download emulation + mu feature extraction ==\n";
  for (int instance = 0; instance < 2; ++instance) {
    const auto binary = malware::realize_binary(
        worm, attacker, static_cast<std::uint64_t>(instance));
    const auto info = pe::parse_pe(binary);
    std::cout << "instance " << instance + 1 << ": md5 "
              << Md5::hex_digest(binary) << ", " << binary.size()
              << " bytes, " << info.sections.size() << " sections, linker "
              << info.linker_version() << ", type '"
              << pe::detect_file_type(binary) << "'\n";
  }
  std::cout << "(per-instance polymorphism: fresh MD5 every attack, PE "
               "header structure and\n file size invariant -- exactly what "
               "the mu-dimension EPM features key on)\n";
  return 0;
}
