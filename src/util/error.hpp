// Common error types used across the library.
//
// The library follows a simple rule: programming errors and violated
// preconditions throw std::logic_error subclasses; malformed external
// input (e.g. truncated PE images, undecodable shellcode) throws
// ParseError so callers can treat it as data-dependent and recover.
#pragma once

#include <stdexcept>
#include <string>

namespace repro {

/// Raised when externally supplied bytes cannot be parsed (truncated or
/// corrupted binaries, malformed conversations, undecodable shellcode).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a configuration is internally inconsistent (e.g. a
/// landscape referencing an unknown exploit id).
class ConfigError : public std::logic_error {
 public:
  explicit ConfigError(const std::string& what) : std::logic_error(what) {}
};

/// Raised when the operating system refuses an I/O operation (open,
/// write, fsync, rename). Environment-dependent and retryable, unlike
/// ParseError which indicates the bytes themselves are bad.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace repro
