// Simulation time.
//
// The paper's dataset covers January 2008 to May 2009. The simulator
// never reads the wall clock; all timestamps are SimTime values on an
// explicit simulated timeline, measured in seconds from the Unix epoch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace repro {

/// A point on the simulated timeline (seconds since the Unix epoch, UTC).
struct SimTime {
  std::int64_t seconds = 0;

  friend auto operator<=>(const SimTime&, const SimTime&) = default;
};

constexpr std::int64_t kSecondsPerDay = 86'400;
constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

/// Calendar date in UTC.
struct Date {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend auto operator<=>(const Date&, const Date&) = default;
};

/// Midnight UTC of the given calendar date.
[[nodiscard]] SimTime from_date(const Date& date) noexcept;

/// Calendar date containing the given time.
[[nodiscard]] Date to_date(SimTime time) noexcept;

/// Parse "YYYY-MM-DD". Throws ParseError on malformed input.
[[nodiscard]] SimTime parse_date(std::string_view text);

/// Render as "YYYY-MM-DD".
[[nodiscard]] std::string format_date(SimTime time);

/// Render as "D/M" the way the paper prints timeline entries (e.g. 15/7).
[[nodiscard]] std::string format_day_month(SimTime time);

/// Week index of `time` relative to `origin` (floor; may be negative).
[[nodiscard]] std::int64_t week_index(SimTime time, SimTime origin) noexcept;

[[nodiscard]] constexpr SimTime add_days(SimTime t, std::int64_t days) noexcept {
  return SimTime{t.seconds + days * kSecondsPerDay};
}

[[nodiscard]] constexpr SimTime add_weeks(SimTime t, std::int64_t weeks) noexcept {
  return SimTime{t.seconds + weeks * kSecondsPerWeek};
}

[[nodiscard]] constexpr SimTime add_seconds(SimTime t, std::int64_t s) noexcept {
  return SimTime{t.seconds + s};
}

}  // namespace repro
