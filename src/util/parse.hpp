// Checked numeric parsing for externally supplied text.
//
// Every helper parses the WHOLE string or throws ParseError with the
// caller-supplied context — no silent prefixes ("12abc" -> 12), no
// leaked std::invalid_argument/std::out_of_range, no unchecked
// narrowing. repro-lint rule RL001 bans the std::stoi/atoi/sscanf
// family across src/ in favor of these wrappers.
#pragma once

#include <cstdint>
#include <string_view>

namespace repro {

[[nodiscard]] std::uint8_t parse_u8(std::string_view text,
                                    std::string_view what);
[[nodiscard]] std::uint16_t parse_u16(std::string_view text,
                                      std::string_view what);
[[nodiscard]] std::uint32_t parse_u32(std::string_view text,
                                      std::string_view what);
[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      std::string_view what);
[[nodiscard]] std::int32_t parse_i32(std::string_view text,
                                     std::string_view what);
[[nodiscard]] std::int64_t parse_i64(std::string_view text,
                                     std::string_view what);
[[nodiscard]] double parse_f64(std::string_view text, std::string_view what);

}  // namespace repro
