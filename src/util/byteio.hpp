// Little-endian byte serialization.
//
// The PE builder/parser and the shellcode codec read and write binary
// images explicitly, byte by byte, rather than by casting packed structs
// (which would be UB-prone and endianness-dependent).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void text(std::string_view s);
  /// Write `s` into a fixed-width field, zero-padded (truncates if longer).
  void fixed_text(std::string_view s, std::size_t width);
  void zeros(std::size_t count);
  /// Pad with zeros until the buffer size is a multiple of `alignment`.
  void align(std::size_t alignment);

  /// Overwrite a u32 previously written at `offset`.
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian byte source. Throws ParseError past end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t count);
  /// Read a fixed-width field; returns the raw bytes including any NULs.
  [[nodiscard]] std::string fixed_text(std::size_t width);
  /// Read a NUL-terminated string at an absolute offset (does not move
  /// the cursor).
  [[nodiscard]] std::string cstring_at(std::size_t offset) const;
  void skip(std::size_t count);
  void seek(std::size_t offset);

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

 private:
  void require(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace repro
