#include "util/byteio.hpp"

#include "util/error.hpp"

namespace repro {

void ByteWriter::u8(std::uint8_t v) { out_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xff));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xffff));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::text(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
}

void ByteWriter::fixed_text(std::string_view s, std::size_t width) {
  const std::size_t take = std::min(s.size(), width);
  out_.insert(out_.end(), s.begin(), s.begin() + static_cast<long>(take));
  zeros(width - take);
}

void ByteWriter::zeros(std::size_t count) {
  out_.insert(out_.end(), count, 0);
}

void ByteWriter::align(std::size_t alignment) {
  if (alignment == 0) return;
  const std::size_t rem = out_.size() % alignment;
  if (rem != 0) zeros(alignment - rem);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  // Subtraction form: `offset + 4` could wrap for offsets near
  // SIZE_MAX and sneak past the check.
  if (out_.size() < 4 || offset > out_.size() - 4) {
    throw ParseError("ByteWriter::patch_u32: offset out of range");
  }
  out_[offset] = static_cast<std::uint8_t>(v & 0xff);
  out_[offset + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  out_[offset + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  out_[offset + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

void ByteReader::require(std::size_t count) const {
  // Subtraction form: `offset_ + count` could wrap for counts near
  // SIZE_MAX (e.g. a corrupt length field) and sneak past the check.
  if (count > data_.size() - offset_) {
    throw ParseError("ByteReader: read past end of data (offset " +
                     std::to_string(offset_) + " + " + std::to_string(count) +
                     " > " + std::to_string(data_.size()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[offset_] | static_cast<std::uint16_t>(data_[offset_ + 1]) << 8);
  offset_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = v << 8 | data_[offset_ + static_cast<std::size_t>(i)];
  offset_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return hi << 32 | lo;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t count) {
  require(count);
  std::vector<std::uint8_t> out{data_.begin() + static_cast<long>(offset_),
                                data_.begin() +
                                    static_cast<long>(offset_ + count)};
  offset_ += count;
  return out;
}

std::string ByteReader::fixed_text(std::size_t width) {
  require(width);
  std::string out{reinterpret_cast<const char*>(data_.data() + offset_), width};
  offset_ += width;
  return out;
}

std::string ByteReader::cstring_at(std::size_t offset) const {
  if (offset >= data_.size()) {
    throw ParseError("ByteReader::cstring_at: offset out of range");
  }
  std::string out;
  for (std::size_t i = offset; i < data_.size() && data_[i] != 0; ++i) {
    out.push_back(static_cast<char>(data_[i]));
  }
  return out;
}

void ByteReader::skip(std::size_t count) {
  require(count);
  offset_ += count;
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) {
    throw ParseError("ByteReader::seek: offset out of range");
  }
  offset_ = offset;
}

}  // namespace repro
