// Hex encoding/decoding helpers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// Lowercase hex rendering of a byte span.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

/// Inverse of hex_encode. Throws ParseError on odd length or non-hex input.
[[nodiscard]] std::vector<std::uint8_t> hex_decode(std::string_view text);

}  // namespace repro
