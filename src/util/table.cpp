#include "util/table.hpp"

#include <algorithm>

namespace repro {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return {};

  std::vector<std::size_t> width(columns, 0);
  const auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  const auto emit_row = [&](const std::vector<std::string>& row,
                            std::string& out) {
    out += "|";
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += " " + cell + std::string(width[i] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };

  std::string out;
  if (!header_.empty()) {
    emit_row(header_, out);
    out += "|";
    for (std::size_t i = 0; i < columns; ++i) {
      out += std::string(width[i] + 2, '-') + "|";
    }
    out += "\n";
  }
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void TextTable::print(std::ostream& os) const { os << render(); }

std::string to_csv_row(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out += ",";
    const std::string& cell = cells[i];
    // A bare CR is as framing-hostile as LF: RFC 4180 line ends are
    // CRLF, so an unquoted "\r" splits the record on re-import.
    if (cell.find_first_of(",\"\n\r") != std::string::npos) {
      out += "\"";
      for (const char c : cell) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
      }
      out += "\"";
    } else {
      out += cell;
    }
  }
  return out;
}

}  // namespace repro
