#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace repro {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string{text.substr(begin, end - begin)};
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string json_double(double value, int decimals) {
  if (std::isnan(value)) return "\"NaN\"";
  if (std::isinf(value)) {
    return value > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  }
  return fixed(value, decimals);
}

std::string escape_bytes(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  static constexpr char kDigits[] = "0123456789abcdef";
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte >= 0x20 && byte < 0x7f && byte != '\\') {
      out.push_back(c);
    } else {
      out += "\\x";
      out.push_back(kDigits[byte >> 4]);
      out.push_back(kDigits[byte & 0x0f]);
    }
  }
  return out;
}

}  // namespace repro
