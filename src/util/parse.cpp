#include "util/parse.hpp"

#include <charconv>
#include <string>
#include <system_error>

#include "util/error.hpp"

namespace repro {

namespace {

template <typename T>
T parse_number(std::string_view text, std::string_view what) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw ParseError(std::string{what} + " out of range: '" +
                     std::string{text} + "'");
  }
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ParseError("malformed " + std::string{what} + ": '" +
                     std::string{text} + "'");
  }
  return value;
}

}  // namespace

std::uint8_t parse_u8(std::string_view text, std::string_view what) {
  return parse_number<std::uint8_t>(text, what);
}

std::uint16_t parse_u16(std::string_view text, std::string_view what) {
  return parse_number<std::uint16_t>(text, what);
}

std::uint32_t parse_u32(std::string_view text, std::string_view what) {
  return parse_number<std::uint32_t>(text, what);
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  return parse_number<std::uint64_t>(text, what);
}

std::int32_t parse_i32(std::string_view text, std::string_view what) {
  return parse_number<std::int32_t>(text, what);
}

std::int64_t parse_i64(std::string_view text, std::string_view what) {
  return parse_number<std::int64_t>(text, what);
}

double parse_f64(std::string_view text, std::string_view what) {
  return parse_number<double>(text, what);
}

}  // namespace repro
