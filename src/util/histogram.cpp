#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace repro {

void BarChart::add(const std::string& label, double value) {
  rows_.emplace_back(label, value);
}

void BarChart::sort_desc() {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
}

void BarChart::truncate(std::size_t n) {
  if (rows_.size() > n) rows_.resize(n);
}

std::string BarChart::render(std::size_t bar_width) const {
  if (rows_.empty()) return "(empty)\n";
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& [label, value] : rows_) {
    label_width = std::max(label_width, label.size());
    max_value = std::max(max_value, value);
  }
  std::string out;
  for (const auto& [label, value] : rows_) {
    const auto filled = max_value > 0.0
                            ? static_cast<std::size_t>(std::lround(
                                  value / max_value * static_cast<double>(bar_width)))
                            : 0;
    out += label + std::string(label_width - label.size(), ' ') + " | " +
           std::string(filled, '#') + " " + fixed(value, value == std::floor(value) ? 0 : 2) +
           "\n";
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kLevels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  double max_value = 0.0;
  for (const double v : values) max_value = std::max(max_value, v);
  std::string out;
  for (const double v : values) {
    if (v <= 0.0 || max_value <= 0.0) {
      out += kLevels[0];
      continue;
    }
    // Even 7-way partition of (0, max]: level k covers
    // ((k-1)/7, k/7] of max. Comparing v*7 against max*k (instead of
    // dividing) keeps the bucket boundaries exact for integer-friendly
    // values; the old 1 + int(v/max*6.999) form gave the top glyph a
    // bucket ~7x narrower than the rest.
    int level = 1;
    while (level < 7 && v * 7.0 > max_value * static_cast<double>(level)) {
      ++level;
    }
    out += kLevels[level];
  }
  return out;
}

}  // namespace repro
