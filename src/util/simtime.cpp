#include "util/simtime.hpp"

#include <cstdio>
#include <vector>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace repro {

namespace {

// Howard Hinnant's civil-calendar algorithms (public domain).
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr Date civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                     // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                          // [1, 12]
  return Date{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d)};
}

}  // namespace

SimTime from_date(const Date& date) noexcept {
  return SimTime{days_from_civil(date.year, date.month, date.day) *
                 kSecondsPerDay};
}

Date to_date(SimTime time) noexcept {
  std::int64_t days = time.seconds / kSecondsPerDay;
  if (time.seconds % kSecondsPerDay < 0) --days;
  return civil_from_days(days);
}

SimTime parse_date(std::string_view text) {
  const std::vector<std::string> parts = split(text, '-');
  int y = 0;
  int m = 0;
  int d = 0;
  try {
    if (parts.size() != 3) throw ParseError("wrong field count");
    y = parse_i32(parts[0], "year");
    m = parse_i32(parts[1], "month");
    d = parse_i32(parts[2], "day");
  } catch (const ParseError&) {
    throw ParseError("parse_date: expected YYYY-MM-DD, got '" +
                     std::string{text} + "'");
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) {
    throw ParseError("parse_date: expected YYYY-MM-DD, got '" +
                     std::string{text} + "'");
  }
  return from_date(Date{y, m, d});
}

std::string format_date(SimTime time) {
  const Date date = to_date(time);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", date.year, date.month,
                date.day);
  return buf;
}

std::string format_day_month(SimTime time) {
  const Date date = to_date(time);
  return std::to_string(date.day) + "/" + std::to_string(date.month);
}

std::int64_t week_index(SimTime time, SimTime origin) noexcept {
  const std::int64_t delta = time.seconds - origin.seconds;
  std::int64_t weeks = delta / kSecondsPerWeek;
  if (delta % kSecondsPerWeek < 0) --weeks;
  return weeks;
}

}  // namespace repro
