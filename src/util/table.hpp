// ASCII table and CSV rendering used by the report module to print the
// paper's tables and figure series.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace repro {

/// Column-aligned ASCII table with an optional header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header = {});

  void add_row(std::vector<std::string> cells);

  /// Render with column widths fit to content, e.g.
  ///   | Dim | Feature | # invariants |
  ///   |-----|---------|--------------|
  ///   | ... | ...     | ...          |
  [[nodiscard]] std::string render() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV emission (quotes fields containing separators/quotes).
[[nodiscard]] std::string to_csv_row(const std::vector<std::string>& cells);

}  // namespace repro
