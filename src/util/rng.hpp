// Deterministic random number generation.
//
// Every stochastic component of the simulation draws from an Rng that is
// ultimately derived from a single landscape seed, so a whole paper-scale
// dataset is reproducible bit-for-bit. Rng is xoshiro256** seeded through
// splitmix64; fork() derives independent child streams so subsystems do
// not perturb each other's sequences when code is added or reordered.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// One splitmix64 step; also usable as a cheap 64-bit mixer/hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a value through one splitmix64 round.
[[nodiscard]] std::uint64_t mix64(std::uint64_t value) noexcept;

/// FNV-1a 64-bit hash of a byte/string view; used to derive stream seeds
/// from stable textual labels.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// xoshiro256** pseudo random generator with convenience draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Uniform double in [0, 1).
  double real() noexcept;

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool chance(double p) noexcept;

  /// Poisson draw with the given mean (Knuth for small, normal approx
  /// for large means).
  std::uint64_t poisson(double mean) noexcept;

  /// Geometric-ish "burst length" draw: 1 + Geometric(p).
  std::uint64_t burst_length(double continue_probability) noexcept;

  /// Pick an index according to non-negative weights. Requires at least
  /// one strictly positive weight.
  std::size_t weighted(std::span<const double> weights) noexcept;

  /// Uniformly pick one element of a non-empty container.
  template <typename Container>
  const auto& pick(const Container& items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      using std::swap;
      swap(items[i], items[index(i + 1)]);
    }
  }

  /// Derive an independent child generator. The label keeps child streams
  /// stable under code evolution: fork("pe") always yields the same
  /// stream for a given parent state seed.
  [[nodiscard]] Rng fork(std::string_view label) noexcept;

  /// Fill a byte buffer with random data.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Random lowercase-alphanumeric string of the given length.
  [[nodiscard]] std::string alnum(std::size_t length);

 private:
  std::uint64_t state_[4];
};

}  // namespace repro
