#include "util/thread_pool.hpp"

// repro-lint: allow-file(RL008) relaxed ordering here covers only the
// pool's self-observation: queue-depth/steal statistics and the
// monotonic-max gauge CAS in raise_to(), all single-cell values read
// after join(). The atomics that carry the actual work handoff
// (Job::next claims, Job::done completion counts) deliberately stay on
// the default seq_cst and are NOT annotated away.

#include <system_error>

#include "util/error.hpp"

namespace repro {

namespace {

/// Armed worker index for fail_spawn_at_for_testing; ~0 = disarmed.
std::atomic<std::size_t> g_fail_spawn_at{~std::size_t{0}};

/// Raises a monotonic-max gauge implemented as a bare atomic.
void raise_to(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t current = slot.load(std::memory_order_relaxed);
  while (current < v && !slot.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void ThreadPool::fail_spawn_at_for_testing(std::size_t index) noexcept {
  g_fail_spawn_at.store(index, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t width = threads;
  if (width == 0) {
    width = std::thread::hardware_concurrency();
    if (width == 0) width = 1;
  }
  workers_.reserve(width - 1);
  try {
    for (std::size_t i = 0; i + 1 < width; ++i) {
      if (g_fail_spawn_at.load(std::memory_order_relaxed) == i) {
        g_fail_spawn_at.store(~std::size_t{0}, std::memory_order_relaxed);
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "ThreadPool: injected spawn failure");
      }
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // A std::thread constructor can throw after some workers already
    // run; without this cleanup those threads would outlive the
    // half-constructed pool (the destructor never runs) and the
    // process would terminate. Stop and join the spawned prefix, then
    // let the original exception propagate.
    {
      const std::lock_guard<std::mutex> lock{queue_mutex_};
      stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock{queue_mutex_};
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to help
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    work_on(*job, metrics_, /*caller=*/false);
  }
}

void ThreadPool::work_on(Job& job, ThreadPoolMetrics* metrics, bool caller) {
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t index = job.next.fetch_add(1);
    if (index >= job.total_chunks) break;
    ++executed;
    const std::size_t begin = index * job.chunk;
    const std::size_t end = std::min(job.count, begin + job.chunk);
    try {
      (*job.fn)(begin, end);
    } catch (...) {
      // Every chunk still runs; the lowest-indexed failure wins so the
      // exception the caller sees is scheduling-independent.
      const std::lock_guard<std::mutex> lock{job.mutex};
      if (index < job.error_chunk) {
        job.error_chunk = index;
        job.error = std::current_exception();
      }
    }
    if (job.done.fetch_add(1) + 1 == job.total_chunks) {
      {
        const std::lock_guard<std::mutex> lock{job.mutex};
        job.finished = true;
      }
      job.finished_cv.notify_all();
    }
  }
  if (metrics != nullptr && executed > 0) {
    // One batched add per participant, not per chunk, so telemetry
    // costs nothing measurable on the claim loop.
    metrics->chunks.fetch_add(executed, std::memory_order_relaxed);
    (caller ? metrics->caller_chunks : metrics->helper_chunks)
        .fetch_add(executed, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunk == 0) {
    throw ConfigError("ThreadPool::parallel_for: chunk must be positive");
  }
  if (count == 0) return;
  const std::size_t total_chunks = (count + chunk - 1) / chunk;
  if (workers_.empty() || total_chunks == 1) {
    // Inline serial path (also the width-1 legacy mode): identical
    // chunk boundaries, ascending order.
    for (std::size_t index = 0; index < total_chunks; ++index) {
      const std::size_t begin = index * chunk;
      fn(begin, std::min(count, begin + chunk));
    }
    if (metrics_ != nullptr) {
      metrics_->jobs.fetch_add(1, std::memory_order_relaxed);
      metrics_->chunks.fetch_add(total_chunks, std::memory_order_relaxed);
      metrics_->caller_chunks.fetch_add(total_chunks,
                                        std::memory_order_relaxed);
    }
    return;
  }

  const auto job = std::make_shared<Job>();
  job->count = count;
  job->chunk = chunk;
  job->total_chunks = total_chunks;
  job->fn = &fn;
  {
    const std::lock_guard<std::mutex> lock{queue_mutex_};
    // One helper ticket per worker that could usefully join; extra
    // tickets drain instantly once the chunks run out.
    const std::size_t helpers = std::min(workers_.size(), total_chunks - 1);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(job);
    if (metrics_ != nullptr) {
      metrics_->jobs.fetch_add(1, std::memory_order_relaxed);
      raise_to(metrics_->max_queue_depth,
               static_cast<std::uint64_t>(queue_.size()));
    }
  }
  queue_cv_.notify_all();

  // The caller participates — guarantees progress even under nested
  // submission from inside a worker.
  work_on(*job, metrics_, /*caller=*/true);

  std::unique_lock<std::mutex> lock{job->mutex};
  job->finished_cv.wait(lock, [&] { return job->finished; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::run_tasks(const std::vector<std::function<void()>>& tasks) {
  parallel_for(tasks.size(), 1,
               [&](std::size_t begin, std::size_t) { tasks[begin](); });
}

}  // namespace repro
