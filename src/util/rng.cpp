#include "util/rng.hpp"

#include <cmath>

namespace repro {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + draw % span;
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(uniform(0, static_cast<std::uint64_t>(n) - 1));
}

double Rng::real() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = real();
    while (product > limit) {
      ++count;
      product *= real();
    }
    return count;
  }
  // Normal approximation for large means.
  const double u1 = real();
  const double u2 = real();
  const double gauss =
      std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * gauss;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
}

std::uint64_t Rng::burst_length(double continue_probability) noexcept {
  std::uint64_t length = 1;
  while (chance(continue_probability)) ++length;
  return length;
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w > 0.0 ? w : 0.0;
  double target = real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::string_view label) noexcept {
  const std::uint64_t child_seed =
      mix64(state_[0] ^ next() ^ fnv1a64(label));
  return Rng{child_seed};
}

void Rng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word & 0xff);
      word >>= 8;
    }
  }
}

std::string Rng::alnum(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[index(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace repro
