// Deterministic views over unordered associative containers.
//
// Iteration order of unordered_map/unordered_set depends on the hash
// seed, bucket count and insertion history, so letting it reach any
// serialized artifact (CSV exports, reports, snapshots) silently breaks
// the bit-reproducibility the pipeline guarantees. repro-lint rule
// RL003 bans range-for over unordered containers on export paths; these
// helpers are the sanctioned escape hatch — copy once, sort, iterate.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace repro {

/// The container's keys, sorted ascending. Works for both map-like
/// (pair values) and set-like (key values) containers.
template <typename Assoc>
[[nodiscard]] std::vector<typename Assoc::key_type> sorted_keys(
    const Assoc& assoc) {
  std::vector<typename Assoc::key_type> keys;
  keys.reserve(assoc.size());
  for (auto it = assoc.begin(); it != assoc.end(); ++it) {
    if constexpr (std::is_same_v<typename Assoc::value_type,
                                 typename Assoc::key_type>) {
      keys.push_back(*it);
    } else {
      keys.push_back(it->first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Sorts the vector and drops duplicates in place — the canonical
/// "sorted unique" contract the clustering layer's merge-walk
/// algorithms (jaccard_ids and friends) require of their inputs.
/// Hashed feature ids go through this so an FNV-1a collision between
/// two distinct features collapses to one id instead of skewing
/// intersection/union counts.
template <typename T>
void sorted_unique(std::vector<T>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

/// The map's (key, value) pairs as a vector sorted by key.
template <typename Map>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& map) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items{map.begin(), map.end()};
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace repro
