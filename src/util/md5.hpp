// Self-contained MD5 (RFC 1321).
//
// Malware samples in the paper are identified by MD5, and the
// mu-dimension of EPM clustering uses the digest as a candidate
// invariant feature, so the library computes real digests of the
// synthetic PE images it builds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace repro {

using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 context.
class Md5 {
 public:
  Md5() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] Md5Digest finish() noexcept;

  /// One-shot digest.
  [[nodiscard]] static Md5Digest digest(std::span<const std::uint8_t> data) noexcept;

  /// One-shot digest rendered as 32 lowercase hex characters.
  [[nodiscard]] static std::string hex_digest(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[4];
  std::uint64_t length_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

}  // namespace repro
