// Deterministic fixed-size worker pool.
//
// The pipeline's parallelism primitive: `parallel_for` splits an index
// range into fixed-size chunks that workers claim atomically, and
// `map_chunks` writes every chunk's result into its own slot and
// returns the slots in index order, so any reduction the caller
// performs is independent of scheduling. Nothing here draws randomness
// or reads a clock (RL002-clean by construction); combined with
// per-chunk-deterministic work functions this makes pipeline output
// byte-identical at every pool width.
//
// Scheduling properties:
//  - The calling thread participates in its own job, so a `parallel_for`
//    issued from inside a worker (nested submission) always makes
//    progress even when every other worker is busy.
//  - Exceptions thrown by chunk functions are captured and rethrown on
//    the calling thread after the job drains; when several chunks
//    throw, the lowest-indexed chunk's exception wins, so even failure
//    is deterministic.
//  - A pool of width 1 owns no worker threads and runs everything
//    inline — the bit-exact legacy serial path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace repro {

/// Scheduling telemetry for one pool. Every field is a runtime-channel
/// artifact: which thread claimed a chunk and how deep the queue got
/// depend on pool width and OS scheduling, and the serial fast path at
/// width 1 bypasses job accounting entirely — so none of these values
/// may ever feed a deterministic export. Kept as a plain struct of
/// atomics (not an obs::MetricsRegistry) so util stays dependency-free;
/// the scenario layer copies the values into its registry after a run.
struct ThreadPoolMetrics {
  std::atomic<std::uint64_t> jobs{0};            // parallel_for jobs queued
  std::atomic<std::uint64_t> chunks{0};          // chunks executed, all paths
  std::atomic<std::uint64_t> caller_chunks{0};   // chunks run by submitters
  std::atomic<std::uint64_t> helper_chunks{0};   // chunks run by pool workers
  std::atomic<std::uint64_t> max_queue_depth{0};  // high-water helper tickets
};

class ThreadPool {
 public:
  /// `threads` = total width including the calling thread; 0 picks
  /// hardware_concurrency, 1 runs everything inline.
  ///
  /// Exception-safe: if spawning worker `k` throws, workers `0..k-1`
  /// are stopped and joined before the exception propagates — a
  /// half-built pool never leaks running threads.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total width (worker threads + the participating caller), >= 1.
  [[nodiscard]] std::size_t width() const noexcept {
    return workers_.size() + 1;
  }

  /// Points the pool at a telemetry sink (null detaches). Not
  /// synchronised with in-flight jobs: attach before submitting work.
  void attach_metrics(ThreadPoolMetrics* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Test hook: makes the constructor's spawn loop throw when it would
  /// create worker `index` (std::system_error, EAGAIN), once. Resets
  /// itself after firing; pass ~0 to disarm.
  static void fail_spawn_at_for_testing(std::size_t index) noexcept;

  /// Runs fn(begin, end) over [0, count) in chunks of `chunk` indices.
  /// Blocks until every chunk finished; rethrows the lowest-indexed
  /// chunk's exception. `chunk` must be positive.
  void parallel_for(std::size_t count, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs every task (index order defines identity); blocks until all
  /// finished, rethrowing the lowest-indexed task's exception.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  /// Ordered reduce: maps every chunk [begin, end) to a value and
  /// returns the values ordered by chunk index — merging them
  /// left-to-right is scheduling-independent.
  template <typename T, typename Map>
  std::vector<T> map_chunks(std::size_t count, std::size_t chunk, Map&& map) {
    if (chunk == 0) {
      // parallel_for performs the same validation; call it for the
      // uniform ConfigError before sizing the slot vector.
      parallel_for(count, chunk, [](std::size_t, std::size_t) {});
    }
    std::vector<T> slots(count == 0 ? 0 : (count + chunk - 1) / chunk);
    parallel_for(count, chunk,
                 [&](std::size_t begin, std::size_t end) {
                   slots[begin / chunk] = map(begin, end);
                 });
    return slots;
  }

 private:
  /// One parallel_for in flight: workers and the caller claim chunk
  /// indices from `next` until exhausted.
  struct Job {
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::size_t total_chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable finished_cv;
    bool finished = false;
    std::exception_ptr error;                  // guarded by mutex
    std::size_t error_chunk = ~std::size_t{0};  // guarded by mutex
  };

  void worker_loop();
  static void work_on(Job& job, ThreadPoolMetrics* metrics, bool caller);

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  ThreadPoolMetrics* metrics_ = nullptr;
};

}  // namespace repro
