// Text histograms / bar charts used to print the paper's figures
// (AV-name histograms, IP-space distributions, activity timelines) as
// terminal-friendly series.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repro {

/// Labeled counts rendered as a horizontal bar chart.
class BarChart {
 public:
  void add(const std::string& label, double value);

  /// Sort rows by descending value (stable for ties).
  void sort_desc();

  /// Keep only the top `n` rows (after any sorting).
  void truncate(std::size_t n);

  /// Render rows as "<label> | #### value".
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::pair<std::string, double>> rows_;
};

/// Dense per-bucket sparkline over an integer-indexed domain (e.g. weeks),
/// rendered with the classic eight-level block characters.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace repro
