// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace repro {

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string to_lower(std::string_view text);
[[nodiscard]] std::string trim(std::string_view text);

/// Render with SI-ish thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// printf-style double with fixed decimals.
[[nodiscard]] std::string fixed(double value, int decimals);

/// JSON-safe double token with fixed decimals. `fixed` renders
/// non-finite values as bare `nan`/`inf`, which no JSON parser
/// accepts; quality metrics divide by zero on degenerate landscapes
/// (e.g. a single planted cluster), so benches must emit the string
/// sentinels "NaN"/"Infinity"/"-Infinity" (quoted, like RFC 8259
/// implementations that round-trip IEEE specials) instead.
[[nodiscard]] std::string json_double(double value, int decimals);

/// Escape non-printable bytes C-style ("\x00"), used to render section
/// names the way the paper prints them (".text\x00\x00\x00").
[[nodiscard]] std::string escape_bytes(std::string_view raw);

}  // namespace repro
