// The analyst query protocol: line-oriented request/response framing.
//
// Grammar (one request per line, '\n'-terminated, single-space tokens):
//
//   request  := "lookup" SP md5
//             | "cluster" SP int
//             | "ccmap" | "health" | "stats"
//             | "slow" SP int            ; debug builds only (bench seam)
//   md5      := 32*[0-9a-f]              ; lowercase, exactly 32 chars
//
//   response := "OK" SP count "\n" line*count     ; count payload lines
//             | "ERR" SP code SP message "\n"
//   code     := "BAD_REQUEST" | "NOT_FOUND" | "TIMEOUT" | "BUSY"
//             | "UNAVAILABLE"
//
// Requests are parsed into a typed Request; responses render through
// render() so every reply byte the daemon emits — including the BUSY
// shed reply and typed TIMEOUT — comes from one place and can be
// golden-compared against a locally built view by the tests and bench.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repro::serve {

enum class RequestKind : std::uint8_t {
  kLookup,
  kCluster,
  kCcmap,
  kHealth,
  kStats,
  kSlow,  // debug: hold the worker for `ms` before answering
};

struct Request {
  RequestKind kind = RequestKind::kHealth;
  std::string md5;        // kLookup
  int cluster = 0;        // kCluster
  std::int64_t slow_ms = 0;  // kSlow
};

/// Error codes a response line can carry. kNone marks an OK response.
enum class ErrorCode : std::uint8_t {
  kNone,
  kBadRequest,
  kNotFound,
  kTimeout,
  kBusy,
  kUnavailable,
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code);

struct Response {
  ErrorCode code = ErrorCode::kNone;
  /// Payload lines of an OK response (no trailing newlines).
  std::vector<std::string> lines;
  /// Single-line human message of an ERR response.
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == ErrorCode::kNone; }

  [[nodiscard]] static Response error(ErrorCode code, std::string message);
};

/// Parses one request line (without its terminating newline). Throws
/// ParseError on anything outside the grammar — the server maps that
/// to an ERR BAD_REQUEST reply and counts a protocol error.
[[nodiscard]] Request parse_request(std::string_view line);

/// Renders a response to its exact wire bytes (newlines included).
[[nodiscard]] std::string render(const Response& response);

}  // namespace repro::serve
