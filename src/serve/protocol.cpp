#include "serve/protocol.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace repro::serve {

namespace {

/// Splits `line` on single spaces; empty tokens (leading, trailing or
/// doubled separators) are grammar violations, surfaced by the caller.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string_view::npos ? line.size()
                                                            : space;
    tokens.push_back(line.substr(start, end - start));
    if (space == std::string_view::npos) break;
    start = space + 1;
  }
  return tokens;
}

[[noreturn]] void bad(const std::string& what) {
  throw ParseError("serve request: " + what);
}

/// Sample digests are rendered by util/hex (lowercase); a well-formed
/// md5 argument is exactly 32 lowercase hex characters. Anything else
/// is a malformed request, not a miss.
bool is_md5(std::string_view token) {
  if (token.size() != 32) return false;
  for (const char c : token) {
    const bool digit = c >= '0' && c <= '9';
    const bool lower_hex = c >= 'a' && c <= 'f';
    if (!digit && !lower_hex) return false;
  }
  return true;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "NONE";
    case ErrorCode::kBadRequest: return "BAD_REQUEST";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

Response Response::error(ErrorCode code, std::string message) {
  Response response;
  response.code = code;
  response.message = std::move(message);
  return response;
}

Request parse_request(std::string_view line) {
  if (line.empty()) bad("empty line");
  if (line.find('\r') != std::string_view::npos) bad("stray carriage return");
  const std::vector<std::string_view> tokens = tokenize(line);
  for (std::string_view token : tokens) {
    if (token.empty()) bad("empty token (doubled or trailing space)");
  }
  const std::string_view verb = tokens.front();
  const auto want = [&](std::size_t arity) {
    if (tokens.size() != arity + 1) {
      bad(std::string{verb} + " takes " + std::to_string(arity) +
          " argument(s)");
    }
  };
  Request request;
  if (verb == "lookup") {
    want(1);
    if (!is_md5(tokens[1])) {
      bad("lookup md5 must be 32 lowercase hex characters");
    }
    request.kind = RequestKind::kLookup;
    request.md5 = std::string{tokens[1]};
  } else if (verb == "cluster") {
    want(1);
    request.kind = RequestKind::kCluster;
    request.cluster = parse_i32(tokens[1], "cluster id");
  } else if (verb == "ccmap") {
    want(0);
    request.kind = RequestKind::kCcmap;
  } else if (verb == "health") {
    want(0);
    request.kind = RequestKind::kHealth;
  } else if (verb == "stats") {
    want(0);
    request.kind = RequestKind::kStats;
  } else if (verb == "slow") {
    want(1);
    request.kind = RequestKind::kSlow;
    request.slow_ms = parse_i64(tokens[1], "slow milliseconds");
    if (request.slow_ms < 0) bad("slow milliseconds must be >= 0");
  } else {
    bad("unknown verb '" + std::string{verb} + "'");
  }
  return request;
}

std::string render(const Response& response) {
  std::string out;
  if (response.ok()) {
    out = "OK " + std::to_string(response.lines.size()) + "\n";
    for (const std::string& line : response.lines) {
      out += line;
      out += '\n';
    }
  } else {
    out = "ERR ";
    out += error_code_name(response.code);
    out += ' ';
    out += response.message;
    out += '\n';
  }
  return out;
}

}  // namespace repro::serve
