#include "serve/view.hpp"

#include <algorithm>
#include <limits>

#include "analysis/c2.hpp"
#include "util/simtime.hpp"

namespace repro::serve {

namespace {

/// "3,17,42" for ascending ids; "-" when the list is empty.
std::string join_ids(const std::vector<int>& ids) {
  if (ids.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

void sort_unique(std::vector<int>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

ServeView ServeView::build(const honeypot::EventDatabase& db,
                           const cluster::EpmResult& e,
                           const cluster::EpmResult& p,
                           const cluster::EpmResult& m,
                           const analysis::BehavioralView& b,
                           std::uint64_t epoch) {
  ServeView view;
  view.epoch_ = epoch;
  view.event_count_ = db.events().size();

  // Per-sample context. Samples are visited in id order and events in
  // arrival order, so everything below is deterministic by
  // construction.
  view.samples_.reserve(db.samples().size());
  for (const honeypot::MalwareSample& sample : db.samples()) {
    SampleInfo info;
    info.md5 = sample.md5;
    info.first_seen = format_date(sample.first_seen);
    info.event_count = sample.event_count;
    info.intact = sample.intact();
    info.av_label = sample.av_label;
    info.b_cluster = b.cluster_of_sample(sample.id);
    info.first_event_seconds = std::numeric_limits<std::int64_t>::max();
    info.last_event_seconds = std::numeric_limits<std::int64_t>::min();
    view.md5_index_.emplace(sample.md5, view.samples_.size());
    view.samples_.push_back(std::move(info));
  }
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value()) continue;
    SampleInfo& info = view.samples_[*event.sample];
    const auto note = [&](const cluster::EpmResult& result,
                          std::vector<int>& into) {
      const int id = result.cluster_of_event(event.id);
      if (id >= 0) into.push_back(id);
    };
    note(e, info.e_clusters);
    note(p, info.p_clusters);
    note(m, info.m_clusters);
    info.first_event_seconds =
        std::min(info.first_event_seconds, event.time.seconds);
    info.last_event_seconds =
        std::max(info.last_event_seconds, event.time.seconds);
  }
  for (SampleInfo& info : view.samples_) {
    sort_unique(info.e_clusters);
    sort_unique(info.p_clusters);
    sort_unique(info.m_clusters);
    if (info.first_event_seconds > info.last_event_seconds) {
      // No event referenced the sample (possible on partial datasets);
      // fall back to the dedup record's first_seen.
      info.first_event_seconds = 0;
      info.last_event_seconds = 0;
    }
  }

  // B-cluster membership, member lists ascending by sample id.
  view.b_members_.resize(b.cluster_count());
  for (std::size_t id = 0; id < view.samples_.size(); ++id) {
    const int cluster = view.samples_[id].b_cluster;
    if (cluster >= 0 &&
        static_cast<std::size_t>(cluster) < view.b_members_.size()) {
      view.b_members_[static_cast<std::size_t>(cluster)].push_back(id);
    }
  }

  // C&C map, pre-rendered from the Table 2 correlation.
  const analysis::C2Report c2 = analysis::correlate_irc(db, m, b);
  view.ccmap_lines_.push_back("associations " +
                              std::to_string(c2.associations.size()));
  for (const analysis::IrcAssociation& assoc : c2.associations) {
    view.ccmap_lines_.push_back("cc " + assoc.server.to_string() + ' ' +
                                assoc.room + ' ' + join_ids(assoc.m_clusters));
  }
  for (const auto& [slash24, servers] : c2.slash24_groups) {
    if (servers.size() >= 2) {
      view.ccmap_lines_.push_back("colocated " + slash24 + ' ' +
                                  std::to_string(servers.size()));
    }
  }
  for (const auto& [room, count] : c2.room_reuse) {
    if (count >= 2) {
      view.ccmap_lines_.push_back("reuse " + room + ' ' +
                                  std::to_string(count));
    }
  }
  view.ccmap_lines_.push_back("multi_cluster_rows " +
                              std::to_string(c2.multi_cluster_rows()));
  view.ccmap_lines_.push_back("colocated_groups " +
                              std::to_string(c2.colocated_groups()));

  // Dataset-shape stats (the deterministic figures an analyst checks
  // first) and the one-line health beacon.
  view.stats_lines_ = {
      "epoch " + std::to_string(epoch),
      "events " + std::to_string(db.events().size()),
      "samples " + std::to_string(db.samples().size()),
      "analyzable " + std::to_string(db.analyzable_sample_count()),
      "e_clusters " + std::to_string(e.cluster_count()),
      "p_clusters " + std::to_string(p.cluster_count()),
      "m_clusters " + std::to_string(m.cluster_count()),
      "b_clusters " + std::to_string(b.cluster_count()),
      "b_singletons " + std::to_string(b.singleton_count()),
  };
  view.health_line_ = "serving epoch=" + std::to_string(epoch) +
                      " events=" + std::to_string(db.events().size()) +
                      " samples=" + std::to_string(db.samples().size());
  return view;
}

Response ServeView::lookup(const std::string& md5) const {
  const auto it = md5_index_.find(md5);
  if (it == md5_index_.end()) {
    return Response::error(ErrorCode::kNotFound,
                           "no sample with md5 " + md5);
  }
  const SampleInfo& info = samples_[it->second];
  Response response;
  response.lines = {
      "md5 " + info.md5,
      "first_seen " + info.first_seen,
      "events " + std::to_string(info.event_count),
      std::string{"intact "} + (info.intact ? "yes" : "no"),
      "label " + (info.av_label.empty() ? std::string{"-"} : info.av_label),
      "b_cluster " + std::to_string(info.b_cluster),
      "e_clusters " + join_ids(info.e_clusters),
      "p_clusters " + join_ids(info.p_clusters),
      "m_clusters " + join_ids(info.m_clusters),
  };
  return response;
}

Response ServeView::cluster(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= b_members_.size()) {
    return Response::error(ErrorCode::kNotFound,
                           "no b-cluster " + std::to_string(id));
  }
  const std::vector<std::size_t>& members =
      b_members_[static_cast<std::size_t>(id)];
  if (members.empty()) {
    // Every backend emits dense first-member-ordered ids, so a valid
    // partition never holds an empty cluster; an empty member list can
    // only come from an id gap in an ill-formed source. Answer
    // NOT_FOUND instead of rendering a phantom "size 0" cluster.
    return Response::error(ErrorCode::kNotFound,
                           "no b-cluster " + std::to_string(id));
  }
  Response response;
  response.lines.push_back("cluster " + std::to_string(id));
  response.lines.push_back("size " + std::to_string(members.size()));
  std::int64_t first = std::numeric_limits<std::int64_t>::max();
  std::int64_t last = std::numeric_limits<std::int64_t>::min();
  for (std::size_t member : members) {
    const SampleInfo& info = samples_[member];
    response.lines.push_back("member " + info.md5 + ' ' + info.first_seen +
                             ' ' + std::to_string(info.event_count));
    first = std::min(first, info.first_event_seconds);
    last = std::max(last, info.last_event_seconds);
  }
  const std::int64_t weeks = week_index(SimTime{last}, SimTime{first}) + 1;
  response.lines.push_back("timeline " + format_date(SimTime{first}) + ' ' +
                           format_date(SimTime{last}) + ' ' +
                           std::to_string(weeks));
  return response;
}

Response ServeView::answer(const Request& request) const {
  switch (request.kind) {
    case RequestKind::kLookup:
      return lookup(request.md5);
    case RequestKind::kCluster:
      return cluster(request.cluster);
    case RequestKind::kCcmap: {
      Response response;
      response.lines = ccmap_lines_;
      return response;
    }
    case RequestKind::kHealth: {
      Response response;
      response.lines = {health_line_};
      return response;
    }
    case RequestKind::kStats: {
      Response response;
      response.lines = stats_lines_;
      return response;
    }
    case RequestKind::kSlow:
      break;  // a server concern; a bare view cannot wait
  }
  return Response::error(ErrorCode::kBadRequest,
                         "slow is not answerable by a view");
}

}  // namespace repro::serve
