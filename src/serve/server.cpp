#include "serve/server.hpp"

// repro-lint: allow-file(RL008) the counters_ bank is per-worker
// request/byte/error statistics, each a lone fetch_add/load with no
// ordering relationship to the data it counts; report() is called
// after stop() joins the workers, and the live /stats endpoint
// documents that it serves point-in-time values.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/error.hpp"

namespace repro::serve {

namespace {

/// Tick for idle waits: how quickly drain and deadline re-checks react.
constexpr int kIdlePollMs = 20;
constexpr std::int64_t kNsPerMs = 1'000'000;

/// One poll() for readability, bounded by `timeout_ms`. Returns the
/// poll result (>0 readable, 0 timeout, <0 error other than EINTR).
int wait_readable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0 && errno == EINTR) return 0;
  return ready;
}

}  // namespace

void ServerOptions::validate() const {
  if (workers == 0) {
    throw ConfigError("serve: workers must be positive");
  }
  if (admission_capacity == 0) {
    throw ConfigError("serve: admission_capacity must be positive");
  }
  if (request_deadline_ms <= 0) {
    throw ConfigError("serve: request_deadline_ms must be positive");
  }
  if (max_line_bytes == 0) {
    throw ConfigError("serve: max_line_bytes must be positive");
  }
}

void publish_serve_metrics(obs::MetricsRegistry& metrics,
                           const ServeReport& report) {
  // epoch_swaps is the number of epochs the pipeline published — a pure
  // function of the input — so it rides the deterministic channel. The
  // rest depends on what clients did and when; runtime channel only.
  metrics.counter("serve.epoch_swaps").add(report.epoch_swaps);
  const auto runtime = [&](std::string_view name, std::uint64_t value) {
    metrics.counter(name, obs::Channel::kRuntime).add(value);
  };
  runtime("serve.accepted", report.accepted);
  runtime("serve.requests", report.requests);
  runtime("serve.replies_ok", report.replies_ok);
  runtime("serve.replies_err", report.replies_err);
  runtime("serve.busy_sheds", report.busy_sheds);
  runtime("serve.timeouts", report.timeouts);
  runtime("serve.disconnects", report.disconnects);
  runtime("serve.accept_failures", report.accept_failures);
  runtime("serve.protocol_errors", report.protocol_errors);
}

Server::Server(ServerOptions options) : options_(std::move(options)) {
  options_.validate();
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw ConfigError("serve: start() called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    throw IoError("serve: socket() failed: " +
                  std::string{std::strerror(errno)});
  }
  const int yes = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason{std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: bind/listen on 127.0.0.1:" +
                  std::to_string(options_.port) + " failed: " + reason);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_,
                    reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string reason{std::strerror(errno)};
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("serve: getsockname failed: " + reason);
  }
  port_ = ntohs(bound.sin_port);

  admission_ = std::make_unique<ingest::BoundedQueue<Conn>>(
      options_.admission_capacity, ingest::OverflowPolicy::kShedOldest);
  started_ = true;
  acceptor_ = std::thread{[this] { accept_loop(); }};
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::publish(std::shared_ptr<const ServeView> view) {
  {
    const std::lock_guard lock{view_mutex_};
    view_ = std::move(view);
  }
  counters_.epoch_swaps.fetch_add(1, std::memory_order_relaxed);
}

bool Server::has_view() const {
  const std::lock_guard lock{view_mutex_};
  return view_ != nullptr;
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Stop the intake first: no new connections, then let the workers
  // answer everything in flight and everything already admitted before
  // joining. Order matters — closing the admission queue while the
  // acceptor still offers would leak the raced connections.
  draining_.store(true, std::memory_order_relaxed);
  acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  admission_->close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

ServeReport Server::report() const {
  const auto load = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  ServeReport report;
  report.accepted = load(counters_.accepted);
  report.requests = load(counters_.requests);
  report.replies_ok = load(counters_.replies_ok);
  report.replies_err = load(counters_.replies_err);
  report.busy_sheds = load(counters_.busy_sheds);
  report.timeouts = load(counters_.timeouts);
  report.disconnects = load(counters_.disconnects);
  report.accept_failures = load(counters_.accept_failures);
  report.protocol_errors = load(counters_.protocol_errors);
  report.epoch_swaps = load(counters_.epoch_swaps);
  return report;
}

void Server::accept_loop() {
  std::uint64_t accept_index = 0;
  while (!draining_.load(std::memory_order_relaxed)) {
    if (wait_readable(listen_fd_, kIdlePollMs) <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;
      }
      counters_.accept_failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t key = accept_index++;
    if (options_.faults != nullptr && options_.faults->serve_accept_fails(key)) {
      // The injected flavour of a failed accept: from the client's side
      // the connection resets before a single byte; the listener keeps
      // going.
      counters_.accept_failures.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    std::optional<Conn> evicted;
    if (!admission_->offer(Conn{fd, key}, evicted)) {
      // Queue already closed (drain raced the accept): shed the
      // newcomer explicitly, like any other overload.
      counters_.busy_sheds.fetch_add(1, std::memory_order_relaxed);
      reply_and_close(fd, Response::error(ErrorCode::kBusy,
                                          "server is shutting down"));
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    if (evicted.has_value()) {
      // Overload: the oldest waiting connection pays, with an explicit
      // reply instead of a silent drop.
      counters_.busy_sheds.fetch_add(1, std::memory_order_relaxed);
      reply_and_close(evicted->fd,
                      Response::error(ErrorCode::kBusy,
                                      "admission queue overflow"));
    }
  }
}

void Server::worker_loop() {
  while (auto conn = admission_->pop()) {
    handle_connection(*conn);
  }
}

void Server::handle_connection(Conn conn) {
  std::string buffer;
  std::uint64_t request_index = 0;
  for (;;) {
    // Idle phase: between requests the connection costs nothing but a
    // poll tick. During drain a request already sitting in the socket
    // is still answered (poll with a zero timeout); a truly idle
    // connection is closed.
    while (buffer.empty()) {
      const bool draining = draining_.load(std::memory_order_relaxed);
      const int ready = wait_readable(conn.fd, draining ? 0 : kIdlePollMs);
      if (ready == 0) {
        if (draining) {
          ::close(conn.fd);
          return;
        }
        continue;
      }
      char chunk[1024];
      const ssize_t n =
          ready < 0 ? -1 : ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        // Clean EOF between requests; nothing was lost.
        ::close(conn.fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }

    // Request phase: the deadline clock runs from the first byte.
    const obs::Stopwatch clock;
    const std::int64_t budget_ns = options_.request_deadline_ms * kNsPerMs;
    std::int64_t synthetic_ns = 0;
    const std::uint64_t key = (conn.key << 16) + request_index;
    ++request_index;
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    if (options_.faults != nullptr &&
        options_.faults->serve_slow_client(key)) {
      // The injected stall eats the whole budget: however fast the rest
      // of the request goes, it surfaces as a typed TIMEOUT.
      synthetic_ns += budget_ns;
    }

    bool timed_out = false;
    std::size_t eol;
    while ((eol = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > options_.max_line_bytes) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        reply_and_close(conn.fd,
                        Response::error(ErrorCode::kBadRequest,
                                        "request line too long"));
        counters_.replies_err.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::int64_t remaining_ns =
          budget_ns - clock.elapsed_ns() - synthetic_ns;
      if (remaining_ns <= 0) {
        timed_out = true;
        break;
      }
      const int wait_ms = static_cast<int>(
          std::min<std::int64_t>(remaining_ns / kNsPerMs + 1, kIdlePollMs));
      const int ready = wait_readable(conn.fd, wait_ms);
      if (ready == 0) continue;
      char chunk[1024];
      const ssize_t n =
          ready < 0 ? -1 : ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        // The client vanished mid-request.
        counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
        ::close(conn.fd);
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    if (timed_out) {
      // Best-effort typed reply; the line can no longer be resynced, so
      // the connection is cut either way.
      counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
      reply_and_close(conn.fd, Response::error(ErrorCode::kTimeout,
                                               "request deadline exceeded"));
      counters_.replies_err.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    std::string line = buffer.substr(0, eol);
    buffer.erase(0, eol + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    Response response;
    bool close_after_reply = false;
    try {
      const Request request = parse_request(line);
      if (request.kind == RequestKind::kSlow) {
        if (options_.enable_debug_commands) {
          obs::sleep_ms(request.slow_ms);
          response.lines = {"slept " + std::to_string(request.slow_ms)};
        } else {
          response = Response::error(ErrorCode::kBadRequest,
                                     "slow is disabled");
        }
      } else {
        std::shared_ptr<const ServeView> view;
        {
          const std::lock_guard lock{view_mutex_};
          view = view_;
        }
        if (view == nullptr) {
          response = Response::error(ErrorCode::kUnavailable,
                                     "no epoch published yet");
        } else {
          response = view->answer(request);
        }
      }
    } catch (const ParseError& err) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      response = Response::error(ErrorCode::kBadRequest, err.what());
    }
    if (clock.elapsed_ns() + synthetic_ns > budget_ns) {
      // Computed too late is not computed: replace whatever the answer
      // was with the typed overrun.
      counters_.timeouts.fetch_add(1, std::memory_order_relaxed);
      response = Response::error(ErrorCode::kTimeout,
                                 "request deadline exceeded");
      close_after_reply = true;
    }
    if (options_.faults != nullptr &&
        options_.faults->serve_disconnect(key)) {
      // The client is gone before the reply could be written.
      counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
      ::close(conn.fd);
      return;
    }
    if (!write_response(conn.fd, response)) {
      counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
      ::close(conn.fd);
      return;
    }
    if (response.ok()) {
      counters_.replies_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.replies_err.fetch_add(1, std::memory_order_relaxed);
    }
    if (close_after_reply) {
      ::close(conn.fd);
      return;
    }
  }
}

void Server::reply_and_close(int fd, const Response& response) {
  (void)write_response(fd, response);
  ::close(fd);
}

bool Server::write_response(int fd, const Response& response) {
  const std::string bytes = render(response);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace repro::serve
