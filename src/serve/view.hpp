// The immutable query snapshot behind the serving daemon.
//
// A ServeView is built once per completed epoch from the live pipeline
// state (event database + E/P/M/B clusterings), copies everything a
// query can touch into its own pre-rendered structures, and is then
// shared read-only behind a std::shared_ptr. The server hot-swaps the
// pointer when a new epoch lands (RCU style): in-flight requests keep
// answering on the view they started with, new requests see the new
// epoch, and no request can ever observe a half-built one. Answers are
// pure functions of the build inputs — byte-identical at every pool
// width — which is what lets tests and the bench golden-compare live
// replies against a view built from the batch pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"
#include "serve/protocol.hpp"

namespace repro::serve {

class ServeView {
 public:
  /// Copies every queryable fact out of the pipeline state. The inputs
  /// may be mutated or destroyed freely afterwards.
  [[nodiscard]] static ServeView build(const honeypot::EventDatabase& db,
                                       const cluster::EpmResult& e,
                                       const cluster::EpmResult& p,
                                       const cluster::EpmResult& m,
                                       const analysis::BehavioralView& b,
                                       std::uint64_t epoch);

  /// Answers one parsed request. Pure and thread-safe (const state
  /// only); kSlow is the server's business and answers BAD_REQUEST
  /// here.
  [[nodiscard]] Response answer(const Request& request) const;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples_.size();
  }

 private:
  /// One sample's pre-rendered lookup context.
  struct SampleInfo {
    std::string md5;
    std::string first_seen;  // YYYY-MM-DD
    std::size_t event_count = 0;
    bool intact = false;
    std::string av_label;  // empty = gap
    int b_cluster = -1;
    std::vector<int> e_clusters;  // distinct, ascending
    std::vector<int> p_clusters;
    std::vector<int> m_clusters;
    /// Earliest/latest event time of the sample, for cluster timelines.
    std::int64_t first_event_seconds = 0;
    std::int64_t last_event_seconds = 0;
  };

  [[nodiscard]] Response lookup(const std::string& md5) const;
  [[nodiscard]] Response cluster(int id) const;

  std::uint64_t epoch_ = 0;
  std::uint64_t event_count_ = 0;
  std::vector<SampleInfo> samples_;           // indexed by SampleId
  std::map<std::string, std::size_t> md5_index_;
  std::vector<std::vector<std::size_t>> b_members_;  // cluster -> samples
  std::vector<std::string> ccmap_lines_;
  std::vector<std::string> stats_lines_;
  std::string health_line_;
};

}  // namespace repro::serve
