// The crash-tolerant query daemon.
//
// A Server listens on a loopback TCP port and answers the line protocol
// of serve/protocol.hpp against whatever ServeView was last published.
// Robustness is the design center, in four mechanisms:
//
//   * Admission control — accepted connections pass through a bounded
//     queue (ingest::BoundedQueue, kShedOldest). When it overflows, the
//     *oldest* waiting connection is evicted and answered with an
//     explicit "ERR BUSY" before being closed: overload sheds visibly
//     at the edge instead of stalling the ingest loop underneath.
//   * Per-request deadlines — a request that cannot be read and
//     answered within the budget gets a typed "ERR TIMEOUT" reply
//     (best-effort) and the connection is cut; one slow client can
//     never camp on a worker.
//   * Epoch hot-swap — publish() swaps a std::shared_ptr<const
//     ServeView>; in-flight requests drain on the view they started
//     with, so no query ever observes a half-built epoch.
//   * Fault injection — the fault.serve_* sites (slow clients,
//     mid-request disconnects, accept failures) are rolled per
//     connection/request so the chaos suite exercises every
//     degradation path deterministically.
//
// Graceful shutdown: stop() closes the listener, lets workers finish
// in-flight *and* already-admitted connections, then joins. SIGTERM
// handling is the CLI's job (tools/serve_landscape) — the library stays
// signal-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "ingest/queue.hpp"
#include "serve/view.hpp"

namespace repro::obs {
class MetricsRegistry;
}  // namespace repro::obs

namespace repro::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
  /// with Server::port() after start()).
  std::uint16_t port = 0;
  /// Worker threads answering requests.
  std::size_t workers = 2;
  /// Bounded admission queue capacity; overflow sheds with BUSY.
  std::size_t admission_capacity = 16;
  /// Per-request budget from first byte to reply.
  std::int64_t request_deadline_ms = 1000;
  /// Longest accepted request line; longer is a protocol error.
  std::size_t max_line_bytes = 4096;
  /// Enables the `slow <ms>` debug verb (bench/test seam for forcing
  /// deadline overruns and queue buildup). Off in production.
  bool enable_debug_commands = false;
  /// Optional injector for the fault.serve_* sites (non-owning).
  fault::FaultInjector* faults = nullptr;

  /// Throws ConfigError on zero workers/capacity/deadline/line bound.
  void validate() const;
};

/// The daemon's own accounting. Everything here is per-process serving
/// state — it never enters the dataset or an epoch checkpoint. Only
/// epoch_swaps is a pure function of the pipeline input; the rest
/// depends on client behavior and scheduling (runtime channel).
struct ServeReport {
  std::uint64_t accepted = 0;         // connections admitted to the queue
  std::uint64_t requests = 0;         // request lines parsed or attempted
  std::uint64_t replies_ok = 0;       // OK responses written
  std::uint64_t replies_err = 0;      // ERR responses written (any code)
  std::uint64_t busy_sheds = 0;       // connections evicted with BUSY
  std::uint64_t timeouts = 0;         // deadline overruns (typed TIMEOUT)
  std::uint64_t disconnects = 0;      // clients lost mid-request/reply
  std::uint64_t accept_failures = 0;  // accept() faults (real + injected)
  std::uint64_t protocol_errors = 0;  // unparseable/oversized requests
  std::uint64_t epoch_swaps = 0;      // views published
};

/// Exports the report: serve.epoch_swaps on the deterministic channel
/// (it is the number of epochs the pipeline ran), everything else on
/// the runtime channel.
void publish_serve_metrics(obs::MetricsRegistry& metrics,
                           const ServeReport& report);

class Server {
 public:
  /// Validates and adopts the options; call start() to begin serving.
  explicit Server(ServerOptions options);
  /// stop()s if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1, starts the accept and worker threads. Throws
  /// IoError when the socket cannot be set up.
  void start();

  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Hot-swaps the query snapshot. Requests admitted after this answer
  /// on `view`; in-flight requests drain on the previous one.
  void publish(std::shared_ptr<const ServeView> view);
  [[nodiscard]] bool has_view() const;

  /// Graceful drain: stop accepting, answer everything in flight and
  /// already admitted, join all threads. Idempotent.
  void stop();

  /// Counter snapshot; stable once stop() returned.
  [[nodiscard]] ServeReport report() const;

 private:
  /// One admitted connection: the socket plus its deterministic fault
  /// key (accept order — the accept loop is single-threaded).
  struct Conn {
    int fd = -1;
    std::uint64_t key = 0;
  };

  void accept_loop();
  void worker_loop();
  void handle_connection(Conn conn);
  void reply_and_close(int fd, const Response& response);
  /// Writes the full rendered response; false when the client is gone.
  bool write_response(int fd, const Response& response);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::unique_ptr<ingest::BoundedQueue<Conn>> admission_;

  mutable std::mutex view_mutex_;
  std::shared_ptr<const ServeView> view_;

  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> replies_ok{0};
    std::atomic<std::uint64_t> replies_err{0};
    std::atomic<std::uint64_t> busy_sheds{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> disconnects{0};
    std::atomic<std::uint64_t> accept_failures{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> epoch_swaps{0};
  };
  Counters counters_;
};

}  // namespace repro::serve
