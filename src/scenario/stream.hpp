// Streaming ingest: the paper pipeline as a durable epoch loop.
//
// build_streaming_dataset produces the same Dataset as the one-shot
// build_paper_dataset — byte-identical, at every pool width — but gets
// there the way a live deployment would: every attack event becomes a
// WAL record that is delivered (with deterministic retry/backoff under
// injected faults), buffered through a bounded backpressure queue, and
// durably appended to the crash-safe WAL in src/ingest. The stream is
// split into N epochs; each epoch replays its record delta into the
// event database, enriches the delta, advances the E/P/M/B clusterings
// incrementally (delta counting + flip-triggered reclassification for
// EPM, signature-cached LSH for B — byte-identical to a full recompute,
// which StreamOptions::incremental=false still runs) and cuts an epoch
// checkpoint. A run killed at any point — mid-epoch,
// mid-append, mid-segment-rotation, mid-checkpoint-write — resumes
// from the newest valid epoch cut plus the recovered WAL tail and
// finishes with byte-identical output, which is the contract pinned by
// tests/stream_test and the CI crash-loop job.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ingest/delivery.hpp"
#include "scenario/paper.hpp"

namespace repro::scenario {

struct StreamOptions {
  /// Number of epoch batches the event stream is cut into. Epoch
  /// boundaries are record counts (k * total / epochs), so a resumed
  /// checkpoint stays usable even under a different split.
  std::size_t epochs = 4;
  /// WAL segment directory (required).
  std::string wal_dir;
  /// WAL rotation threshold; tests shrink it to force rotations.
  std::uint64_t segment_bytes = 1u << 20;
  /// Sensor-to-collector retry/backoff policy.
  ingest::RetryPolicy retry;
  /// Bounded ingest queue capacity. The epoch driver always uses the
  /// kBlock overflow policy: a full queue stalls the producer and is
  /// drained to the WAL, so no record is ever shed (shedding would
  /// break the byte-identity guarantee; the kShedOldest policy is for
  /// lossy sensor-side buffers and is exercised by the ingest tests).
  std::size_t queue_capacity = 64;
  /// Incremental epoch clustering (the default): E/P/M advance durable
  /// per-(feature,value) counting state and re-generalize only rows
  /// whose invariant status flipped, and B reuses cached MinHash
  /// signatures for the unchanged profile prefix. Off re-runs the full
  /// clustering every epoch — the pre-incremental behavior, kept as the
  /// verification baseline and for the ABL-10 cost comparison. Both
  /// modes produce byte-identical output.
  bool incremental = true;
  /// Cross-check mode: every computed epoch runs BOTH the incremental
  /// and the full path and byte-compares their serialized results,
  /// throwing ConfigError on the first divergence. Costs both paths per
  /// epoch — a test/CI mode, not a production one. Implies the
  /// incremental results are the ones published and checkpointed.
  bool verify_incremental = false;
  /// Test seam, forwarded to WalOptions::fail_after_seal: simulated
  /// crash between sealing a segment and opening the next one.
  std::uint64_t fail_after_seal = 0;
  /// Crash seam: called after every durable append with the number of
  /// records this process run has appended so far. The CLI uses it to
  /// SIGKILL itself at a seeded point; tests throw
  /// snapshot::CheckpointInterrupted from it.
  std::function<void(std::uint64_t appended_this_run)> after_append;
  /// Observation hook: called after an epoch's clustering results are
  /// complete and its checkpoint cut is durable, before the loop moves
  /// on; `epoch` is the 1-based count of durable epochs (the final call
  /// passes `epochs`). The serving layer builds a query snapshot here
  /// and hot-swaps it in; the hook must copy anything it keeps — the
  /// references die with the next epoch. Epochs skipped on resume
  /// (already covered by a restored cut) do not fire it.
  std::function<void(const honeypot::EventDatabase& db,
                     const snapshot::EpmStage& epm,
                     const analysis::BehavioralView& b, std::size_t epoch)>
      on_epoch;

  /// Throws ConfigError on zero epochs/capacity, an empty wal_dir, or
  /// an invalid retry policy.
  void validate() const;
};

/// Runs the streaming epoch loop. Epoch checkpoints are written through
/// `options.checkpoint` (same store and fingerprint rules as the batch
/// stages; disabled when the directory is empty — the run then always
/// starts from the recovered WAL alone). Returns the same Dataset as
/// build_paper_dataset(options), plus populated `ingest` accounting.
[[nodiscard]] Dataset build_streaming_dataset(const ScenarioOptions& options,
                                              const StreamOptions& stream);

}  // namespace repro::scenario
