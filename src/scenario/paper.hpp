// The paper-scale scenario: a landscape tuned so the observed dataset
// reproduces the statistics reported in the paper (Section 4.1 counts,
// Table 1 invariants, Figure 3/4/5 shapes, Table 2 topology).
//
// All substitution decisions are documented in DESIGN.md; the knobs
// below are calibrated against the paper's numbers and EXPERIMENTS.md
// records paper-vs-measured for every artifact.
#pragma once

#include <cstdint>

#include "analysis/bview.hpp"
#include "cluster/behavioral.hpp"
#include "cluster/epm.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "honeypot/database.hpp"
#include "honeypot/deployment.hpp"
#include "honeypot/enrichment.hpp"
#include "ingest/report.hpp"
#include "malware/landscape.hpp"
#include "sandbox/environment.hpp"
#include "snapshot/checkpoint.hpp"

namespace repro {
class ThreadPool;
struct ThreadPoolMetrics;
}  // namespace repro

namespace repro::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace repro::obs

namespace repro::scenario {

struct ScenarioOptions {
  std::uint64_t seed = 2008;
  /// Scales event rates (not structure); tests use small values for
  /// speed, benches use 1.0 for paper-scale output.
  double scale = 1.0;
  /// Jaccard threshold of the behavioral clustering.
  double b_threshold = 0.70;
  /// B-clustering backend (cluster/backend.hpp registry). Deliberately
  /// NOT part of the scenario fingerprint: the landscape, database and
  /// EPM results are backend-independent, so their snapshots and WAL
  /// segments are sound to share across backends. Backend-dependent
  /// artifacts (the behavioral stage, epoch cuts) carry their own
  /// backend tag instead — a mismatch quarantines the batch stage as
  /// stale, and the incremental streaming path refuses the switch with
  /// a typed ConfigError (see DESIGN.md §15).
  cluster::BackendKind b_backend = cluster::BackendKind::kLsh;
  /// Worker-pool width for the processing pipeline (enrichment and the
  /// four clusterings). 0 = hardware_concurrency, 1 = the bit-exact
  /// legacy serial path. Output is byte-identical at every width, so —
  /// like the checkpoint knobs — this never enters the scenario
  /// fingerprint.
  std::size_t threads = 0;
  /// Fault-injection plan. The default (empty) plan is guaranteed to
  /// produce a dataset bit-identical to a run without any injector.
  fault::FaultPlan faults;
  /// Crash-safe checkpointing (opt-in). When `checkpoint.directory` is
  /// set, build_paper_dataset saves a snapshot after every stage and
  /// resumes from the last valid one on the next run. Resumed output is
  /// byte-identical to an uninterrupted run; snapshots written under
  /// different options (seed, scale, threshold, fault plan) are
  /// rejected by fingerprint and recomputed.
  snapshot::CheckpointOptions checkpoint;
  /// Optional observability sinks (non-owning). Purely observational:
  /// attaching them never changes a single dataset byte, and — like
  /// `threads` and the checkpoint knobs — they are excluded from the
  /// scenario fingerprint. Deterministic-channel metrics come out
  /// byte-identical at every pool width; the trace (and the runtime
  /// channel it carries) is wall-clock data and is not.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Stable 64-bit digest of every dataset-shaping option (seed, scale,
/// threshold and the full fault plan — not the checkpoint knobs, and
/// not `threads`, which never changes the dataset). Embedded in
/// snapshots so stale checkpoints never leak across configurations.
/// `b_backend` is also excluded: backend-independent stages share
/// snapshots and WAL segments across backends, while backend-dependent
/// ones are guarded by their own backend tag (see ScenarioOptions).
[[nodiscard]] std::uint64_t scenario_fingerprint(
    const ScenarioOptions& options);

/// Ground truth: families, variants, exploits, payload specs, window.
[[nodiscard]] malware::Landscape make_paper_landscape(
    const ScenarioOptions& options = {});

/// Execution environment consistent with the landscape: IRC C&C
/// servers up for the first ~70% of their botnet's activity window, and
/// the downloader's distribution domain resolving for the first ~60% of
/// the observation period.
[[nodiscard]] sandbox::Environment make_paper_environment(
    const malware::Landscape& landscape);

/// Everything the analyses need, produced by one pipeline run:
/// generate -> observe -> enrich -> cluster (E, P, M, B).
struct Dataset {
  malware::Landscape landscape;
  sandbox::Environment environment;
  honeypot::EventDatabase db;
  honeypot::EnrichmentStats enrichment;
  cluster::EpmResult e;
  cluster::EpmResult p;
  cluster::EpmResult m;
  analysis::BehavioralView b;
  /// Per-stage fault counters accumulated while building the dataset;
  /// all-zero when `ScenarioOptions::faults` is empty. Restored from
  /// the stage-2 snapshot on resume (the injector is not re-exercised
  /// for restored stages).
  fault::FaultReport fault_report;
  /// What checkpointing did during this build (all-zero when disabled).
  snapshot::CheckpointStore::Activity checkpoint_activity;
  /// Streaming-ingest accounting; all-zero for a one-shot batch build
  /// (only build_streaming_dataset drives the WAL/queue/epoch path).
  ingest::IngestReport ingest;
};

[[nodiscard]] Dataset build_paper_dataset(const ScenarioOptions& options = {});

/// The deployment configuration the paper scenario runs under; shared
/// by the batch build above and the streaming epoch loop so both
/// generate the exact same event sequence.
[[nodiscard]] honeypot::DeploymentConfig make_paper_deployment_config(
    const ScenarioOptions& options, fault::FaultInjector* faults);

/// Publishes the dataset's outcome counters ("pipeline.*", "enrich.*",
/// "cluster.*", "fault.*", "snapshot.*") on the deterministic channel.
/// Values come from the final Dataset, so fresh, resumed and streamed
/// builds of the same configuration export identical metrics.
void publish_dataset_metrics(obs::MetricsRegistry& metrics,
                             const Dataset& dataset);

/// Copies the pool's scheduling telemetry into the registry. Strictly
/// runtime-channel: at width 1 the serial fast paths bypass the pool
/// entirely, so none of these counts can be width-stable.
void publish_pool_metrics(obs::MetricsRegistry& metrics,
                          const ThreadPool& pool,
                          const ThreadPoolMetrics& counters);

}  // namespace repro::scenario
