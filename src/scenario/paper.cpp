#include "scenario/paper.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "cluster/feature.hpp"
#include "malware/binary.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pe/builder.hpp"
#include "util/byteio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace repro::scenario {

namespace {

using malware::ActivitySchedule;
using malware::BehaviorKind;
using malware::BehaviorSpec;
using malware::Landscape;
using malware::MalwareFamily;
using malware::MalwareVariant;
using malware::PayloadSpec;
using malware::PeShape;
using malware::PolymorphismMode;
using malware::PopulationSpec;

// ---------------------------------------------------------------------------
// Calibration constants. Paper targets are quoted next to each knob.
// ---------------------------------------------------------------------------

/// Observation window: January 2008 - May 2009 (Section 4).
constexpr int kWeeks = 74;

/// Allaple-like worm: "almost 100 different static clusters" linked to
/// two B-clusters; the bulk of the 6353 collected samples.
constexpr int kAllapleSizeVariants = 84;    // distinct file sizes
constexpr int kAllapleRelinkEvery = 3;      // every 4th size also ships a
                                            // recompiled (new linker) build
constexpr std::uint32_t kAllapleBaseSize = 4608;
constexpr double kAllapleRate = 0.44;       // events/week per 100 hosts

/// Per-execution noise behind the ~860 singleton B-clusters.
constexpr double kAllapleNoiseProbability = 0.172;
constexpr int kAllapleNoiseFeatures = 8;

/// The "M-cluster 13" case: per-source polymorphic downloader.
constexpr std::uint32_t kM13Size = 59904;

/// Bot landscape: Table 2 channels plus a wider population of botnets.
constexpr int kExtraBotChannels = 28;

/// Trojan families (multi-variant, stable hash codebases).
constexpr int kTrojanFamilies = 14;

/// Rare tail: variants observed a handful of times.
constexpr int kRareTail = 40;

/// Download failure rate; calibrated against 5165/6353 analyzable.
constexpr double kTruncationProbability = 0.14;

// ---------------------------------------------------------------------------
// Static-shape pools (drive the Table 1 mu invariant counts).
// ---------------------------------------------------------------------------

struct ShapePools {
  std::vector<std::vector<std::string>> section_sets;
  std::vector<std::vector<pe::ImportSpec>> import_sets;
  std::vector<std::pair<std::uint8_t, std::uint8_t>> linkers;
  std::vector<std::uint32_t> bot_sizes;
};

ShapePools make_pools(Rng& rng) {
  ShapePools pools;

  // ~52 distinct section-name sets (Table 1: 43 invariant name sets).
  const std::vector<std::string> names = {
      ".text",  ".data", ".rdata", "rdata",  ".rsrc", ".reloc",
      "UPX0",   "UPX1",  ".code",  ".bss",   ".idata", ".pack",
      "CODE",   "DATA",  ".tls",   ".crt"};
  std::set<std::string> seen;
  while (pools.section_sets.size() < 52) {
    std::vector<std::string> pick = names;
    rng.shuffle(pick);
    const std::size_t count = 2 + rng.index(7);  // 2..8 sections
    std::vector<std::string> set{pick.begin(),
                                 pick.begin() + static_cast<long>(count)};
    std::string key;
    for (const auto& n : set) key += n + ",";
    if (seen.insert(key).second) pools.section_sets.push_back(std::move(set));
  }

  // Import sets: 11 distinct DLL combinations, 15 distinct Kernel32
  // symbol subsets (Table 1).
  const std::vector<std::string> k32 = {
      "GetProcAddress", "LoadLibraryA",  "CreateFileA",   "WriteFile",
      "CreateMutexA",   "Sleep",         "GetTickCount",  "VirtualAlloc",
      "ExitProcess",    "CopyFileA",     "GetModuleHandleA",
      "CreateProcessA", "GetTempPathA",  "WinExec",       "CloseHandle"};
  const std::vector<std::string> other_dlls = {
      "USER32.dll", "WS2_32.dll", "WININET.dll", "ADVAPI32.dll",
      "SHELL32.dll", "MSVCRT.dll"};
  std::set<std::string> seen_syms;
  for (int i = 0; i < 15; ++i) {
    std::vector<std::string> symbols = k32;
    rng.shuffle(symbols);
    symbols.resize(2 + rng.index(5));  // 2..6 symbols
    std::sort(symbols.begin(), symbols.end());
    std::vector<pe::ImportSpec> set;
    set.push_back(pe::ImportSpec{"KERNEL32.dll", symbols});
    // 11 distinct DLL-name combinations over 15 sets: sets i and i+11
    // intentionally share the DLL list (differing only in symbols).
    const int dll_combo = i % 11;
    for (int d = 0; d < dll_combo % 7; ++d) {
      set.push_back(pe::ImportSpec{
          other_dlls[static_cast<std::size_t>((dll_combo + d) %
                                              other_dlls.size())],
          {"func" + std::to_string(d)}});
    }
    pools.import_sets.push_back(std::move(set));
  }

  // 7 linker versions (Table 1).
  pools.linkers = {{9, 2}, {8, 0}, {7, 1}, {9, 0}, {6, 0}, {8, 1}, {5, 0}};

  // ~20 bot/trojan file sizes, reused across variants so the size
  // invariant count stays near the paper's 95.
  for (int i = 0; i < 22; ++i) {
    pools.bot_sizes.push_back(7680 +
                              512 * static_cast<std::uint32_t>(rng.index(44)));
  }
  std::sort(pools.bot_sizes.begin(), pools.bot_sizes.end());
  pools.bot_sizes.erase(
      std::unique(pools.bot_sizes.begin(), pools.bot_sizes.end()),
      pools.bot_sizes.end());
  return pools;
}

// ---------------------------------------------------------------------------
// Payload specs (drive the Table 1 pi invariant counts, 27 P-clusters).
// ---------------------------------------------------------------------------

std::vector<PayloadSpec> make_payloads() {
  std::vector<PayloadSpec> payloads;
  const auto push = [&](PayloadSpec spec) { payloads.push_back(std::move(spec)); };

  // 0: the Allaple/M13 vector — PUSH on tcp/9988 ("P-pattern 45").
  {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kBind;
    spec.port = 9988;
    push(spec);
  }
  // 1: push over the exploited connection.
  {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kCsend;
    spec.port = 445;
    push(spec);
  }
  // 2: connect-back listener (reuses 445 so the pi port-invariant count
  // stays near the paper's 4).
  {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kConnectBack;
    spec.port = 445;
    push(spec);
  }
  // FTP fetches from the attacker: 8 fixed filenames + 1 random-name.
  const std::vector<std::string> ftp_names = {
      "ssms.exe", "x.exe",     "winudp.exe", "bot.exe",
      "crss.exe", "msnet.exe", "udpx.exe",   "lsasvc.exe"};
  for (const std::string& name : ftp_names) {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kFtp;
    spec.port = 21;
    spec.filename = name;
    push(spec);
  }
  {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kFtp;
    spec.port = 21;
    spec.random_filename = true;
    push(spec);
  }
  // HTTP fetches: 7 from the attacker, 3 from central repositories,
  // 1 random-name.
  const std::vector<std::string> http_names = {
      "update.exe", "load.exe",   "setup32.exe", "winsys.exe",
      "qx.exe",     "netmgr.exe", "applet.exe",  "mswupd.exe"};
  for (const std::string& name : http_names) {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kHttp;
    spec.port = 80;
    spec.filename = name;
    push(spec);
  }
  const std::vector<std::pair<std::string, std::string>> central = {
      {"pack1.exe", "85.14.27.9"},
      {"pack2.exe", "85.14.27.9"},
      {"stage2.exe", "203.117.45.30"}};
  for (const auto& [name, host] : central) {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kHttp;
    spec.port = 80;
    spec.filename = name;
    spec.host_role = shellcode::HostRole::kThirdParty;
    spec.central_host = net::Ipv4::parse(host);
    push(spec);
  }
  {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kHttp;
    spec.port = 80;
    spec.random_filename = true;
    push(spec);
  }
  // TFTP fetches: 3 fixed filenames, delivered by alphanumeric-encoded
  // shellcode (a second decoder family for the Nepenthes analyzer).
  for (const std::string& name :
       {std::string{"wins.exe"}, std::string{"tftpd32.exe"},
        std::string{"mslaugh.exe"}}) {
    PayloadSpec spec;
    spec.protocol = shellcode::Protocol::kTftp;
    spec.port = 69;
    spec.filename = name;
    spec.encoder.kind = shellcode::EncoderKind::kAlphanumeric;
    push(spec);
  }
  return payloads;  // 27 distinct pi patterns
}

// ---------------------------------------------------------------------------
// Behavior feature helpers.
// ---------------------------------------------------------------------------

std::vector<std::string> allaple_base(int group) {
  std::vector<std::string> features = {
      "file|write|C:\\WINDOWS\\system32\\urdvxc.exe",
      "registry|set|HKLM\\SOFTWARE\\Classes\\CLSID\\{55DB983C}",
      "mutex|create|jhdheruhfrthkgjhti",
      "network|scan|445",
      "network|raw-socket|icmp",
      "file|enum|*.html",
      "file|infect|html-prepend-object",
      "process|create|self-copy",
      "service|install|MSWindows",
      "network|scan|139",
  };
  if (group == 0) {
    features.push_back("dos|syn|www.target-a.example");
    features.push_back("dos|icmp|www.target-a.example");
    features.push_back("file|write|C:\\WINDOWS\\babackup.exe");
    features.push_back("mutex|create|allaplemtx_a");
  } else {
    features.push_back("dos|syn|www.target-b.example");
    features.push_back("dos|udp|www.target-b.example");
    features.push_back("file|write|C:\\WINDOWS\\nvrsvc.exe");
    features.push_back("mutex|create|allaplemtx_b");
    features.push_back("registry|set|HKLM\\...\\Run\\nvrsvc");
  }
  return features;
}

std::vector<std::string> botkit_base(int kit) {
  std::vector<std::string> features = {
      "file|write|C:\\WINDOWS\\system32\\wuamgrd.exe",
      "registry|set|HKLM\\...\\Run\\wuamgrd",
      "process|inject|explorer.exe",
      "network|scan|445",
      "keylog|install|hook13",
      "service|stop|wscsvc",
      "service|stop|SharedAccess",
      "file|delete|C:\\WINDOWS\\temp\\~tmp",
  };
  features.push_back("mutex|create|botkit" + std::to_string(kit));
  features.push_back("file|write|C:\\WINDOWS\\kit" + std::to_string(kit) +
                     ".dll");
  features.push_back("registry|set|HKLM\\...\\kit" + std::to_string(kit));
  return features;
}

// ---------------------------------------------------------------------------
// Landscape assembly.
// ---------------------------------------------------------------------------

struct Builder {
  Landscape landscape;
  ShapePools pools;
  Rng rng;
  double scale;

  explicit Builder(const ScenarioOptions& options)
      : rng(mix64(options.seed ^ 0x5ce0'0000'0000'0000ULL)),
        scale(options.scale) {
    landscape.start_time = parse_date("2008-01-01");
    landscape.weeks = kWeeks;
    pools = make_pools(rng);
    landscape.payloads = make_payloads();
    // 50 exploit implementations over the three service ports.
    for (std::uint32_t i = 0; i < 30; ++i) {
      landscape.exploits.push_back(
          proto::make_exploit_template(proto::ServiceKind::kSmb445, i));
    }
    for (std::uint32_t i = 0; i < 12; ++i) {
      landscape.exploits.push_back(
          proto::make_exploit_template(proto::ServiceKind::kNetbios139, i));
    }
    for (std::uint32_t i = 0; i < 8; ++i) {
      landscape.exploits.push_back(
          proto::make_exploit_template(proto::ServiceKind::kDceRpc135, i));
    }
  }

  MalwareFamily& family(const std::string& name) {
    MalwareFamily fam;
    fam.id = static_cast<malware::FamilyId>(landscape.families.size());
    fam.name = name;
    landscape.families.push_back(std::move(fam));
    return landscape.families.back();
  }

  MalwareVariant& variant(MalwareFamily& fam, const std::string& name) {
    MalwareVariant var;
    var.id = static_cast<malware::VariantId>(landscape.variants.size());
    var.family = fam.id;
    var.name = name;
    var.seed = mix64(rng.next() ^ fnv1a64(name));
    landscape.variants.push_back(std::move(var));
    // The family list references the id; note that &landscape.variants
    // .back() stays valid only until the next push -- callers configure
    // the variant before creating another.
    landscape.families[fam.id].variants.push_back(
        landscape.variants.back().id);
    return landscape.variants.back();
  }

  void finalize_template(MalwareVariant& var, PeShape shape) {
    if (shape.target_file_size != 0) {
      // Guarantee the padding target is reachable: section content plus
      // import tables may exceed a small pool size.
      PeShape unpadded = shape;
      unpadded.target_file_size = 0;
      const std::uint32_t natural = static_cast<std::uint32_t>(
          pe::build_pe(malware::make_pe_template(unpadded, var.seed)).size());
      if (shape.target_file_size < natural) {
        shape.target_file_size = (natural + 511) / 512 * 512;
      }
    }
    var.pe_template = malware::make_pe_template(shape, var.seed);
    var.mutable_sections = malware::mutable_section_indices(var.pe_template);
  }

  void add_allaple();
  void add_m13();
  void add_botnets();
  void add_trojans();
  void add_tail();
};

void Builder::add_allaple() {
  family("allaple");
  const std::size_t fam_index = landscape.families.size() - 1;
  int built = 0;
  for (int i = 0; i < kAllapleSizeVariants; ++i) {
    const std::uint32_t size =
        kAllapleBaseSize + 512 * static_cast<std::uint32_t>(i);
    const int relink_builds = i % kAllapleRelinkEvery == 0 ? 2 : 1;
    for (int build = 0; build < relink_builds; ++build) {
      MalwareVariant& var = variant(landscape.families[fam_index],
                                    "allaple-" + std::to_string(i) +
                                        (build ? "b" : "a"));
      PeShape shape;
      shape.section_names = {".text", "rdata", ".data"};
      shape.import_section = 1;
      shape.code_bytes = 2048;
      shape.data_bytes = 1024;
      const auto& linker = pools.linkers[static_cast<std::size_t>(build == 0
                                                                      ? 0
                                                                      : 1 + i % 3)];
      shape.linker_major = linker.first;
      shape.linker_minor = linker.second;
      shape.imports = pools.import_sets[static_cast<std::size_t>(i % 2)];
      shape.target_file_size = size;
      finalize_template(var, shape);

      var.polymorphism = PolymorphismMode::kPerInstance;
      const int group = i % 2;
      var.behavior.kind = BehaviorKind::kWormDos;
      var.behavior.base_features = allaple_base(group);
      var.behavior.noise_probability = kAllapleNoiseProbability;
      var.behavior.noise_feature_count = kAllapleNoiseFeatures;
      var.exploit_index = i % 5 == 4 ? 1 : 0;  // two SMB implementations
      var.payload_index = 0;                   // PUSH tcp/9988
      var.population.spread = PopulationSpec::Spread::kWidespread;
      var.population.host_count =
          20 + static_cast<std::size_t>(rng.index(580));
      var.schedule.kind = ActivitySchedule::Kind::kContinuous;
      var.schedule.start_week = static_cast<int>(rng.index(28));
      var.schedule.end_week = std::min(
          kWeeks, var.schedule.start_week + 22 + static_cast<int>(rng.index(44)));
      var.schedule.weekly_event_rate =
          kAllapleRate * scale *
          static_cast<double>(var.population.host_count) / 100.0;
      var.schedule.seed = var.seed;
      static const char* kSuffix[] = {"A", "B", "C", "D", "E", "F", "G", "H"};
      var.av_name = std::string{"W32.Rahack."} + kSuffix[i % 8];
      ++built;
    }
  }
  (void)built;
}

void Builder::add_m13() {
  MalwareFamily& fam = family("iliketay");
  MalwareVariant& var = variant(fam, "iliketay-dropper");
  PeShape shape;
  shape.section_names = {".text", "rdata", ".data"};
  shape.import_section = 1;
  shape.code_bytes = 2048;
  shape.data_bytes = 1024;
  shape.linker_major = 9;   // linkerversion=92, as in the paper's dump
  shape.linker_minor = 2;
  shape.imports = {{"KERNEL32.dll", {"GetProcAddress", "LoadLibraryA"}}};
  shape.target_file_size = kM13Size;  // size=59904
  finalize_template(var, shape);

  var.polymorphism = PolymorphismMode::kPerSource;
  var.behavior.kind = BehaviorKind::kDownloader;
  var.behavior.base_features = {
      "file|write|C:\\WINDOWS\\system32\\qx32.exe",
      "registry|set|HKLM\\...\\Run\\qx32",
      "mutex|create|iliketaymtx",
      "network|scan|445",
      "file|enum|*.html",
      "file|infect|html-prepend-object",
      "process|create|self-copy",
  };
  var.behavior.downloader =
      malware::DownloaderCnc{"iliketay.cn", 2};
  // Same propagation vector as Allaple/Rahack (Section 4.2).
  var.exploit_index = 0;
  var.payload_index = 0;
  var.population.spread = PopulationSpec::Spread::kWidespread;
  var.population.host_count = 70;
  var.schedule.kind = ActivitySchedule::Kind::kContinuous;
  var.schedule.start_week = 6;
  var.schedule.end_week = kWeeks - 4;
  var.schedule.weekly_event_rate = 0.95 * scale;
  var.schedule.seed = var.seed;
  var.av_name = "Trojan.Iliketay.A";
}

void Builder::add_botnets() {
  // Table 2 ground truth: (server, room, number of patched builds).
  struct Channel {
    const char* server;
    const char* room;
    int builds;
  };
  const std::vector<Channel> table2 = {
      {"67.43.226.242", "#las6", 2}, {"67.43.232.34", "#kok8", 1},
      {"67.43.232.35", "#kok6", 2},  {"67.43.232.36", "#kham", 1},
      {"67.43.232.36", "#kok2", 1},  {"67.43.232.36", "#kok6", 2},
      {"67.43.232.36", "#ns", 1},    {"72.10.172.211", "#las6", 1},
      {"72.10.172.218", "#siwa", 1}, {"83.68.16.6", "#ns", 1},
  };
  // Additional botnets beyond Table 2: servers drawn from a few /24s
  // (co-location) and rooms from a recurring name pool.
  const std::vector<std::string> extra_servers_base = {
      "67.43.232", "67.43.226", "72.10.172", "83.68.16", "194.6.17",
      "210.51.8"};
  const std::vector<std::string> room_pool = {
      "#las2", "#kok1", "#ns2", "#siwa2", "#dpi", "#rx", "#sym", "#fud"};

  std::vector<std::tuple<std::string, std::string, int>> channels;
  for (const Channel& c : table2) channels.emplace_back(c.server, c.room, c.builds);
  for (int i = 0; i < kExtraBotChannels; ++i) {
    const std::string server =
        rng.pick(extra_servers_base) + "." +
        std::to_string(20 + rng.index(200));
    channels.emplace_back(server, rng.pick(room_pool),
                          rng.chance(0.75) ? 2 : 1);
  }

  // Provider networks bot populations live in.
  std::vector<net::Subnet> providers;
  for (int i = 0; i < 12; ++i) {
    const net::WidespreadSampler sampler;
    providers.push_back(net::Subnet{sampler.sample(rng), 16});
  }

  family("ircbot");
  const std::size_t fam_index = landscape.families.size() - 1;
  int channel_index = 0;
  for (const auto& [server, room, builds] : channels) {
    const int kit = channel_index % 3;
    for (int build = 0; build < builds; ++build) {
      MalwareVariant& var =
          variant(landscape.families[fam_index],
                  "bot-" + std::to_string(channel_index) + "-" +
                      std::to_string(build));
      PeShape shape;
      shape.section_names =
          pools.section_sets[(static_cast<std::size_t>(channel_index) * 2 +
                              static_cast<std::size_t>(build)) %
                             pools.section_sets.size()];
      shape.import_section = 1 % shape.section_names.size();
      shape.code_bytes = 1536;
      shape.data_bytes = 1024;
      const auto& linker =
          pools.linkers[static_cast<std::size_t>(channel_index + build) %
                        pools.linkers.size()];
      shape.linker_major = linker.first;
      shape.linker_minor = linker.second;
      shape.imports =
          pools.import_sets[static_cast<std::size_t>(channel_index) %
                            pools.import_sets.size()];
      shape.target_file_size =
          pools.bot_sizes[static_cast<std::size_t>(channel_index + 3 * build) %
                          pools.bot_sizes.size()];
      finalize_template(var, shape);

      var.polymorphism = PolymorphismMode::kNone;
      var.behavior.kind = BehaviorKind::kIrcBot;
      var.behavior.base_features = botkit_base(kit);
      var.behavior.irc =
          malware::IrcCnc{net::Ipv4::parse(server), 6667, room};
      var.exploit_index =
          1 + (static_cast<std::size_t>(channel_index) * 7 + 3) % 34;
      var.payload_index =
          1 + (static_cast<std::size_t>(channel_index) * 5 +
               static_cast<std::size_t>(build)) %
                  (landscape.payloads.size() - 1);
      var.population.spread = PopulationSpec::Spread::kConcentrated;
      var.population.subnets = {
          providers[static_cast<std::size_t>(channel_index) %
                    providers.size()],
          providers[static_cast<std::size_t>(channel_index * 3 + 1) %
                    providers.size()]};
      var.population.host_count = 6 + rng.index(14);
      var.schedule.kind = ActivitySchedule::Kind::kBursty;
      var.schedule.start_week = static_cast<int>(rng.index(48));
      var.schedule.end_week = std::min(
          kWeeks,
          var.schedule.start_week + 12 + static_cast<int>(rng.index(26)));
      var.schedule.weekly_event_rate = (1.5 + rng.real() * 1.8) * scale;
      var.schedule.burst_week_probability = 0.3;
      var.schedule.locations_per_burst = 1 + static_cast<int>(rng.index(2));
      var.schedule.seed = var.seed;
      var.av_name = kit == 0   ? "W32.Spybot.W"
                    : kit == 1 ? "W32.IRCBot.Gen"
                               : "Backdoor.Ranky";
    }
    ++channel_index;
  }
}

void Builder::add_trojans() {
  for (int f = 0; f < kTrojanFamilies; ++f) {
    family("trojan-" + std::to_string(f));
    const std::size_t fam_index = landscape.families.size() - 1;
    std::vector<std::string> base = {
        "file|write|C:\\WINDOWS\\tj" + std::to_string(f) + ".exe",
        "registry|set|HKLM\\...\\Run\\tj" + std::to_string(f),
        "mutex|create|tjmtx" + std::to_string(f),
        "process|create|self-copy",
        "file|delete|self",
        "registry|query|HKLM\\...\\CurrentVersion",
        "file|write|C:\\WINDOWS\\temp\\tj" + std::to_string(f) + ".log",
    };
    const int members = 2 + f % 2;
    for (int v = 0; v < members; ++v) {
      MalwareVariant& var = variant(
          landscape.families[fam_index],
          "trojan-" + std::to_string(f) + "-" + std::to_string(v));
      PeShape shape;
      shape.section_names =
          pools.section_sets[static_cast<std::size_t>(20 + f) %
                             pools.section_sets.size()];
      shape.import_section = 1 % shape.section_names.size();
      shape.code_bytes = 1024;
      shape.data_bytes = 1024;
      const auto& linker = pools.linkers[static_cast<std::size_t>(f + v) %
                                         pools.linkers.size()];
      shape.linker_major = linker.first;
      shape.linker_minor = linker.second;
      shape.imports = pools.import_sets[static_cast<std::size_t>(3 + f) %
                                        pools.import_sets.size()];
      shape.target_file_size =
          pools.bot_sizes[static_cast<std::size_t>(f * 2 + v) %
                          pools.bot_sizes.size()];
      finalize_template(var, shape);

      var.polymorphism = PolymorphismMode::kNone;
      var.behavior.kind = BehaviorKind::kGenericTrojan;
      var.behavior.base_features = base;
      var.exploit_index = 5 + (static_cast<std::size_t>(f) * 3 +
                               static_cast<std::size_t>(v)) %
                                  40;
      var.payload_index =
          4 + (static_cast<std::size_t>(f) + static_cast<std::size_t>(v)) %
                  (landscape.payloads.size() - 4);
      var.population.spread = PopulationSpec::Spread::kWidespread;
      var.population.host_count = 10 + rng.index(30);
      var.schedule.kind = ActivitySchedule::Kind::kContinuous;
      var.schedule.start_week = static_cast<int>(rng.index(40));
      var.schedule.end_week = std::min(
          kWeeks,
          var.schedule.start_week + 10 + static_cast<int>(rng.index(30)));
      var.schedule.weekly_event_rate = (0.25 + rng.real() * 0.3) * scale;
      var.schedule.seed = var.seed;
      var.av_name = "Trojan.Dropper." + std::to_string(f);
    }
  }
}

void Builder::add_tail() {
  family("rare-tail");
  const std::size_t fam_index = landscape.families.size() - 1;
  for (int i = 0; i < kRareTail; ++i) {
    // Shared behavior of this rare codebase; both static builds below
    // exhibit it, so the pair forms one tiny (but multi-sample)
    // B-cluster -- a residue of small, short-lived threats.
    const std::vector<std::string> base = {
        "file|write|C:\\WINDOWS\\rare" + std::to_string(i) + ".exe",
        "registry|set|HKLM\\...\\Run\\rare" + std::to_string(i),
        "mutex|create|rare" + std::to_string(i),
        "network|connect|rare" + std::to_string(i) + ".example:8080",
        "file|write|C:\\WINDOWS\\temp\\r" + std::to_string(i) + ".dat",
        "process|create|cmd.exe",
        "registry|query|HKLM\\...\\ComputerName",
        "file|read|C:\\boot.ini",
        "mutex|create|shield" + std::to_string(i * 17),
        "file|write|C:\\pagefile.tmp" + std::to_string(i),
    };
    for (int build = 0; build < 2; ++build) {
      MalwareVariant& var = variant(
          landscape.families[fam_index],
          "rare-" + std::to_string(i) + (build ? "b" : "a"));
      PeShape shape;
      shape.section_names =
          pools.section_sets[static_cast<std::size_t>(i + 11 * build) %
                             pools.section_sets.size()];
      shape.import_section = 1 % shape.section_names.size();
      shape.code_bytes =
          512 + 256 * static_cast<std::size_t>((i + build) % 4);
      shape.data_bytes = 512;
      const auto& linker =
          pools.linkers[static_cast<std::size_t>(i + build) %
                        pools.linkers.size()];
      shape.linker_major = linker.first;
      shape.linker_minor = linker.second;
      shape.imports = pools.import_sets[static_cast<std::size_t>(i * 5 + build) %
                                        pools.import_sets.size()];
      // Natural size (no padding): tail sizes are idiosyncratic and
      // mostly below the invariant thresholds.
      finalize_template(var, shape);

      var.polymorphism = PolymorphismMode::kNone;
      var.behavior.kind = BehaviorKind::kGenericTrojan;
      var.behavior.base_features = base;
      // The last few implementations exist only in the tail and stay
      // below the FSM-path invariant thresholds.
      var.exploit_index = i < 30
                              ? 8 + static_cast<std::size_t>(i) % 34
                              : 42 + static_cast<std::size_t>(i) % 8;
      var.payload_index = 2 + static_cast<std::size_t>(i * 3) %
                                  (landscape.payloads.size() - 2);
      var.population.spread = PopulationSpec::Spread::kWidespread;
      var.population.host_count = 2 + rng.index(3);
      var.schedule.kind = ActivitySchedule::Kind::kBursty;
      var.schedule.start_week = static_cast<int>(rng.index(kWeeks - 8));
      var.schedule.end_week = var.schedule.start_week + 4;
      var.schedule.weekly_event_rate = (0.3 + rng.real() * 0.6) * scale;
      var.schedule.burst_week_probability = 0.6;
      var.schedule.seed = var.seed;
      var.av_name = "Trojan.Gen." + std::to_string(i % 9);
    }
  }

  // Non-PE residue: HTML droppers, scripts, archives and plain junk
  // occasionally collected by the deployment. They cannot execute
  // (enrichment marks them failed) but contribute the remaining
  // libmagic file-type invariants of Table 1.
  const std::vector<malware::BinaryFormat> oddballs = {
      malware::BinaryFormat::kHtml, malware::BinaryFormat::kScript,
      malware::BinaryFormat::kZip, malware::BinaryFormat::kRawData};
  for (std::size_t i = 0; i < oddballs.size(); ++i) {
    MalwareVariant& var = variant(landscape.families[fam_index],
                                  "oddball-" + std::to_string(i));
    var.format = oddballs[i];
    var.raw_size = 2048 + 512 * static_cast<std::uint32_t>(i);
    var.polymorphism = PolymorphismMode::kNone;
    var.behavior.kind = BehaviorKind::kGenericTrojan;
    var.exploit_index = 3 + i;
    var.payload_index = 4 + i;
    var.population.spread = PopulationSpec::Spread::kWidespread;
    var.population.host_count = 6;
    var.schedule.kind = ActivitySchedule::Kind::kContinuous;
    var.schedule.start_week = static_cast<int>(4 + 6 * i);
    var.schedule.end_week = var.schedule.start_week + 30;
    var.schedule.weekly_event_rate = 0.7 * scale;
    var.schedule.seed = var.seed;
    var.av_name = "(not detected)";
  }
}

}  // namespace

malware::Landscape make_paper_landscape(const ScenarioOptions& options) {
  Builder builder{options};
  builder.add_allaple();
  builder.add_m13();
  builder.add_botnets();
  builder.add_trojans();
  builder.add_tail();
  builder.landscape.validate();
  return std::move(builder.landscape);
}

sandbox::Environment make_paper_environment(
    const malware::Landscape& landscape) {
  sandbox::Environment environment;
  const SimTime start = landscape.start_time;

  // The distribution domain of the downloader family resolves for the
  // first ~60% of the observation window, then disappears from DNS
  // (the paper's footnote: the entry was removed and is now
  // blacklisted).
  for (const malware::MalwareVariant& var : landscape.variants) {
    if (var.behavior.downloader.has_value()) {
      environment.set_dns(
          var.behavior.downloader->domain,
          sandbox::AvailabilityWindow{
              start, add_weeks(start, landscape.weeks * 6 / 10)});
    }
    if (var.behavior.irc.has_value()) {
      // A C&C server is reachable from its botnet's first activity until
      // ~70% through the window; samples collected late are executed
      // after the channel died.
      const int up_from = var.schedule.start_week;
      const int up_to =
          up_from + std::max(1, (var.schedule.end_week - up_from) * 7 / 10);
      const net::Ipv4 server = var.behavior.irc->server;
      // Merge with any window registered by a sibling botnet on the
      // same server: keep the widest span.
      const auto it = environment.servers().find(server);
      SimTime from = add_weeks(start, up_from);
      SimTime to = add_weeks(start, up_to);
      if (it != environment.servers().end()) {
        from = std::min(from, it->second.from);
        to = std::max(to, it->second.to);
      }
      environment.set_server(server, sandbox::AvailabilityWindow{from, to});
    }
  }
  return environment;
}

std::uint64_t scenario_fingerprint(const ScenarioOptions& options) {
  // Serialize every dataset-shaping knob deterministically and digest
  // the bytes. The checkpoint knobs are deliberately excluded: where a
  // snapshot lives must not change what it certifies.
  ByteWriter writer;
  writer.u64(options.seed);
  writer.u64(std::bit_cast<std::uint64_t>(options.scale));
  writer.u64(std::bit_cast<std::uint64_t>(options.b_threshold));
  const fault::FaultPlan& plan = options.faults;
  writer.u64(plan.seed);
  writer.u64(plan.sensor_outages.size());
  for (const fault::SensorOutage& outage : plan.sensor_outages) {
    writer.u32(static_cast<std::uint32_t>(outage.location));
    writer.u32(static_cast<std::uint32_t>(outage.from_week));
    writer.u32(static_cast<std::uint32_t>(outage.to_week));
  }
  writer.u64(std::bit_cast<std::uint64_t>(plan.proxy_failure_probability));
  writer.u32(static_cast<std::uint32_t>(plan.proxy_max_retries));
  writer.u32(static_cast<std::uint32_t>(plan.proxy_backoff_base_seconds));
  writer.u64(std::bit_cast<std::uint64_t>(plan.download_refused_probability));
  writer.u64(
      std::bit_cast<std::uint64_t>(plan.download_corruption_probability));
  writer.u64(std::bit_cast<std::uint64_t>(plan.sandbox_failure_probability));
  writer.u64(std::bit_cast<std::uint64_t>(plan.av_label_gap_probability));
  writer.u64(std::bit_cast<std::uint64_t>(plan.ingest_failure_probability));
  // The serve_* probabilities are deliberately excluded: they shape the
  // query surface of a live daemon, never the dataset a snapshot
  // certifies (same rationale as the checkpoint knobs above).
  return fnv1a64(std::string_view{
      reinterpret_cast<const char*>(writer.data().data()),
      writer.data().size()});
}

/// Publishes the pipeline's outcome counts from the *final* Dataset,
/// so fresh and resumed runs export the same values (restored stages
/// contribute through their snapshots, not by re-running).
void publish_dataset_metrics(obs::MetricsRegistry& metrics,
                             const Dataset& dataset) {
  const auto set = [&](std::string_view name, std::size_t value) {
    metrics.counter(name).add(static_cast<std::uint64_t>(value));
  };
  set("landscape.families", dataset.landscape.families.size());
  set("landscape.variants", dataset.landscape.variants.size());
  set("landscape.exploits", dataset.landscape.exploits.size());
  set("environment.dns_entries", dataset.environment.dns().size());
  set("environment.servers", dataset.environment.servers().size());
  set("pipeline.events", dataset.db.events().size());
  set("pipeline.samples", dataset.db.samples().size());

  set("enrich.submitted", dataset.enrichment.submitted);
  set("enrich.executed", dataset.enrichment.executed);
  set("enrich.failed", dataset.enrichment.failed);
  set("enrich.parse_failures", dataset.enrichment.parse_failures);
  set("enrich.sandbox_faults", dataset.enrichment.sandbox_faults);
  set("enrich.label_gaps", dataset.enrichment.label_gaps);

  set("cluster.e.clusters", dataset.e.cluster_count());
  set("cluster.p.clusters", dataset.p.cluster_count());
  set("cluster.m.clusters", dataset.m.cluster_count());
  set("cluster.b.clusters", dataset.b.cluster_count());
  set("cluster.b.singletons", dataset.b.singleton_count());
  auto& sizes = metrics.histogram("cluster.b.size", {1, 2, 4, 8, 16, 64});
  for (const auto& members : dataset.b.clusters().members) {
    sizes.observe(static_cast<std::uint64_t>(members.size()));
  }

  const fault::FaultReport& faults = dataset.fault_report;
  set("fault.sensor.checked", faults.sensor_checks);
  set("fault.sensor.injected", faults.attacks_lost_to_outage);
  set("fault.proxy.checked", faults.proxy_attempts);
  set("fault.proxy.injected", faults.proxy_failures);
  set("fault.download.checked", faults.download_checks);
  set("fault.download.injected",
      faults.downloads_refused + faults.downloads_corrupted);
  set("fault.sandbox.checked", faults.sandbox_checks);
  set("fault.sandbox.injected", faults.sandbox_failures);
  set("fault.avlabel.checked", faults.av_label_checks);
  set("fault.avlabel.injected", faults.av_label_gaps);
  // Retry-exhaustion and ingest-delivery auditing (all-zero outside
  // fault-injected streaming runs, but always exported so the bench
  // --check tables stay total).
  set("fault.proxy.retry_exhausted", faults.refinements_abandoned);
  set("fault.delivery.checked", faults.delivery_checks);
  set("fault.delivery.injected", faults.delivery_failures);
  set("fault.delivery.retries", faults.delivery_retries);
  set("fault.delivery.retry_exhausted", faults.delivery_retry_exhausted);
  set("fault.delivery.backoff_seconds",
      static_cast<std::size_t>(faults.delivery_backoff_seconds));

  const snapshot::CheckpointStore::Activity& snap =
      dataset.checkpoint_activity;
  set("snapshot.saved", snap.saved);
  set("snapshot.restored", snap.restored);
  set("snapshot.quarantined", snap.quarantined);
  set("snapshot.stale", snap.stale);
  set("snapshot.bytes_written", snap.bytes_written);
}

void publish_pool_metrics(obs::MetricsRegistry& metrics,
                          const ThreadPool& pool,
                          const ThreadPoolMetrics& counters) {
  constexpr auto kRuntime = obs::Channel::kRuntime;
  metrics.gauge("pool.width", kRuntime)
      .set(static_cast<std::int64_t>(pool.width()));
  metrics.counter("pool.jobs", kRuntime).add(counters.jobs.load());
  metrics.counter("pool.chunks", kRuntime).add(counters.chunks.load());
  metrics.counter("pool.caller_chunks", kRuntime)
      .add(counters.caller_chunks.load());
  metrics.counter("pool.helper_chunks", kRuntime)
      .add(counters.helper_chunks.load());
  metrics.gauge("pool.max_queue_depth", kRuntime)
      .raise_to(static_cast<std::int64_t>(counters.max_queue_depth.load()));
}

honeypot::DeploymentConfig make_paper_deployment_config(
    const ScenarioOptions& options, fault::FaultInjector* faults) {
  honeypot::DeploymentConfig config;
  config.seed = options.seed;
  config.download.truncation_probability = kTruncationProbability;
  config.faults = faults;
  return config;
}

Dataset build_paper_dataset(const ScenarioOptions& options) {
  options.faults.validate();
  snapshot::CheckpointStore store{options.checkpoint,
                                  scenario_fingerprint(options)};
  Dataset dataset;
  // One pool for the whole build; every consumer produces output
  // byte-identical to the serial path, so the width is a pure
  // throughput knob (and deliberately absent from the fingerprint).
  ThreadPool pool{options.threads};
  ThreadPoolMetrics pool_metrics;
  if (options.metrics != nullptr) pool.attach_metrics(&pool_metrics);

  const obs::TraceRecorder::Scoped pipeline_span{options.trace, "pipeline"};

  // Stage 1 — ground truth. The environment is a pure function of the
  // landscape, so it is rebuilt rather than snapshotted.
  {
    const obs::TraceRecorder::Scoped span{options.trace, "stage.landscape",
                                          pipeline_span.id()};
    if (auto loaded = store.load_landscape()) {
      dataset.landscape = std::move(*loaded);
    } else {
      dataset.landscape = make_paper_landscape(options);
      store.save_landscape(dataset.landscape);
    }
  }
  {
    const obs::TraceRecorder::Scoped span{options.trace, "stage.environment",
                                          pipeline_span.id()};
    dataset.environment = make_paper_environment(dataset.landscape);
  }

  // Stage 2 — deployment + enrichment. The fault report travels with
  // the snapshot: the injector is not re-exercised on resume, so its
  // counters can only come from the stage that produced them.
  if (auto loaded = store.load_database()) {
    dataset.db = std::move(loaded->db);
    dataset.enrichment = loaded->enrichment;
    dataset.fault_report = loaded->fault_report;
  } else {
    // Only hand the deployment an injector when a *pipeline* site can
    // actually fire; an empty plan is equivalent either way (the
    // injector draws no shared randomness), the nullptr path just makes
    // that obvious. Serve-only plans gate on pipeline_empty() so a live
    // daemon's client-fault knobs never perturb fault.*.checked.
    fault::FaultInjector injector{options.faults};
    fault::FaultInjector* faults =
        options.faults.pipeline_empty() ? nullptr : &injector;

    const honeypot::DeploymentConfig config =
        make_paper_deployment_config(options, faults);
    honeypot::Deployment deployment{dataset.landscape, config};
    snapshot::DatabaseStage stage;
    {
      const obs::TraceRecorder::Scoped span{
          options.trace, "stage.deployment", pipeline_span.id()};
      stage.db = deployment.run();
    }
    {
      const obs::TraceRecorder::Scoped span{
          options.trace, "stage.enrichment", pipeline_span.id()};
      stage.enrichment = honeypot::enrich_database(
          stage.db, dataset.landscape, dataset.environment, faults, &pool);
    }
    stage.fault_report = injector.report();
    store.save_database(stage);
    dataset.db = std::move(stage.db);
    dataset.enrichment = stage.enrichment;
    dataset.fault_report = stage.fault_report;
  }

  // Stages 3 and 4 — the four clusterings (E, P, M, B) are mutually
  // independent views of the same immutable database, so whichever are
  // not restored from checkpoints run as concurrent pool tasks. The
  // snapshots are still written afterwards in stage order (EPM before
  // behavioral) so a crash can never leave a later checkpoint without
  // its predecessor.
  auto loaded_epm = store.load_epm();
  // A behavioral stage written by a different backend is quarantined as
  // stale inside load_behavioral — exact/kmeans never silently resume
  // an LSH checkpoint (or vice versa); the stage is just recomputed.
  auto loaded_behavioral = store.load_behavioral(options.b_backend);

  snapshot::EpmStage epm_stage;
  {
    const obs::TraceRecorder::Scoped clustering_span{
        options.trace, "stage.clustering", pipeline_span.id()};
    // Task spans attach to the clustering span by id: the Scoped
    // handles below are created on whichever pool thread runs the
    // task, while the parent was opened on this one.
    const auto parent = clustering_span.id();
    std::vector<std::function<void()>> cluster_tasks;
    if (!loaded_epm) {
      cluster_tasks.emplace_back([&, parent] {
        const obs::TraceRecorder::Scoped span{options.trace, "cluster.e",
                                              parent};
        epm_stage.e =
            cluster::epm_cluster(cluster::build_epsilon_data(dataset.db));
      });
      cluster_tasks.emplace_back([&, parent] {
        const obs::TraceRecorder::Scoped span{options.trace, "cluster.p",
                                              parent};
        epm_stage.p = cluster::epm_cluster(cluster::build_pi_data(dataset.db));
      });
      cluster_tasks.emplace_back([&, parent] {
        const obs::TraceRecorder::Scoped span{options.trace, "cluster.m",
                                              parent};
        epm_stage.m = cluster::epm_cluster(cluster::build_mu_data(dataset.db));
      });
    }
    if (!loaded_behavioral) {
      cluster_tasks.emplace_back([&, parent] {
        const obs::TraceRecorder::Scoped span{options.trace, "cluster.b",
                                              parent};
        cluster::BehavioralOptions behavioral;
        behavioral.threshold = options.b_threshold;
        behavioral.backend = options.b_backend;
        // The behavioral task additionally parallelizes internally
        // (nested submission): idle workers from the cheaper EPM tasks
        // drain its signature and bucket chunks.
        behavioral.pool = &pool;
        behavioral.metrics = options.metrics;
        dataset.b = analysis::BehavioralView::build(dataset.db, behavioral);
      });
    }
    pool.run_tasks(cluster_tasks);
  }

  if (loaded_epm) {
    dataset.e = std::move(loaded_epm->e);
    dataset.p = std::move(loaded_epm->p);
    dataset.m = std::move(loaded_epm->m);
  } else {
    store.save_epm(epm_stage);
    dataset.e = std::move(epm_stage.e);
    dataset.p = std::move(epm_stage.p);
    dataset.m = std::move(epm_stage.m);
  }
  if (loaded_behavioral) {
    dataset.b = std::move(*loaded_behavioral);
  } else {
    store.save_behavioral(dataset.b, options.b_backend);
  }

  dataset.checkpoint_activity = store.activity();
  if (options.metrics != nullptr) {
    publish_dataset_metrics(*options.metrics, dataset);
    publish_pool_metrics(*options.metrics, pool, pool_metrics);
  }
  return dataset;
}

}  // namespace repro::scenario
