#include "scenario/stream.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "cluster/backend.hpp"
#include "cluster/behavioral.hpp"
#include "cluster/incremental.hpp"
#include "cluster/minhash.hpp"
#include "ingest/queue.hpp"
#include "ingest/wal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snapshot/codec.hpp"
#include "util/byteio.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace repro::scenario {

namespace {

/// WAL record payload layout (version 1):
///
///   [u8 version][attack event, snapshot codec, id=0, no sample ref]
///   [u8 has_sample][u64 content size][content bytes]
///   [u8 truncated][u8 corrupted]            (sample block only)
///
/// One record per attack event, in event order. The sample block
/// carries the event's *own* download (content + flags) rather than a
/// database sample id, so a record is replayable into any database
/// state; replaying the full sequence re-runs the md5 dedup in the
/// original order and therefore reproduces the batch database
/// byte-for-byte (same sample ids, same first_seen, same event counts).
constexpr std::uint8_t kRecordVersion = 1;

[[nodiscard]] std::vector<std::uint8_t> encode_record(
    const honeypot::AttackEvent& event,
    const honeypot::EventDatabase& gen_db) {
  ByteWriter writer;
  writer.u8(kRecordVersion);
  honeypot::AttackEvent copy = event;
  copy.id = 0;          // replay reassigns ids in order
  copy.sample.reset();  // the sample travels by content, not by id
  snapshot::write_attack_event(writer, copy);
  writer.u8(event.sample.has_value() ? 1 : 0);
  if (event.sample.has_value()) {
    // Distinct download contents always hash to distinct MD5s, so the
    // deduplicated sample's content and flags are exactly what this
    // event's own download carried.
    const honeypot::MalwareSample& sample = gen_db.sample(*event.sample);
    writer.u64(sample.content.size());
    writer.bytes(sample.content);
    writer.u8(sample.truncated ? 1 : 0);
    writer.u8(sample.corrupted ? 1 : 0);
  }
  return writer.take();
}

void replay_record(std::span<const std::uint8_t> payload,
                   honeypot::EventDatabase& db) {
  ByteReader reader{payload};
  if (reader.u8() != kRecordVersion) {
    throw ParseError("WAL record: unsupported version");
  }
  honeypot::AttackEvent event = snapshot::read_attack_event(reader);
  if (reader.u8() != 0) {
    const std::uint64_t content_size = reader.u64();
    std::vector<std::uint8_t> content =
        reader.bytes(static_cast<std::size_t>(content_size));
    const bool truncated = reader.u8() != 0;
    const bool corrupted = reader.u8() != 0;
    const honeypot::SampleId id = db.add_sample(
        std::move(content), event.time, truncated, event.truth_variant);
    if (corrupted) db.sample_mutable(id).corrupted = true;
    event.sample = id;
  }
  if (reader.remaining() != 0) {
    throw ParseError("WAL record: trailing bytes");
  }
  (void)db.add_event(std::move(event));
}

void accumulate(honeypot::EnrichmentStats& total,
                const honeypot::EnrichmentStats& delta) {
  total.submitted += delta.submitted;
  total.executed += delta.executed;
  total.failed += delta.failed;
  total.parse_failures += delta.parse_failures;
  total.sandbox_faults += delta.sandbox_faults;
  total.label_gaps += delta.label_gaps;
}

// Serialized forms for the --verify-incremental byte diff: the snapshot
// codec is a pure function of the result, so equal bytes here mean
// every downstream artifact (exports, checkpoints) is equal too.
[[nodiscard]] std::vector<std::uint8_t> epm_bytes(
    const cluster::EpmResult& result) {
  ByteWriter writer;
  snapshot::write_epm_result(writer, result);
  return writer.take();
}

[[nodiscard]] std::vector<std::uint8_t> bview_bytes(
    const analysis::BehavioralView& view) {
  ByteWriter writer;
  snapshot::write_behavioral_view(writer, view);
  return writer.take();
}

}  // namespace

void StreamOptions::validate() const {
  if (epochs == 0) {
    throw ConfigError("StreamOptions: epochs must be at least 1");
  }
  if (queue_capacity == 0) {
    throw ConfigError("StreamOptions: queue_capacity must be at least 1");
  }
  ingest::WalOptions wal;
  wal.directory = wal_dir;
  wal.segment_bytes = segment_bytes;
  wal.validate();  // rejects an empty wal_dir / zero segment size
  retry.validate();
}

Dataset build_streaming_dataset(const ScenarioOptions& options,
                                const StreamOptions& stream) {
  options.faults.validate();
  stream.validate();
  if ((stream.incremental || stream.verify_incremental) &&
      !cluster::cluster_backend(options.b_backend).single_linkage()) {
    // Prefix seeding from the prior epoch's partition is only sound
    // under connected-component semantics; re-centering backends must
    // recompute every epoch.
    throw ConfigError(
        "incremental epoch clustering requires a single-linkage backend; "
        "run backend '" +
        std::string{cluster::backend_name(options.b_backend)} +
        "' with --full-recluster");
  }
  const std::uint64_t fingerprint = scenario_fingerprint(options);
  snapshot::CheckpointStore store{options.checkpoint, fingerprint};

  Dataset dataset;
  ThreadPool pool{options.threads};
  ThreadPoolMetrics pool_metrics;
  if (options.metrics != nullptr) pool.attach_metrics(&pool_metrics);

  const obs::TraceRecorder::Scoped pipeline_span{options.trace, "stream"};

  // Ground truth, shared with the batch path (same stage-1 snapshot).
  {
    const obs::TraceRecorder::Scoped span{options.trace, "stage.landscape",
                                          pipeline_span.id()};
    if (auto loaded = store.load_landscape()) {
      dataset.landscape = std::move(*loaded);
    } else {
      dataset.landscape = make_paper_landscape(options);
      store.save_landscape(dataset.landscape);
    }
  }
  dataset.environment = make_paper_environment(dataset.landscape);

  // Sensor side: regenerate the full event sequence. Generation is
  // deterministic and cheap relative to enrichment + clustering, so a
  // resumed run recomputes it instead of persisting it; `baseline`
  // captures the injector right afterwards so the per-epoch slices
  // below contain only post-generation activity (which is what the
  // epoch checkpoints carry — generation's share is reproduced
  // identically by every run).
  fault::FaultInjector injector{options.faults};
  fault::FaultInjector* faults =
      options.faults.pipeline_empty() ? nullptr : &injector;
  honeypot::EventDatabase gen_db;
  {
    const obs::TraceRecorder::Scoped span{options.trace, "stream.generate",
                                          pipeline_span.id()};
    honeypot::Deployment deployment{dataset.landscape,
                                    make_paper_deployment_config(options,
                                                                 faults)};
    gen_db = deployment.run();
  }
  const fault::FaultReport baseline = injector.report();
  const std::uint64_t total = gen_db.events().size();

  // Collector side: recover the WAL, then resume from the newest epoch
  // cut. The two are independent durability layers — either may be
  // ahead of the other after a crash, and both gaps heal below.
  ingest::IngestReport report;
  ingest::WalOptions wal_options;
  wal_options.directory = stream.wal_dir;
  wal_options.segment_bytes = stream.segment_bytes;
  wal_options.fail_after_seal = stream.fail_after_seal;
  ingest::RecoveredWal recovered;
  {
    const obs::TraceRecorder::Scoped span{options.trace, "stream.recover",
                                          pipeline_span.id()};
    recovered = ingest::recover_wal(wal_options, fingerprint, report);
  }

  std::optional<snapshot::EpochStage> restored = store.load_latest_epoch();
  if (restored && restored->wal_records > total) {
    // A matching fingerprint can never produce more records than the
    // regenerated stream; never trust disk anyway.
    restored.reset();
  }
  if (restored && restored->b_backend != options.b_backend) {
    // The cut's behavioral partition came from another backend. The
    // incremental path would seed this backend's union-find from it —
    // a silent stale partition — so it refuses the switch outright;
    // the full-recompute path just declines the cut and replays the
    // WAL from the start (everything it recomputes is backend-pure).
    if (stream.incremental || stream.verify_incremental) {
      throw ConfigError(
          "epoch checkpoint was cut by cluster backend '" +
          std::string{cluster::backend_name(restored->b_backend)} +
          "' but this run selects '" +
          std::string{cluster::backend_name(options.b_backend)} +
          "'; incremental seeding across backends is unsound — use a "
          "fresh checkpoint directory or --full-recluster");
    }
    restored.reset();
  }

  std::uint64_t done = 0;  // records already replayed into `db`
  honeypot::EventDatabase db;
  honeypot::EnrichmentStats enrich_totals;
  fault::FaultReport restored_slice;
  snapshot::EpmStage epm_stage;
  analysis::BehavioralView bview;
  // Incremental clustering engines: durable counting state per EPM
  // dimension plus the cross-epoch MinHash signature cache. Primed from
  // the restored cut below; verify mode also runs them (its published
  // results are the incremental ones).
  const bool incremental = stream.incremental || stream.verify_incremental;
  cluster::IncrementalEpm inc_e{cluster::Dimension::kEpsilon};
  cluster::IncrementalEpm inc_p{cluster::Dimension::kPi};
  cluster::IncrementalEpm inc_m{cluster::Dimension::kMu};
  cluster::SignatureStore signatures;
  bool have_results = false;
  if (restored) {
    done = restored->wal_records;
    db = std::move(restored->database.db);
    enrich_totals = restored->database.enrichment;
    restored_slice = restored->database.fault_report;
    epm_stage = std::move(restored->epm);
    bview = std::move(restored->behavioral);
    ingest::decode_stream_totals(restored->ingest_blob, report);
    if (incremental) {
      // Empty blobs (a cut written by the full-recompute path) make the
      // engines recount from the restored rows — same state, recomputed.
      inc_e.restore(db, epm_stage.e, restored->e_counts);
      inc_p.restore(db, epm_stage.p, restored->p_counts);
      inc_m.restore(db, epm_stage.m, restored->m_counts);
      if (!restored->signature_blob.empty()) {
        signatures = cluster::decode_signature_store(restored->signature_blob);
      }
    }
    have_results = true;
    report.epochs_restored = 1;
  }

  // The writer must size itself from the recovery result *before* the
  // records are moved out below — a moved-from list would reset its
  // next-record index to zero and every resume would re-append the
  // whole stream as duplicate frames.
  ingest::WalWriter writer{wal_options, fingerprint, recovered,
                           /*report=*/nullptr};

  // Unified record source: the recovered prefix as salvaged, encoded
  // fresh from the regenerated stream past it. Recovered payloads are
  // CRC-framed and fingerprint-checked, so both sources yield the same
  // bytes for the same index.
  std::vector<std::vector<std::uint8_t>> records = std::move(recovered.records);
  auto record_bytes =
      [&](std::uint64_t index) -> const std::vector<std::uint8_t>& {
    while (records.size() <= index) {
      records.push_back(
          encode_record(gen_db.events()[records.size()], gen_db));
    }
    return records[static_cast<std::size_t>(index)];
  };
  std::uint64_t appended_this_run = 0;
  ingest::BoundedRecordQueue queue{stream.queue_capacity,
                                   ingest::OverflowPolicy::kBlock};
  auto drain_queue = [&] {
    while (auto rec = queue.try_pop()) {
      writer.append(*rec);
      ++appended_this_run;
      if (stream.after_append) stream.after_append(appended_this_run);
    }
  };

  // Heal a WAL that fell behind its checkpoint (crash after the cut was
  // durable but before the damaged tail segment was, or a quarantined
  // segment). The checkpoint already covers these records' state and
  // fault counters, so they are re-appended verbatim — no delivery
  // simulation, no replay.
  while (writer.next_record_index() < done) {
    writer.append(record_bytes(writer.next_record_index()));
    ++appended_this_run;
    if (stream.after_append) stream.after_append(appended_this_run);
  }

  fault::FaultReport final_slice = restored_slice;
  std::uint64_t bytes_delta = 0;
  for (std::size_t k = 0; k < stream.epochs; ++k) {
    // Epoch boundaries are record counts, independent of the split a
    // previous (killed) run used.
    const std::uint64_t target =
        (static_cast<std::uint64_t>(k) + 1) * total /
        static_cast<std::uint64_t>(stream.epochs);
    const bool last = k + 1 == stream.epochs;
    // A cut at `target` records already exists (or the range is empty):
    // nothing to do — unless nothing at all has produced clustering
    // results yet (empty stream, no checkpoint), in which case the
    // final epoch still runs to compute them.
    if (target <= done && !(last && !have_results)) continue;

    const obs::TraceRecorder::Scoped epoch_span{options.trace, "stream.epoch",
                                                pipeline_span.id()};
    const std::size_t first_sample = db.samples().size();
    {
      const obs::TraceRecorder::Scoped span{options.trace, "epoch.replay",
                                            epoch_span.id()};
      for (std::uint64_t i = done; i < target; ++i) {
        const std::vector<std::uint8_t>& rec = record_bytes(i);
        // Delivery simulation runs for every record past the last cut,
        // including records already durable in the WAL: the run that
        // appended those died before checkpointing its counters, and
        // the decisions are pure in (plan, key), so re-rolling them
        // here restores exactly the counts it lost.
        (void)ingest::deliver_record(stream.retry, i, gen_db.events()[i].time,
                                     injector);
        bytes_delta += rec.size() + ingest::kWalFrameHeaderBytes;
        if (i >= writer.next_record_index()) {
          // Fresh record: through the bounded queue into the WAL. The
          // queue is drained only when full, so backpressure genuinely
          // engages (and is counted) instead of the queue idling at
          // depth one.
          if (!queue.offer(std::vector<std::uint8_t>{rec})) {
            drain_queue();
            if (!queue.offer(std::vector<std::uint8_t>{rec})) {
              throw IoError("ingest queue rejected a record after drain");
            }
          }
        }
        replay_record(rec, db);
      }
      drain_queue();
      writer.sync();
      writer.seal();
    }

    // The delta past the previous cut is all that needs enriching;
    // per-sample purity makes the result identical to re-enriching
    // everything from scratch.
    {
      const obs::TraceRecorder::Scoped span{options.trace, "epoch.enrich",
                                            epoch_span.id()};
      accumulate(enrich_totals,
                 honeypot::enrich_database(db, dataset.landscape,
                                           dataset.environment, faults, &pool,
                                           first_sample));
    }

    // Epoch clustering. Incremental (the default): the EPM engines
    // absorb the epoch's event delta into their durable counting state
    // and re-generalize only flip-affected rows, and B reuses cached
    // MinHash signatures for the unchanged profile prefix — both
    // byte-identical to the full recompute, which `incremental = false`
    // still runs (this is the cost pair the ABL-10 streaming ablation
    // measures).
    {
      const obs::TraceRecorder::Scoped cluster_span{
          options.trace, "epoch.cluster", epoch_span.id()};
      const auto parent = cluster_span.id();
      // Previous epoch's B partition (restored from the cut on warm
      // resume). Its rows are a prefix of this epoch's — profiles are
      // immutable and appended in sample order — so it seeds the
      // union-find and confines Jaccard work to pairs touching the
      // appended suffix. Copied out because the B task overwrites
      // `bview` in place.
      const std::vector<int> prior_b = bview.clusters().assignment;
      std::vector<std::function<void()>> tasks;
      if (incremental) {
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.e",
                                                parent};
          epm_stage.e = inc_e.update(db);
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.p",
                                                parent};
          epm_stage.p = inc_p.update(db);
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.m",
                                                parent};
          epm_stage.m = inc_m.update(db);
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.b",
                                                parent};
          cluster::BehavioralOptions behavioral;
          behavioral.threshold = options.b_threshold;
          behavioral.backend = options.b_backend;
          behavioral.pool = &pool;
          behavioral.signature_cache = &signatures;
          behavioral.prior_assignment = &prior_b;
          // Deliberately no metrics sink: B's work counters would
          // accumulate once per epoch run by *this process*, which a
          // kill-resume run does fewer of — the deterministic channel
          // only carries final-state values (published below).
          bview = analysis::BehavioralView::build(db, behavioral);
        });
      } else {
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.e",
                                                parent};
          epm_stage.e = cluster::epm_cluster(cluster::build_epsilon_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.p",
                                                parent};
          epm_stage.p = cluster::epm_cluster(cluster::build_pi_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.m",
                                                parent};
          epm_stage.m = cluster::epm_cluster(cluster::build_mu_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "cluster.b",
                                                parent};
          cluster::BehavioralOptions behavioral;
          behavioral.threshold = options.b_threshold;
          behavioral.backend = options.b_backend;
          behavioral.pool = &pool;
          bview = analysis::BehavioralView::build(db, behavioral);
        });
      }
      pool.run_tasks(tasks);
    }

    if (stream.verify_incremental) {
      // Cross-check: run the full recompute as a second batch (so the
      // two B passes never nest parallel_for concurrently) and diff the
      // serialized bytes of every result.
      snapshot::EpmStage full_epm;
      analysis::BehavioralView full_b;
      {
        const obs::TraceRecorder::Scoped verify_span{
            options.trace, "epoch.verify", epoch_span.id()};
        const auto parent = verify_span.id();
        std::vector<std::function<void()>> tasks;
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "verify.e",
                                                parent};
          full_epm.e = cluster::epm_cluster(cluster::build_epsilon_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "verify.p",
                                                parent};
          full_epm.p = cluster::epm_cluster(cluster::build_pi_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "verify.m",
                                                parent};
          full_epm.m = cluster::epm_cluster(cluster::build_mu_data(db));
        });
        tasks.emplace_back([&, parent] {
          const obs::TraceRecorder::Scoped span{options.trace, "verify.b",
                                                parent};
          cluster::BehavioralOptions behavioral;
          behavioral.threshold = options.b_threshold;
          behavioral.backend = options.b_backend;
          behavioral.pool = &pool;
          full_b = analysis::BehavioralView::build(db, behavioral);
        });
        pool.run_tasks(tasks);
      }
      const auto mismatch = [&](const char* dimension) {
        throw ConfigError(
            "verify-incremental: " + std::string{dimension} +
            " bytes diverge from the full recompute at epoch " +
            std::to_string(k));
      };
      if (epm_bytes(epm_stage.e) != epm_bytes(full_epm.e)) mismatch("epsilon");
      if (epm_bytes(epm_stage.p) != epm_bytes(full_epm.p)) mismatch("pi");
      if (epm_bytes(epm_stage.m) != epm_bytes(full_epm.m)) mismatch("mu");
      if (bview_bytes(bview) != bview_bytes(full_b)) mismatch("behavioral");
      ++report.epochs_verified;
    }
    have_results = true;

    // Cut the epoch: state + the post-generation fault slice + stream
    // totals, all in one durable snapshot. The totals are recomputed
    // from the record sequence (not from what this process happened to
    // append), so they are identical however many times the run was
    // killed on the way here.
    final_slice =
        fault::add(restored_slice, fault::subtract(injector.report(),
                                                   baseline));
    ++report.epochs_run;
    report.records_appended = target;
    report.bytes_appended += bytes_delta;
    bytes_delta = 0;
    report.segments_sealed = writer.segment_index() - 1;

    snapshot::EpochStage cut;
    cut.epoch = k;
    cut.wal_records = target;
    cut.b_backend = options.b_backend;
    cut.database.db = db;
    cut.database.enrichment = enrich_totals;
    cut.database.fault_report = final_slice;
    cut.epm = epm_stage;
    cut.behavioral = bview;
    cut.ingest_blob = ingest::encode_stream_totals(report);
    if (incremental) {
      // The engines' durable state travels with the cut so resume is
      // delta-only; the full-recompute path leaves these empty and a
      // later incremental resume recounts from the restored rows.
      cut.e_counts = inc_e.encode_counts();
      cut.p_counts = inc_p.encode_counts();
      cut.m_counts = inc_m.encode_counts();
      cut.signature_blob = cluster::encode_signature_store(signatures);
    }
    {
      const obs::TraceRecorder::Scoped span{options.trace, "epoch.checkpoint",
                                            epoch_span.id()};
      store.save_epoch(cut);
    }
    // The hook sees the 1-based count of durable epochs so a view built
    // here for the final epoch carries the same epoch number as one built
    // from the finished dataset (the fully-restored-resume fallback).
    if (stream.on_epoch) stream.on_epoch(db, epm_stage, bview, k + 1);
    done = target;
  }

  dataset.db = std::move(db);
  dataset.enrichment = enrich_totals;
  dataset.fault_report = fault::add(baseline, final_slice);
  dataset.e = std::move(epm_stage.e);
  dataset.p = std::move(epm_stage.p);
  dataset.m = std::move(epm_stage.m);
  dataset.b = std::move(bview);
  dataset.checkpoint_activity = store.activity();

  const ingest::BoundedRecordQueue::Stats queue_stats = queue.stats();
  report.queue_pushed = queue_stats.pushed;
  report.queue_shed = queue_stats.shed;
  report.queue_stalls = queue_stats.stalls;
  report.queue_high_water = queue_stats.high_water;
  dataset.ingest = report;

  if (options.metrics != nullptr) {
    publish_dataset_metrics(*options.metrics, dataset);
    ingest::publish_ingest_metrics(*options.metrics, report);
    if (incremental) {
      // Final-state values of the engines' durable totals: pure
      // functions of the record sequence and the epoch split, so they
      // are width-stable and kill-invariant (a resumed run restores
      // them from the cut instead of re-earning them).
      obs::add_counter(options.metrics, "epm.instances_reclassified",
                       inc_e.instances_reclassified() +
                           inc_p.instances_reclassified() +
                           inc_m.instances_reclassified());
      obs::add_counter(options.metrics, "cluster.signatures_reused",
                       signatures.reused);
    }
    publish_pool_metrics(*options.metrics, pool, pool_metrics);
  }
  return dataset;
}

}  // namespace repro::scenario
