#include "scenario/serve.hpp"

#include <memory>
#include <utility>

#include "obs/stopwatch.hpp"
#include "serve/view.hpp"

namespace repro::scenario {

ServeOutcome serve_streaming_dataset(const ScenarioOptions& options,
                                     const StreamOptions& stream,
                                     const ServeRunOptions& run) {
  ServeOutcome outcome;
  serve::Server server{run.server};
  server.start();
  outcome.port = server.port();
  if (run.on_ready) run.on_ready(server.port());

  StreamOptions hooked = stream;
  hooked.on_epoch = [&](const honeypot::EventDatabase& db,
                        const snapshot::EpmStage& epm,
                        const analysis::BehavioralView& b,
                        std::size_t epoch) {
    server.publish(std::make_shared<const serve::ServeView>(
        serve::ServeView::build(db, epm.e, epm.p, epm.m, b, epoch)));
    if (stream.on_epoch) stream.on_epoch(db, epm, b, epoch);
  };

  try {
    outcome.dataset = build_streaming_dataset(options, hooked);
  } catch (...) {
    // Drain before rethrowing (crash-seam interrupts included): the
    // port must be free and every admitted client answered before the
    // caller decides what to do next.
    server.stop();
    throw;
  }

  if (!server.has_view()) {
    // A fully-restored resume replays no epoch, so no hook fired;
    // publish the final state directly. When the hook did fire, the
    // last epoch's view was built from exactly this state — publishing
    // again would only inflate the deterministic swap counter.
    server.publish(std::make_shared<const serve::ServeView>(
        serve::ServeView::build(outcome.dataset.db, outcome.dataset.e,
                                outcome.dataset.p, outcome.dataset.m,
                                outcome.dataset.b, stream.epochs)));
  }

  // Lone stop flag polled in a sleep loop; no data is published through
  // it, so relaxed visibility (bounded by the poll interval) is enough.
  // repro-lint: allow(RL008) stop flag publishes no data
  while (run.stop != nullptr && !run.stop->load(std::memory_order_relaxed)) {
    obs::sleep_ms(run.poll_ms);
  }
  server.stop();
  outcome.serve = server.report();
  if (options.metrics != nullptr) {
    serve::publish_serve_metrics(*options.metrics, outcome.serve);
  }
  return outcome;
}

}  // namespace repro::scenario
