// The serving scenario: queries answered while the epoch loop ingests.
//
// serve_streaming_dataset composes the PR-6 streaming pipeline with the
// src/serve daemon: a Server starts first (so analysts can connect
// immediately — they get typed UNAVAILABLE until the first epoch
// lands), the epoch loop runs underneath, and every completed epoch is
// hot-swapped in as a fresh ServeView. Because the stream's output is
// byte-identical to the batch build at any kill point and any thread
// width, the *final* published view answers every query with bytes
// identical to a view built from build_paper_dataset — the serving
// guarantee the tests and bench_serve pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "scenario/stream.hpp"
#include "serve/server.hpp"

namespace repro::scenario {

struct ServeRunOptions {
  /// Daemon knobs (port, workers, admission, deadline, serve faults).
  serve::ServerOptions server;
  /// Called once the listener is bound, with the actual port — the
  /// seam tests and the bench use to connect while ingest still runs.
  std::function<void(std::uint16_t port)> on_ready;
  /// Linger flag: after the stream completes, the daemon keeps serving
  /// the final view until this becomes true (the CLI points it at its
  /// SIGTERM flag). nullptr = no linger, drain right away.
  const std::atomic<bool>* stop = nullptr;
  /// How often the linger loop re-checks `stop`.
  std::int64_t poll_ms = 50;
};

struct ServeOutcome {
  Dataset dataset;
  serve::ServeReport serve;
  std::uint16_t port = 0;
};

/// Runs the streaming build with a query daemon on top. The daemon is
/// drained gracefully (in-flight and admitted requests answered) both
/// on success and when the stream throws — a crash-seam interrupt
/// (snapshot::CheckpointInterrupted) propagates out only after the
/// server is down, so a retrying caller can bind the port again.
[[nodiscard]] ServeOutcome serve_streaming_dataset(
    const ScenarioOptions& options, const StreamOptions& stream,
    const ServeRunOptions& run);

}  // namespace repro::scenario
