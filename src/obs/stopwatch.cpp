#include "obs/stopwatch.hpp"

#include <chrono>
#include <thread>

namespace repro::obs {

std::int64_t monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(std::int64_t ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace repro::obs
