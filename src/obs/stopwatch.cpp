#include "obs/stopwatch.hpp"

#include <chrono>

namespace repro::obs {

std::int64_t monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace repro::obs
