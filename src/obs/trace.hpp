// Hierarchical stage/task tracing on the wall-clock channel.
//
// A TraceRecorder collects spans — named (start, end) intervals with an
// optional parent — from any thread. Timing comes exclusively from the
// obs/stopwatch seam, and the recorder lives strictly on the runtime
// side of the observability split: trace output is never byte-stable
// and must never be mixed into deterministic exports. Span identity is
// the creation index, so concurrent stage tasks can attach their spans
// to a parent created on another thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace repro::obs {

class MetricsRegistry;

class TraceRecorder {
 public:
  using SpanId = std::size_t;
  static constexpr SpanId kNoParent = ~SpanId{0};

  struct Span {
    std::string name;
    SpanId parent = kNoParent;
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;  // 0 while the span is still open

    [[nodiscard]] std::int64_t duration_ns() const noexcept {
      return end_ns - start_ns;
    }
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span; the id is stable and safe to hand to other threads.
  [[nodiscard]] SpanId begin_span(std::string name,
                                  SpanId parent = kNoParent);
  /// Closes a span. Durations are clamped to >= 1 ns so "strictly
  /// positive" holds even when the clock's granularity is coarser than
  /// the work.
  void end_span(SpanId id);

  /// Snapshot of every span recorded so far, in creation order.
  [[nodiscard]] std::vector<Span> spans() const;

  /// Spans as JSON (creation order, parent = -1 for roots). When
  /// `runtime_metrics` is given, its *runtime-channel* metrics are
  /// embedded — they are scheduling artifacts and belong with the
  /// trace, not with the deterministic export.
  [[nodiscard]] std::string to_json(
      const MetricsRegistry* runtime_metrics = nullptr) const;

  /// RAII span covering one scope. A null recorder makes every
  /// operation a no-op, so call sites never branch on "is tracing on".
  class Scoped {
   public:
    Scoped(TraceRecorder* recorder, std::string name,
           SpanId parent = kNoParent)
        : recorder_(recorder) {
      if (recorder_ != nullptr) {
        id_ = recorder_->begin_span(std::move(name), parent);
      }
    }
    ~Scoped() {
      if (recorder_ != nullptr) recorder_->end_span(id_);
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

    /// kNoParent when tracing is off — safe to pass as another span's
    /// parent either way.
    [[nodiscard]] SpanId id() const noexcept { return id_; }

   private:
    TraceRecorder* recorder_;
    SpanId id_ = kNoParent;
  };

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

}  // namespace repro::obs
