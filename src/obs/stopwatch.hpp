// The repository's single audited wall-clock seam.
//
// Deterministic output is the repo's core guarantee, so reading a real
// clock is quarantined to exactly one translation unit: stopwatch.cpp.
// repro-lint enforces the boundary (RL006: no `<chrono>` outside
// src/obs and util/simtime; RL002 additionally bans the clock
// identifiers themselves). Everything timing-related — trace spans,
// bench wall times — funnels through these two entry points, which
// keeps the "wall-clock channel" trivially auditable: if a value came
// from here, it must never feed back into dataset bytes or the
// deterministic metrics channel.
#pragma once

#include <cstdint>

namespace repro::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch. The
/// only function in the repo that reads a real clock.
[[nodiscard]] std::int64_t monotonic_now_ns();

/// Blocks the calling thread for at least `ms` milliseconds. Lives here
/// for the same reason the clock does: real-time waits are a wall-clock
/// effect, and quarantining the only sleep in the repo next to the only
/// clock keeps the channel auditable. Used by the serve layer's linger
/// polling and its deliberately-slow debug command; never by anything
/// that shapes dataset bytes.
void sleep_ms(std::int64_t ms);

/// Interval timer over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_now_ns()) {}

  /// Nanoseconds since construction (or the last restart), >= 0.
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return monotonic_now_ns() - start_ns_;
  }

  void restart() { start_ns_ = monotonic_now_ns(); }

 private:
  std::int64_t start_ns_;
};

}  // namespace repro::obs
