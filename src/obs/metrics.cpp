#include "obs/metrics.hpp"

// repro-lint: allow-file(RL008) counter/gauge/histogram cells are
// independent statistics: each is correct in isolation and export
// happens after the writers join, so no acquire/release pairing is
// needed and relaxed ordering is safe.

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace repro::obs {

namespace {

/// Metric names are plain identifiers, but escape defensively so a
/// hostile name can never break the JSON framing.
std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string_view channel_name(Channel channel) {
  return channel == Channel::kDeterministic ? "deterministic" : "runtime";
}

void Gauge::raise_to(std::int64_t v) noexcept {
  std::int64_t current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw ConfigError("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw ConfigError("Histogram: bounds must be strictly ascending");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(std::uint64_t v) noexcept {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name, Channel channel) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (gauges_.count(name) > 0 || histograms_.count(name) > 0) {
    throw ConfigError("MetricsRegistry: '" + std::string{name} +
                      "' already registered as a different metric kind");
  }
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    if (it->second.channel != channel) {
      throw ConfigError("MetricsRegistry: counter '" + std::string{name} +
                        "' re-registered on a different channel");
    }
    return *it->second.metric;
  }
  auto& entry = counters_[std::string{name}];
  entry.channel = channel;
  entry.metric = std::make_unique<Counter>();
  return *entry.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Channel channel) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (counters_.count(name) > 0 || histograms_.count(name) > 0) {
    throw ConfigError("MetricsRegistry: '" + std::string{name} +
                      "' already registered as a different metric kind");
  }
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    if (it->second.channel != channel) {
      throw ConfigError("MetricsRegistry: gauge '" + std::string{name} +
                        "' re-registered on a different channel");
    }
    return *it->second.metric;
  }
  auto& entry = gauges_[std::string{name}];
  entry.channel = channel;
  entry.metric = std::make_unique<Gauge>();
  return *entry.metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds,
                                      Channel channel) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (counters_.count(name) > 0 || gauges_.count(name) > 0) {
    throw ConfigError("MetricsRegistry: '" + std::string{name} +
                      "' already registered as a different metric kind");
  }
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.channel != channel ||
        it->second.metric->bounds() != bounds) {
      throw ConfigError("MetricsRegistry: histogram '" + std::string{name} +
                        "' re-registered with different channel or bounds");
    }
    return *it->second.metric;
  }
  auto& entry = histograms_[std::string{name}];
  entry.channel = channel;
  entry.metric = std::make_unique<Histogram>(std::move(bounds));
  return *entry.metric;
}

std::string MetricsRegistry::to_json(Channel channel) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::ostringstream out;
  out << "{\n  \"channel\": \"" << channel_name(channel) << "\",\n";

  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (entry.channel != channel) continue;
    out << (first ? "\n" : ",\n") << "    \"" << json_escaped(name)
        << "\": " << entry.metric->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (entry.channel != channel) continue;
    out << (first ? "\n" : ",\n") << "    \"" << json_escaped(name)
        << "\": " << entry.metric->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";

  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    if (entry.channel != channel) continue;
    out << (first ? "\n" : ",\n") << "    \"" << json_escaped(name)
        << "\": {\"bounds\": [";
    const auto& bounds = entry.metric->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      out << (i == 0 ? "" : ", ") << bounds[i];
    }
    out << "], \"counts\": [";
    const auto counts = entry.metric->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      out << (i == 0 ? "" : ", ") << counts[i];
    }
    out << "], \"count\": " << entry.metric->count()
        << ", \"sum\": " << entry.metric->sum() << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values(Channel channel) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, entry] : counters_) {
    if (entry.channel == channel) {
      out.emplace_back(name, entry.metric->value());
    }
  }
  return out;
}

std::string MetricsRegistry::render_summary() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  TextTable table{{"metric", "kind", "channel", "value"}};
  for (const auto& [name, entry] : counters_) {
    table.add_row({name, "counter", std::string{channel_name(entry.channel)},
                   std::to_string(entry.metric->value())});
  }
  for (const auto& [name, entry] : gauges_) {
    table.add_row({name, "gauge", std::string{channel_name(entry.channel)},
                   std::to_string(entry.metric->value())});
  }
  for (const auto& [name, entry] : histograms_) {
    table.add_row({name, "histogram",
                   std::string{channel_name(entry.channel)},
                   "count=" + std::to_string(entry.metric->count()) +
                       " sum=" + std::to_string(entry.metric->sum())});
  }
  return "--- observability summary ---\n" + table.render();
}

}  // namespace repro::obs
