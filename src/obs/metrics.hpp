// Deterministic observability metrics.
//
// repro-lint: allow-file(RL008) the inline Counter/Gauge/Histogram
// mutators use relaxed atomics: each cell is an independent statistic
// with no cross-variable invariant, and every reader either runs after
// the writers join or tolerates a stale point-in-time value.
//
// A MetricsRegistry holds named counters, gauges and histograms split
// across two channels:
//
//   kDeterministic — values that are pure functions of the pipeline
//     input (seed, scale, plan, resumable disk state): record counts,
//     cluster counts, fault decisions, checkpoint bytes. Exported JSON
//     is byte-identical at every thread width, so it can sit next to
//     golden exports and gate CI.
//   kRuntime — scheduling and machine artifacts (which thread ran a
//     chunk, how deep the queue got, how many short-circuit checks a
//     task-local union-find saved). Real telemetry, but different on
//     every run shape; it is exported only alongside the wall-clock
//     trace, never in the deterministic channel.
//
// Handles returned by the registry are stable for the registry's
// lifetime and their update methods are lock-free atomics, so hot
// paths can bump counters from pool workers without coordination. A
// registry instance accumulates one pipeline run; exports sort by
// metric name, so insertion order never shows in the bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repro::obs {

enum class Channel : std::uint8_t {
  kDeterministic,  // pure function of the input; byte-identical exports
  kRuntime,        // scheduling/wall-clock artifacts; trace-side only
};

[[nodiscard]] std::string_view channel_name(Channel channel);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value, with a monotonic-max helper
/// for high-water marks (queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if it is below; concurrent callers settle
  /// on the maximum.
  void raise_to(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bound histogram: `bounds` are ascending inclusive upper
/// bounds, plus one implicit overflow bucket. Observation is a single
/// relaxed increment.
class Histogram {
 public:
  /// Throws ConfigError unless bounds are non-empty and strictly
  /// ascending.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. Re-requesting
  /// an existing name must agree on kind and channel (ConfigError
  /// otherwise); for histograms the bounds must match too.
  Counter& counter(std::string_view name,
                   Channel channel = Channel::kDeterministic);
  Gauge& gauge(std::string_view name,
               Channel channel = Channel::kDeterministic);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds,
                       Channel channel = Channel::kDeterministic);

  /// One channel's metrics as JSON: objects sorted by metric name, no
  /// floats, no timestamps — byte-identical whenever the underlying
  /// values are.
  [[nodiscard]] std::string to_json(Channel channel) const;

  /// Every counter of `channel` as (name, value), sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values(Channel channel) const;

  /// Human-readable table of both channels (runtime rows are marked),
  /// suitable for appending to the landscape report.
  [[nodiscard]] std::string render_summary() const;

 private:
  template <typename Metric>
  struct Entry {
    Channel channel = Channel::kDeterministic;
    std::unique_ptr<Metric> metric;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>, std::less<>> counters_;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms_;
};

/// Convenience for optional registries: a no-op when `metrics` is null.
inline void add_counter(MetricsRegistry* metrics, std::string_view name,
                        std::uint64_t n,
                        Channel channel = Channel::kDeterministic) {
  if (metrics != nullptr) metrics->counter(name, channel).add(n);
}

}  // namespace repro::obs
