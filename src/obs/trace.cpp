#include "obs/trace.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/error.hpp"

namespace repro::obs {

TraceRecorder::SpanId TraceRecorder::begin_span(std::string name,
                                                SpanId parent) {
  const std::int64_t now = monotonic_now_ns();
  const std::lock_guard<std::mutex> lock{mutex_};
  if (parent != kNoParent && parent >= spans_.size()) {
    throw ConfigError("TraceRecorder: parent span id out of range");
  }
  Span span;
  span.name = std::move(name);
  span.parent = parent;
  span.start_ns = now;
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceRecorder::end_span(SpanId id) {
  const std::int64_t now = monotonic_now_ns();
  const std::lock_guard<std::mutex> lock{mutex_};
  if (id >= spans_.size()) {
    throw ConfigError("TraceRecorder: span id out of range");
  }
  Span& span = spans_[id];
  // Clamp so every closed span has a strictly positive duration even
  // when the clock did not tick between begin and end.
  span.end_ns = now > span.start_ns ? now : span.start_ns + 1;
}

std::vector<TraceRecorder::Span> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return spans_;
}

std::string TraceRecorder::to_json(
    const MetricsRegistry* runtime_metrics) const {
  const std::vector<Span> snapshot = spans();
  std::ostringstream out;
  out << "{\n  \"spans\": [";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const Span& span = snapshot[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << span.name
        << "\", \"parent\": "
        << (span.parent == kNoParent
                ? std::string{"-1"}
                : std::to_string(span.parent))
        << ", \"start_ns\": " << span.start_ns
        << ", \"duration_ns\": " << span.duration_ns() << "}";
  }
  out << (snapshot.empty() ? "" : "\n  ") << "]";
  if (runtime_metrics != nullptr) {
    // Indent the embedded object to keep the file readable; the trace
    // file is wall-clock data, so byte stability is a non-goal here.
    std::istringstream embedded{runtime_metrics->to_json(Channel::kRuntime)};
    out << ",\n  \"runtime_metrics\": ";
    std::string line;
    bool first = true;
    while (std::getline(embedded, line)) {
      out << (first ? "" : "\n  ") << line;
      first = false;
    }
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace repro::obs
