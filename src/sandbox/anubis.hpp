// Anubis-style dynamic analysis (simulated).
//
// Interprets a variant's ground-truth BehaviorSpec under the execution
// environment at a given date, producing the behavioral profile a
// four-minute sandboxed run would record. Environmental dependencies
// (dead DNS entries, down C&C servers) and per-execution noise are
// modeled explicitly because both drive the paper's Section 4.2
// findings (B-cluster splits and singleton anomalies).
#pragma once

#include <cstdint>

#include "malware/behavior.hpp"
#include "sandbox/environment.hpp"
#include "sandbox/profile.hpp"

namespace repro::sandbox {

class Sandbox {
 public:
  explicit Sandbox(const Environment& environment)
      : environment_(&environment) {}

  /// Runs one execution. `execution_seed` individuates the run: two runs
  /// of the same sample with different seeds may differ in the noise
  /// features they pick up, never in the deterministic behavior.
  [[nodiscard]] BehavioralProfile run(const malware::BehaviorSpec& behavior,
                                      SimTime when,
                                      std::uint64_t execution_seed) const;

  /// Re-executes `times` times with derived seeds and intersects the
  /// profiles — the paper's healing procedure for suspected clustering
  /// artifacts. `times` must be >= 1.
  [[nodiscard]] BehavioralProfile run_repeated(
      const malware::BehaviorSpec& behavior, SimTime when,
      std::uint64_t execution_seed, int times) const;

 private:
  const Environment* environment_;
};

}  // namespace repro::sandbox
