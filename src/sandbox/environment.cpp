#include "sandbox/environment.hpp"

namespace repro::sandbox {

void Environment::set_dns(std::string domain, AvailabilityWindow window) {
  dns_[std::move(domain)] = window;
}

void Environment::set_server(net::Ipv4 server, AvailabilityWindow window) {
  servers_[server] = window;
}

bool Environment::dns_resolves(const std::string& domain, SimTime when) const {
  const auto it = dns_.find(domain);
  return it != dns_.end() && it->second.contains(when);
}

bool Environment::server_reachable(net::Ipv4 server, SimTime when) const {
  const auto it = servers_.find(server);
  return it != servers_.end() && it->second.contains(when);
}

}  // namespace repro::sandbox
