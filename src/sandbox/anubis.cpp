#include "sandbox/anubis.hpp"

#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace repro::sandbox {

namespace {

void add_irc_features(const malware::IrcCnc& irc, const Environment& env,
                      SimTime when, BehavioralProfile& profile) {
  const std::string endpoint =
      irc.server.to_string() + ":" + std::to_string(irc.port);
  if (!env.server_reachable(irc.server, when)) {
    profile.add("network|connect-failed|" + endpoint);
    return;
  }
  profile.add("network|connect|" + endpoint);
  profile.add("irc|join|" + irc.room);
  profile.add("irc|privmsg|" + irc.room);
  // Commands the bot-herder issues in this room; derived from the room
  // so every bot on the same channel records the same command features.
  Rng command_rng{mix64(fnv1a64(irc.room) ^ irc.server.value())};
  const std::string command_host = "update" + command_rng.alnum(4) + ".example";
  profile.add("http|get|" + command_host + "/payload.bin");
  profile.add("process|create|payload.bin");
}

void add_downloader_features(const malware::DownloaderCnc& cnc,
                             const Environment& env, SimTime when,
                             BehavioralProfile& profile) {
  if (!env.dns_resolves(cnc.domain, when)) {
    profile.add("dns|nxdomain|" + cnc.domain);
    return;
  }
  profile.add("dns|resolve|" + cnc.domain);
  // The distribution site serves its full component set early in its
  // life and fewer components later (the paper observed clusters that
  // downloaded two components and clusters that downloaded one).
  const auto dns_it = env.dns().find(cnc.domain);
  int served = cnc.component_count;
  if (dns_it != env.dns().end()) {
    const AvailabilityWindow& window = dns_it->second;
    const std::int64_t midpoint =
        window.from.seconds + (window.to.seconds - window.from.seconds) / 2;
    if (when.seconds >= midpoint && served > 1) served = 1;
  }
  for (int component = 0; component < served; ++component) {
    const std::string name = "comp" + std::to_string(component + 1) + ".exe";
    profile.add("http|get|" + cnc.domain + "/" + name);
    profile.add("file|write|C:\\WINDOWS\\temp\\" + name);
    profile.add("process|create|" + name);
    profile.add("mutex|create|" + name + "-mtx");
  }
  // Components the site no longer serves leave a distinct failure
  // footprint (the sample retries the fetch through its 4-minute run).
  for (int component = served; component < cnc.component_count; ++component) {
    const std::string name = "comp" + std::to_string(component + 1) + ".exe";
    profile.add("http|get-failed|" + cnc.domain + "/" + name);
    profile.add("network|retry|" + cnc.domain);
    profile.add("file|delete|C:\\WINDOWS\\temp\\" + name + ".part");
  }
  // Second stage: the downloaded component joins an IRC server that
  // hands out further download commands.
  profile.add("network|connect|irc." + cnc.domain + ":6667");
  profile.add("irc|join|#" + cnc.domain.substr(0, cnc.domain.find('.')));
}

}  // namespace

BehavioralProfile Sandbox::run(const malware::BehaviorSpec& behavior,
                               SimTime when,
                               std::uint64_t execution_seed) const {
  BehavioralProfile profile;
  for (const std::string& feature : behavior.base_features) {
    profile.add(feature);
  }
  if (behavior.irc.has_value()) {
    add_irc_features(*behavior.irc, *environment_, when, profile);
  }
  if (behavior.downloader.has_value()) {
    add_downloader_features(*behavior.downloader, *environment_, when,
                            profile);
  }

  // Per-execution noise: spurious, execution-unique features.
  Rng rng{mix64(execution_seed ^ 0x0a11'ce5e'd00d'f00dULL)};
  if (behavior.noise_probability > 0.0 &&
      rng.chance(behavior.noise_probability)) {
    for (int i = 0; i < behavior.noise_feature_count; ++i) {
      std::uint8_t raw[8];
      rng.fill(raw);
      profile.add("artifact|tmpfile|" + hex_encode(raw));
    }
  }
  return profile;
}

BehavioralProfile Sandbox::run_repeated(const malware::BehaviorSpec& behavior,
                                        SimTime when,
                                        std::uint64_t execution_seed,
                                        int times) const {
  if (times < 1) {
    throw ConfigError("Sandbox::run_repeated: times must be >= 1");
  }
  BehavioralProfile merged =
      run(behavior, when, mix64(execution_seed ^ 1));
  for (int i = 1; i < times; ++i) {
    merged = intersect(
        merged, run(behavior, when,
                    mix64(execution_seed ^ static_cast<std::uint64_t>(i + 1))));
  }
  return merged;
}

}  // namespace repro::sandbox
