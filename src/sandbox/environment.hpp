// Execution environment.
//
// The paper shows that a sample's behavioral profile depends on
// *external conditions* at execution time: whether a distribution
// domain still resolves, whether the C&C server is up. The Environment
// models those conditions as availability windows on the simulated
// timeline; the sandbox consults it at execution time.
#pragma once

#include <map>
#include <string>

#include "net/ipv4.hpp"
#include "util/simtime.hpp"

namespace repro::sandbox {

/// Half-open availability interval [from, to).
struct AvailabilityWindow {
  SimTime from{};
  SimTime to{};

  [[nodiscard]] bool contains(SimTime t) const noexcept {
    return from <= t && t < to;
  }
};

class Environment {
 public:
  /// Registers a DNS entry valid within the window (e.g. iliketay.cn
  /// until it is removed from the DNS database).
  void set_dns(std::string domain, AvailabilityWindow window);

  /// Registers a C&C server reachable within the window.
  void set_server(net::Ipv4 server, AvailabilityWindow window);

  [[nodiscard]] bool dns_resolves(const std::string& domain,
                                  SimTime when) const;
  [[nodiscard]] bool server_reachable(net::Ipv4 server, SimTime when) const;

  [[nodiscard]] const std::map<std::string, AvailabilityWindow>& dns() const {
    return dns_;
  }
  [[nodiscard]] const std::map<net::Ipv4, AvailabilityWindow>& servers()
      const {
    return servers_;
  }

 private:
  std::map<std::string, AvailabilityWindow> dns_;
  std::map<net::Ipv4, AvailabilityWindow> servers_;
};

}  // namespace repro::sandbox
