#include "sandbox/profile.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/sorted.hpp"

namespace repro::sandbox {

std::vector<std::uint64_t> BehavioralProfile::feature_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(features_.size());
  for (const std::string& feature : features_) {
    ids.push_back(fnv1a64(feature));
  }
  // Dedup is load-bearing, not cosmetic: distinct features whose FNV-1a
  // ids collide must collapse to one id, or the Jaccard merge-walk in
  // cluster/behavioral (which requires sorted *unique* input) would
  // double-count the colliding id on one side.
  sorted_unique(ids);
  return ids;
}

double jaccard(const BehavioralProfile& a, const BehavioralProfile& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  auto it_a = a.features().begin();
  auto it_b = b.features().begin();
  while (it_a != a.features().end() && it_b != b.features().end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      ++intersection;
      ++it_a;
      ++it_b;
    }
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

BehavioralProfile intersect(const BehavioralProfile& a,
                            const BehavioralProfile& b) {
  std::set<std::string> out;
  std::set_intersection(a.features().begin(), a.features().end(),
                        b.features().begin(), b.features().end(),
                        std::inserter(out, out.begin()));
  return BehavioralProfile{std::move(out)};
}

}  // namespace repro::sandbox
