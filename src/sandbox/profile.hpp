// Behavioral profiles.
//
// Following Bayer et al. (NDSS'09), a behavioral profile is an abstract
// set of features describing OS objects and the operations performed on
// them during one sandboxed execution. Profiles are compared with
// Jaccard similarity; B-clusters group profiles whose similarity
// exceeds a threshold under single linkage.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace repro::sandbox {

/// One execution's feature set. Features are canonical strings of the
/// form "<object-type>|<operation>|<argument>".
class BehavioralProfile {
 public:
  BehavioralProfile() = default;
  explicit BehavioralProfile(std::set<std::string> features)
      : features_(std::move(features)) {}

  void add(std::string feature) { features_.insert(std::move(feature)); }

  [[nodiscard]] const std::set<std::string>& features() const noexcept {
    return features_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return features_.size(); }
  [[nodiscard]] bool empty() const noexcept { return features_.empty(); }
  [[nodiscard]] bool contains(const std::string& feature) const {
    return features_.count(feature) > 0;
  }

  /// Stable 64-bit ids of the features (FNV-1a), sorted and unique —
  /// the contract the clustering algorithms' merge-walks rely on. Two
  /// distinct features hashing to the same id (an FNV collision)
  /// deliberately collapse to one entry.
  [[nodiscard]] std::vector<std::uint64_t> feature_ids() const;

  friend bool operator==(const BehavioralProfile&,
                         const BehavioralProfile&) = default;

 private:
  std::set<std::string> features_;
};

/// |a ∩ b| / |a ∪ b|; 1 for two empty profiles.
[[nodiscard]] double jaccard(const BehavioralProfile& a,
                             const BehavioralProfile& b);

/// Feature intersection — the "healing" primitive: intersecting several
/// re-executions of the same sample strips execution-unique noise.
[[nodiscard]] BehavioralProfile intersect(const BehavioralProfile& a,
                                          const BehavioralProfile& b);

}  // namespace repro::sandbox
