#include "io/csv_import.hpp"

#include <istream>

#include "util/error.hpp"
#include "util/parse.hpp"

namespace repro::io {

std::vector<std::string> parse_csv_row(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (quoted) {
    throw ParseError("parse_csv_row: unterminated quote");
  }
  fields.push_back(std::move(current));
  return fields;
}

namespace {

// Strict numeric field parsing lives in util/parse.hpp: the whole field
// must be one in-range number, anything else throws ParseError (never
// the raw std::invalid_argument/out_of_range that std::stoi would leak).
int to_int_or(const std::string& field, int fallback) {
  if (field.empty()) return fallback;
  return parse_i32(field, "read_events_csv: integer field");
}

}  // namespace

std::vector<EventRecord> read_events_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw ParseError("read_events_csv: empty input");
  }
  const auto header = parse_csv_row(line);
  if (header.size() != 16 || header.front() != "event_id") {
    throw ParseError("read_events_csv: unexpected header");
  }
  std::vector<EventRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = parse_csv_row(line);
    if (fields.size() != header.size()) {
      throw ParseError("read_events_csv: row arity mismatch at row " +
                       std::to_string(records.size() + 1));
    }
    EventRecord record;
    record.event_id = parse_u64(fields[0], "read_events_csv: event_id");
    record.time = fields[1];
    record.attacker = fields[2];
    record.honeypot = fields[3];
    record.location = to_int_or(fields[4], 0);
    record.dst_port = to_int_or(fields[5], 0);
    record.fsm_path = fields[6];
    record.protocol = fields[7];
    record.filename = fields[8];
    record.pi_port = to_int_or(fields[9], -1);
    record.interaction = fields[10];
    record.sample_id = to_int_or(fields[11], -1);
    record.e_cluster = to_int_or(fields[12], -1);
    record.p_cluster = to_int_or(fields[13], -1);
    record.m_cluster = to_int_or(fields[14], -1);
    record.b_cluster = to_int_or(fields[15], -1);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace repro::io
