#include "io/csv_export.hpp"

#include <ostream>

#include "util/simtime.hpp"
#include "util/table.hpp"

namespace repro::io {

void write_events_csv(std::ostream& os, const honeypot::EventDatabase& db,
                      const cluster::EpmResult& e, const cluster::EpmResult& p,
                      const cluster::EpmResult& m,
                      const analysis::BehavioralView& b) {
  os << to_csv_row({"event_id", "time", "attacker", "honeypot", "location",
                    "dst_port", "fsm_path", "protocol", "filename", "pi_port",
                    "interaction", "sample_id", "e_cluster", "p_cluster",
                    "m_cluster", "b_cluster"})
     << "\n";
  for (const honeypot::AttackEvent& event : db.events()) {
    const auto cluster_cell = [](int id) {
      return id >= 0 ? std::to_string(id) : std::string{};
    };
    const int b_cluster = event.sample.has_value()
                              ? b.cluster_of_sample(*event.sample)
                              : -1;
    os << to_csv_row(
              {std::to_string(event.id), format_date(event.time),
               event.attacker.to_string(), event.honeypot.to_string(),
               std::to_string(event.location),
               std::to_string(event.epsilon.dst_port), event.epsilon.fsm_path,
               event.pi ? event.pi->protocol : "",
               event.pi ? event.pi->filename : "",
               event.pi ? std::to_string(event.pi->port) : "",
               event.pi ? event.pi->interaction : "",
               event.sample ? std::to_string(*event.sample) : "",
               cluster_cell(e.cluster_of_event(event.id)),
               cluster_cell(p.cluster_of_event(event.id)),
               cluster_cell(m.cluster_of_event(event.id)),
               cluster_cell(b_cluster)})
       << "\n";
  }
}

void write_samples_csv(std::ostream& os, const honeypot::EventDatabase& db,
                       const analysis::BehavioralView& b) {
  os << to_csv_row({"sample_id", "md5", "size", "first_seen", "truncated",
                    "event_count", "av_label", "b_cluster", "profile_size"})
     << "\n";
  for (const honeypot::MalwareSample& sample : db.samples()) {
    const int b_cluster = b.cluster_of_sample(sample.id);
    os << to_csv_row({std::to_string(sample.id), sample.md5,
                      std::to_string(sample.content.size()),
                      format_date(sample.first_seen),
                      sample.truncated ? "1" : "0",
                      std::to_string(sample.event_count), sample.av_label,
                      b_cluster >= 0 ? std::to_string(b_cluster) : "",
                      sample.profile ? std::to_string(sample.profile->size())
                                     : ""})
       << "\n";
  }
}

void write_clusters_csv(std::ostream& os, const cluster::EpmResult& result) {
  os << to_csv_row({"cluster_id", "dimension", "pattern", "member_events"})
     << "\n";
  for (std::size_t c = 0; c < result.patterns.size(); ++c) {
    os << to_csv_row({std::to_string(c),
                      cluster::dimension_name(result.schema.dimension),
                      result.patterns[c].key(),
                      std::to_string(result.members[c].size())})
       << "\n";
  }
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kDigits[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kDigits[(c >> 4) & 0x0f]);
          out.push_back(kDigits[c & 0x0f]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void write_profiles_jsonl(std::ostream& os,
                          const honeypot::EventDatabase& db) {
  for (const honeypot::MalwareSample& sample : db.samples()) {
    if (!sample.profile.has_value()) continue;
    os << "{\"sample_id\":" << sample.id << ",\"md5\":\""
       << json_escape(sample.md5) << "\",\"features\":[";
    bool first = true;
    for (const std::string& feature : sample.profile->features()) {
      if (!first) os << ",";
      os << "\"" << json_escape(feature) << "\"";
      first = false;
    }
    os << "]}\n";
  }
}

}  // namespace repro::io
