// CSV re-import.
//
// Parses RFC-4180-style rows (quoted fields, embedded separators and
// doubled quotes) and reloads the events table written by
// write_events_csv into plain records — enough to post-process a run
// without the originating process.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repro::io {

/// Splits one CSV line into fields, honouring quoting. Throws
/// ParseError on an unterminated quote.
[[nodiscard]] std::vector<std::string> parse_csv_row(std::string_view line);

/// One reloaded event row (all optional analytics as -1 when absent).
struct EventRecord {
  std::uint64_t event_id = 0;
  std::string time;
  std::string attacker;
  std::string honeypot;
  int location = 0;
  int dst_port = 0;
  std::string fsm_path;
  std::string protocol;
  std::string filename;
  int pi_port = -1;
  std::string interaction;
  int sample_id = -1;
  int e_cluster = -1;
  int p_cluster = -1;
  int m_cluster = -1;
  int b_cluster = -1;
};

/// Reads an events.csv stream (header required, column order as
/// written by write_events_csv). Throws ParseError on a malformed
/// header or row arity mismatch.
[[nodiscard]] std::vector<EventRecord> read_events_csv(std::istream& is);

}  // namespace repro::io
