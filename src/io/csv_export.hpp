// Dataset export.
//
// A downstream user of the library will want the observed events,
// sample metadata and clustering results outside the process — to plot
// Figure-5 style panels, join against other feeds, or diff two runs.
// This module renders the dataset as CSV (one table per entity) and as
// JSON Lines, and can reload the event/sample tables it wrote.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"

namespace repro::io {

/// events.csv: one row per attack event with epsilon/pi observations,
/// the sample reference, and the per-perspective cluster assignments
/// (empty when a dimension lacks the observation).
void write_events_csv(std::ostream& os, const honeypot::EventDatabase& db,
                      const cluster::EpmResult& e, const cluster::EpmResult& p,
                      const cluster::EpmResult& m,
                      const analysis::BehavioralView& b);

/// samples.csv: one row per collected binary (md5, size, first seen,
/// truncated flag, event count, AV label, B-cluster, profile size).
void write_samples_csv(std::ostream& os, const honeypot::EventDatabase& db,
                       const analysis::BehavioralView& b);

/// clusters.csv: one row per EPM cluster of one dimension (id, pattern
/// key, member count).
void write_clusters_csv(std::ostream& os, const cluster::EpmResult& result);

/// profiles.jsonl: one JSON object per analyzable sample with its
/// behavioral feature list. Strings are JSON-escaped.
void write_profiles_jsonl(std::ostream& os,
                          const honeypot::EventDatabase& db);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& raw);

}  // namespace repro::io
