// Deterministic fault planning for the SGNET pipeline.
//
// The paper's most interesting findings are driven by infrastructure
// failures: Nepenthes download truncation produces the 6353-collected
// vs 5165-analyzable gap, and sandbox environment changes produce the
// singleton B-cluster anomalies. A FaultPlan extends that single
// failure mode into a schedulable failure model for every pipeline
// stage: sensor outage windows, gateway->sample-factory proxy failures,
// download refusals and bit corruption, sandbox crashes and AV-label
// gaps. Plans are plain data; the FaultInjector turns them into
// deterministic per-decision outcomes.
#pragma once

#include <cstdint>
#include <vector>

namespace repro::fault {

/// One scheduled sensor blackout: the honeypots of `location` record
/// nothing during weeks [from_week, to_week) of the observation window.
struct SensorOutage {
  int location = 0;
  int from_week = 0;
  int to_week = 0;  // exclusive
};

/// Per-component fault probabilities plus scheduled outage windows.
/// A default-constructed plan is empty: no component ever fails and the
/// pipeline output is bit-identical to a run without any injector.
struct FaultPlan {
  /// Individuates the injector's decision streams; two plans with the
  /// same probabilities but different seeds fail different events.
  std::uint64_t seed = 0;

  /// Scheduled sensor blackouts (a honeypot IP records nothing).
  std::vector<SensorOutage> sensor_outages;

  /// Gateway -> sample-factory proxy channel: each delivery attempt of
  /// a proxied conversation fails with this probability; the gateway
  /// retries up to `proxy_max_retries` times with exponential backoff
  /// before abandoning the refinement.
  double proxy_failure_probability = 0.0;
  int proxy_max_retries = 2;
  int proxy_backoff_base_seconds = 2;

  /// Download failures beyond the Nepenthes truncation model: the
  /// transfer is refused outright (no sample collected) or the bytes
  /// arrive bit-corrupted (the PE image no longer parses).
  double download_refused_probability = 0.0;
  double download_corruption_probability = 0.0;

  /// Sandbox timeout/crash: the submission produces no profile; the
  /// sample stays unenriched until the healing path retries it.
  double sandbox_failure_probability = 0.0;

  /// AV labeler gap: the sample gets no label at all.
  double av_label_gap_probability = 0.0;

  /// Streaming ingest: one sensor-to-collector delivery attempt of a
  /// WAL record fails with this probability; the ingest layer retries
  /// under its own backoff policy (see src/ingest/delivery).
  double ingest_failure_probability = 0.0;

  /// Serving faults (src/serve): hostile/broken analyst clients and a
  /// flaky accept path. These never touch the dataset — they degrade
  /// only the query surface — so they are excluded from the scenario
  /// fingerprint and from pipeline_empty().
  /// A client stalls mid-request; the stall is charged against the
  /// request deadline and typically surfaces as a typed TIMEOUT reply.
  double serve_slow_client_probability = 0.0;
  /// A client vanishes mid-request; the reply write fails and the
  /// server must drop the connection without disturbing its neighbors.
  double serve_disconnect_probability = 0.0;
  /// One accept() of an incoming connection fails; the listener must
  /// shrug and keep accepting.
  double serve_accept_failure_probability = 0.0;

  /// True when the plan can never fire a fault at any site.
  [[nodiscard]] bool empty() const noexcept;

  /// True when no *pipeline* site (sensors, proxy, downloads, sandbox,
  /// AV labels, ingest delivery) can fire — the serve knobs are
  /// deliberately ignored. This is the gate for attaching an injector
  /// to the dataset-shaping pipeline: a serve-only plan must leave the
  /// dataset and its deterministic metrics bit-identical to a run with
  /// no injector at all.
  [[nodiscard]] bool pipeline_empty() const noexcept;

  /// Throws ConfigError on out-of-range probabilities, negative retry
  /// bounds or inverted outage windows.
  void validate() const;

  /// Returns a copy with every probability multiplied by `factor`
  /// (clamped to 1) and outage windows preserved.
  [[nodiscard]] FaultPlan scaled(double factor) const;

  /// The failure rates we calibrate against the paper's artifacts:
  /// small, realistic rates for every stage the paper reports failures
  /// for (download modules, sandbox runs) or that real deployments
  /// face (sensor outages, proxy channels, label coverage).
  [[nodiscard]] static FaultPlan paper_calibrated();

  /// A random plan for chaos sweeps: probabilities, retry bounds and
  /// outage windows all drawn from `seed`. `weeks`/`locations` bound
  /// the outage windows to the deployment's geometry.
  [[nodiscard]] static FaultPlan random_plan(std::uint64_t seed, int weeks,
                                             int locations);
};

}  // namespace repro::fault
