#include "fault/plan.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::fault {

bool FaultPlan::empty() const noexcept {
  return pipeline_empty() && serve_slow_client_probability <= 0.0 &&
         serve_disconnect_probability <= 0.0 &&
         serve_accept_failure_probability <= 0.0;
}

bool FaultPlan::pipeline_empty() const noexcept {
  return sensor_outages.empty() && proxy_failure_probability <= 0.0 &&
         download_refused_probability <= 0.0 &&
         download_corruption_probability <= 0.0 &&
         sandbox_failure_probability <= 0.0 &&
         av_label_gap_probability <= 0.0 &&
         ingest_failure_probability <= 0.0;
}

void FaultPlan::validate() const {
  const auto check_probability = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw ConfigError(std::string{"FaultPlan: "} + name +
                        " must be in [0, 1]");
    }
  };
  check_probability(proxy_failure_probability, "proxy_failure_probability");
  check_probability(download_refused_probability,
                    "download_refused_probability");
  check_probability(download_corruption_probability,
                    "download_corruption_probability");
  check_probability(sandbox_failure_probability,
                    "sandbox_failure_probability");
  check_probability(av_label_gap_probability, "av_label_gap_probability");
  check_probability(ingest_failure_probability, "ingest_failure_probability");
  check_probability(serve_slow_client_probability,
                    "serve_slow_client_probability");
  check_probability(serve_disconnect_probability,
                    "serve_disconnect_probability");
  check_probability(serve_accept_failure_probability,
                    "serve_accept_failure_probability");
  if (proxy_max_retries < 0) {
    throw ConfigError("FaultPlan: proxy_max_retries must be >= 0");
  }
  if (proxy_backoff_base_seconds < 0) {
    throw ConfigError("FaultPlan: proxy_backoff_base_seconds must be >= 0");
  }
  for (const SensorOutage& outage : sensor_outages) {
    if (outage.location < 0 || outage.from_week < 0 ||
        outage.to_week < outage.from_week) {
      throw ConfigError("FaultPlan: malformed sensor outage window");
    }
  }
}

FaultPlan FaultPlan::scaled(double factor) const {
  const auto scale = [factor](double p) {
    return std::clamp(p * factor, 0.0, 1.0);
  };
  FaultPlan plan = *this;
  plan.proxy_failure_probability = scale(proxy_failure_probability);
  plan.download_refused_probability = scale(download_refused_probability);
  plan.download_corruption_probability =
      scale(download_corruption_probability);
  plan.sandbox_failure_probability = scale(sandbox_failure_probability);
  plan.av_label_gap_probability = scale(av_label_gap_probability);
  plan.ingest_failure_probability = scale(ingest_failure_probability);
  plan.serve_slow_client_probability = scale(serve_slow_client_probability);
  plan.serve_disconnect_probability = scale(serve_disconnect_probability);
  plan.serve_accept_failure_probability =
      scale(serve_accept_failure_probability);
  return plan;
}

FaultPlan FaultPlan::paper_calibrated() {
  FaultPlan plan;
  plan.seed = 0x4fa1'7000'0000'2010ULL;
  // Two multi-week sensor blackouts, as real distributed deployments
  // accumulate over a 17-month window.
  plan.sensor_outages = {SensorOutage{4, 10, 14}, SensorOutage{17, 40, 43}};
  plan.proxy_failure_probability = 0.05;
  plan.proxy_max_retries = 2;
  // Beyond truncation, Nepenthes modules occasionally fail outright or
  // deliver damaged bytes (the paper's "truncated or corrupted").
  plan.download_refused_probability = 0.02;
  plan.download_corruption_probability = 0.015;
  plan.sandbox_failure_probability = 0.01;
  plan.av_label_gap_probability = 0.03;
  plan.ingest_failure_probability = 0.03;
  // Serving faults, calibrated like the rest: rare enough that a live
  // daemon stays useful, frequent enough that every degradation path
  // (deadline timeouts, dropped connections, accept hiccups) actually
  // fires under load.
  plan.serve_slow_client_probability = 0.02;
  plan.serve_disconnect_probability = 0.01;
  plan.serve_accept_failure_probability = 0.01;
  return plan;
}

FaultPlan FaultPlan::random_plan(std::uint64_t seed, int weeks,
                                 int locations) {
  Rng rng{mix64(seed ^ 0xc4a0'5000'0000'0001ULL)};
  FaultPlan plan;
  plan.seed = rng.next();
  const std::size_t outages = rng.index(4);
  for (std::size_t i = 0; i < outages; ++i) {
    SensorOutage outage;
    outage.location =
        static_cast<int>(rng.index(static_cast<std::size_t>(
            std::max(1, locations))));
    outage.from_week = static_cast<int>(
        rng.index(static_cast<std::size_t>(std::max(1, weeks))));
    outage.to_week =
        std::min(weeks, outage.from_week + 1 + static_cast<int>(rng.index(8)));
    plan.sensor_outages.push_back(outage);
  }
  plan.proxy_failure_probability = rng.real() * 0.9;
  plan.proxy_max_retries = static_cast<int>(rng.index(4));
  plan.proxy_backoff_base_seconds = static_cast<int>(rng.index(10));
  plan.download_refused_probability = rng.real() * 0.35;
  plan.download_corruption_probability = rng.real() * 0.35;
  plan.sandbox_failure_probability = rng.real() * 0.5;
  plan.av_label_gap_probability = rng.real() * 0.5;
  // Drawn after every pre-existing field so older chaos-sweep seeds
  // keep producing the exact plans they always did.
  plan.ingest_failure_probability = rng.real() * 0.5;
  plan.serve_slow_client_probability = rng.real() * 0.5;
  plan.serve_disconnect_probability = rng.real() * 0.5;
  plan.serve_accept_failure_probability = rng.real() * 0.5;
  return plan;
}

}  // namespace repro::fault
