// Deterministic fault injection.
//
// A FaultInjector turns a FaultPlan into per-decision outcomes. Every
// decision is a pure function of (plan seed, stage label, caller key):
// no shared RNG stream is consumed, so threading an injector through
// the pipeline never perturbs the simulation's own random draws — an
// injector holding an *empty* plan yields output bit-identical to a
// run without any injector at all. The injector also accumulates a
// FaultReport of per-site checked/injected counters — lock-free
// atomics internally, snapshotted into a plain FaultReport by
// report() — so every bench can print a degradation summary and the
// observability layer can export per-site decision totals.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"

namespace repro::fault {

/// Per-stage failure counters accumulated by a FaultInjector. The
/// `*_checks` fields count decisions *made* (checked), the remaining
/// fields count faults actually injected; checked counters are pure
/// functions of the input like everything else here, which is what
/// lets the obs layer export fault.<site>.checked deterministically.
struct FaultReport {
  std::size_t attacks_lost_to_outage = 0;
  std::size_t sensor_checks = 0;
  std::size_t proxy_attempts = 0;
  std::size_t proxy_failures = 0;
  std::size_t proxy_retries = 0;
  std::size_t refinements_abandoned = 0;
  std::int64_t proxy_backoff_seconds = 0;
  std::size_t download_checks = 0;
  std::size_t downloads_refused = 0;
  std::size_t downloads_corrupted = 0;
  std::size_t sandbox_checks = 0;
  std::size_t sandbox_failures = 0;
  std::size_t av_label_checks = 0;
  std::size_t av_label_gaps = 0;
  std::size_t delivery_checks = 0;
  std::size_t delivery_failures = 0;
  std::size_t delivery_retries = 0;
  std::size_t delivery_retry_exhausted = 0;
  std::int64_t delivery_backoff_seconds = 0;
  // Serving-surface counters (src/serve). Per-process accounting of a
  // live daemon's degradation — they never enter dataset.fault_report
  // or an epoch checkpoint, so the snapshot codec deliberately does not
  // serialize them (no version bump needed when they grow).
  std::size_t serve_checks = 0;
  std::size_t serve_slow_clients = 0;
  std::size_t serve_disconnects = 0;
  std::size_t serve_accept_failures = 0;

  [[nodiscard]] bool any() const noexcept;
  /// Multi-line, human-readable degradation summary.
  [[nodiscard]] std::string summary() const;
};

/// Field-wise sum: composes the report of a restored checkpoint slice
/// with the counters accumulated since (the epoch loop's bookkeeping).
[[nodiscard]] FaultReport add(const FaultReport& a, const FaultReport& b);

/// Field-wise difference a - b; `b` must be an earlier snapshot of the
/// same accumulation than `a` (every field of `a` >= `b`).
[[nodiscard]] FaultReport subtract(const FaultReport& a, const FaultReport& b);

/// What the download fault model decided for one transfer.
enum class DownloadFault : std::uint8_t { kNone, kRefused, kCorrupted };

class FaultInjector {
 public:
  /// Validates and adopts the plan.
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// Snapshot of the counters. Relaxed loads: call between pipeline
  /// stages (after the workers mutating the counters have joined) for
  /// a coherent picture.
  [[nodiscard]] FaultReport report() const noexcept;

  /// True when `location`'s sensors are dark during `week`; bumps the
  /// outage-loss counter when they are.
  [[nodiscard]] bool sensor_down(int location, int week);

  /// One proxied conversation's delivery to the sample factory, with
  /// bounded retry/backoff.
  struct ProxyOutcome {
    bool refined = true;  // false: every attempt failed, FSM unrefined
    int attempts = 1;
    std::int64_t backoff_seconds = 0;
  };
  [[nodiscard]] ProxyOutcome try_proxy(std::uint64_t key);

  /// Fault mode of one download; `key` must be unique per transfer.
  [[nodiscard]] DownloadFault download_fault(std::uint64_t key);

  /// Deterministically flips bits of a downloaded image so it no longer
  /// parses as PE (the DOS magic and a scatter of payload bytes are
  /// damaged). No-op on an empty buffer.
  void corrupt(std::vector<std::uint8_t>& bytes, std::uint64_t key) const;

  /// True when the sandbox submission keyed by `key` times out/crashes.
  [[nodiscard]] bool sandbox_fails(std::uint64_t key);

  /// True when the AV labeler returns nothing for `key`.
  [[nodiscard]] bool av_label_gap(std::uint64_t key);

  /// True when delivery attempt `attempt` (1-based) of the ingest
  /// record keyed `key` fails (site "ingest.delivery"). The retry loop
  /// itself lives in src/ingest/delivery; it reports its bookkeeping
  /// back through the two counters below.
  [[nodiscard]] bool delivery_fails(std::uint64_t key, int attempt);
  /// One ingest retry wait of `backoff_seconds` happened.
  void count_delivery_retry(std::int64_t backoff_seconds);
  /// One ingest record exhausted its retry/deadline budget.
  void count_delivery_exhausted();

  /// True when the analyst client serving request `key` stalls
  /// mid-request (site "serve.slow"); the server charges the stall
  /// against the request deadline.
  [[nodiscard]] bool serve_slow_client(std::uint64_t key);
  /// True when the client vanishes before the reply to request `key`
  /// can be written (site "serve.disconnect").
  [[nodiscard]] bool serve_disconnect(std::uint64_t key);
  /// True when accept() of incoming connection `key` fails
  /// (site "serve.accept").
  [[nodiscard]] bool serve_accept_fails(std::uint64_t key);

 private:
  /// Stateless Bernoulli decision: hash of (seed, stage, key) vs p.
  [[nodiscard]] bool roll(std::string_view stage, std::uint64_t key,
                          double p) const noexcept;

  FaultPlan plan_;
  /// Decisions are pure hashes; only the bookkeeping is shared mutable
  /// state. Enrichment calls the decision methods from pool workers,
  /// so each counter is a relaxed atomic — no lock, no ordering
  /// dependence, and the decision itself never reads a counter, so
  /// concurrency cannot change outcomes.
  struct Counters {
    std::atomic<std::uint64_t> attacks_lost_to_outage{0};
    std::atomic<std::uint64_t> sensor_checks{0};
    std::atomic<std::uint64_t> proxy_attempts{0};
    std::atomic<std::uint64_t> proxy_failures{0};
    std::atomic<std::uint64_t> proxy_retries{0};
    std::atomic<std::uint64_t> refinements_abandoned{0};
    std::atomic<std::int64_t> proxy_backoff_seconds{0};
    std::atomic<std::uint64_t> download_checks{0};
    std::atomic<std::uint64_t> downloads_refused{0};
    std::atomic<std::uint64_t> downloads_corrupted{0};
    std::atomic<std::uint64_t> sandbox_checks{0};
    std::atomic<std::uint64_t> sandbox_failures{0};
    std::atomic<std::uint64_t> av_label_checks{0};
    std::atomic<std::uint64_t> av_label_gaps{0};
    std::atomic<std::uint64_t> delivery_checks{0};
    std::atomic<std::uint64_t> delivery_failures{0};
    std::atomic<std::uint64_t> delivery_retries{0};
    std::atomic<std::uint64_t> delivery_retry_exhausted{0};
    std::atomic<std::int64_t> delivery_backoff_seconds{0};
    std::atomic<std::uint64_t> serve_checks{0};
    std::atomic<std::uint64_t> serve_slow_clients{0};
    std::atomic<std::uint64_t> serve_disconnects{0};
    std::atomic<std::uint64_t> serve_accept_failures{0};
  };
  Counters counters_;
};

}  // namespace repro::fault
