#include "fault/injector.hpp"

// repro-lint: allow-file(RL008) every atomic here is an independent
// statistic counter (fetch_add/load, no cross-variable invariants); the
// deterministic totals are reconciled after join(), so relaxed ordering
// cannot reorder anything another thread depends on.

#include <sstream>

#include "util/rng.hpp"

namespace repro::fault {

bool FaultReport::any() const noexcept {
  return attacks_lost_to_outage > 0 || proxy_failures > 0 ||
         refinements_abandoned > 0 || downloads_refused > 0 ||
         downloads_corrupted > 0 || sandbox_failures > 0 ||
         av_label_gaps > 0 || delivery_failures > 0 ||
         serve_slow_clients > 0 || serve_disconnects > 0 ||
         serve_accept_failures > 0;
}

namespace {

/// Applies `op` to every counter pair of two reports. Keeping the
/// member list in one place means add/subtract can never drift apart
/// when FaultReport grows a field.
template <typename Op>
FaultReport combine(const FaultReport& a, const FaultReport& b, Op op) {
  FaultReport out;
  const auto apply = [&](auto member) { out.*member = op(a.*member, b.*member); };
  apply(&FaultReport::attacks_lost_to_outage);
  apply(&FaultReport::sensor_checks);
  apply(&FaultReport::proxy_attempts);
  apply(&FaultReport::proxy_failures);
  apply(&FaultReport::proxy_retries);
  apply(&FaultReport::refinements_abandoned);
  apply(&FaultReport::proxy_backoff_seconds);
  apply(&FaultReport::download_checks);
  apply(&FaultReport::downloads_refused);
  apply(&FaultReport::downloads_corrupted);
  apply(&FaultReport::sandbox_checks);
  apply(&FaultReport::sandbox_failures);
  apply(&FaultReport::av_label_checks);
  apply(&FaultReport::av_label_gaps);
  apply(&FaultReport::delivery_checks);
  apply(&FaultReport::delivery_failures);
  apply(&FaultReport::delivery_retries);
  apply(&FaultReport::delivery_retry_exhausted);
  apply(&FaultReport::delivery_backoff_seconds);
  apply(&FaultReport::serve_checks);
  apply(&FaultReport::serve_slow_clients);
  apply(&FaultReport::serve_disconnects);
  apply(&FaultReport::serve_accept_failures);
  return out;
}

}  // namespace

FaultReport add(const FaultReport& a, const FaultReport& b) {
  return combine(a, b, [](auto x, auto y) { return x + y; });
}

FaultReport subtract(const FaultReport& a, const FaultReport& b) {
  return combine(a, b, [](auto x, auto y) { return x - y; });
}

std::string FaultReport::summary() const {
  std::ostringstream out;
  out << "--- fault degradation summary ---\n"
      << "  sensor outages:      " << attacks_lost_to_outage
      << " attacks unrecorded\n"
      << "  proxy channel:       " << proxy_failures << " failed attempts ("
      << proxy_retries << " retries, " << proxy_backoff_seconds
      << "s backoff), " << refinements_abandoned
      << " refinements abandoned\n"
      << "  downloads:           " << downloads_refused << " refused, "
      << downloads_corrupted << " bit-corrupted\n"
      << "  sandbox:             " << sandbox_failures
      << " timeouts/crashes (samples left unenriched)\n"
      << "  AV labeler:          " << av_label_gaps << " label gaps\n"
      << "  ingest delivery:     " << delivery_failures
      << " failed attempts (" << delivery_retries << " retries, "
      << delivery_backoff_seconds << "s backoff), "
      << delivery_retry_exhausted << " records spooled after exhaustion\n"
      << "  query service:       " << serve_slow_clients
      << " slow clients, " << serve_disconnects << " disconnects, "
      << serve_accept_failures << " accept failures\n";
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

FaultReport FaultInjector::report() const noexcept {
  const auto sz = [](const std::atomic<std::uint64_t>& c) noexcept {
    return static_cast<std::size_t>(c.load(std::memory_order_relaxed));
  };
  FaultReport report;
  report.attacks_lost_to_outage = sz(counters_.attacks_lost_to_outage);
  report.sensor_checks = sz(counters_.sensor_checks);
  report.proxy_attempts = sz(counters_.proxy_attempts);
  report.proxy_failures = sz(counters_.proxy_failures);
  report.proxy_retries = sz(counters_.proxy_retries);
  report.refinements_abandoned = sz(counters_.refinements_abandoned);
  report.proxy_backoff_seconds =
      counters_.proxy_backoff_seconds.load(std::memory_order_relaxed);
  report.download_checks = sz(counters_.download_checks);
  report.downloads_refused = sz(counters_.downloads_refused);
  report.downloads_corrupted = sz(counters_.downloads_corrupted);
  report.sandbox_checks = sz(counters_.sandbox_checks);
  report.sandbox_failures = sz(counters_.sandbox_failures);
  report.av_label_checks = sz(counters_.av_label_checks);
  report.av_label_gaps = sz(counters_.av_label_gaps);
  report.delivery_checks = sz(counters_.delivery_checks);
  report.delivery_failures = sz(counters_.delivery_failures);
  report.delivery_retries = sz(counters_.delivery_retries);
  report.delivery_retry_exhausted = sz(counters_.delivery_retry_exhausted);
  report.delivery_backoff_seconds =
      counters_.delivery_backoff_seconds.load(std::memory_order_relaxed);
  report.serve_checks = sz(counters_.serve_checks);
  report.serve_slow_clients = sz(counters_.serve_slow_clients);
  report.serve_disconnects = sz(counters_.serve_disconnects);
  report.serve_accept_failures = sz(counters_.serve_accept_failures);
  return report;
}

bool FaultInjector::roll(std::string_view stage, std::uint64_t key,
                         double p) const noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t h =
      mix64(plan_.seed ^ fnv1a64(stage) ^ mix64(key ^ 0x9e37'79b9'7f4a'7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  const double draw =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return draw < p;
}

bool FaultInjector::sensor_down(int location, int week) {
  counters_.sensor_checks.fetch_add(1, std::memory_order_relaxed);
  for (const SensorOutage& outage : plan_.sensor_outages) {
    if (outage.location == location && week >= outage.from_week &&
        week < outage.to_week) {
      counters_.attacks_lost_to_outage.fetch_add(1,
                                                 std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

FaultInjector::ProxyOutcome FaultInjector::try_proxy(std::uint64_t key) {
  ProxyOutcome outcome;
  outcome.attempts = 0;
  std::uint64_t failures = 0;
  std::int64_t backoff = plan_.proxy_backoff_base_seconds;
  outcome.refined = false;
  for (int attempt = 0; attempt <= plan_.proxy_max_retries; ++attempt) {
    ++outcome.attempts;
    if (!roll("proxy", mix64(key) + static_cast<std::uint64_t>(attempt),
              plan_.proxy_failure_probability)) {
      outcome.refined = true;
      break;
    }
    ++failures;
    if (attempt < plan_.proxy_max_retries) {
      outcome.backoff_seconds += backoff;  // exponential backoff schedule
      backoff *= 2;
    }
  }
  counters_.proxy_attempts.fetch_add(
      static_cast<std::uint64_t>(outcome.attempts), std::memory_order_relaxed);
  counters_.proxy_failures.fetch_add(failures, std::memory_order_relaxed);
  if (!outcome.refined) {
    counters_.refinements_abandoned.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.proxy_backoff_seconds.fetch_add(outcome.backoff_seconds,
                                            std::memory_order_relaxed);
  counters_.proxy_retries.fetch_add(
      static_cast<std::uint64_t>(outcome.attempts - 1),
      std::memory_order_relaxed);
  return outcome;
}

DownloadFault FaultInjector::download_fault(std::uint64_t key) {
  counters_.download_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("download.refused", key, plan_.download_refused_probability)) {
    counters_.downloads_refused.fetch_add(1, std::memory_order_relaxed);
    return DownloadFault::kRefused;
  }
  if (roll("download.corrupt", key, plan_.download_corruption_probability)) {
    counters_.downloads_corrupted.fetch_add(1, std::memory_order_relaxed);
    return DownloadFault::kCorrupted;
  }
  return DownloadFault::kNone;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& bytes,
                            std::uint64_t key) const {
  if (bytes.empty()) return;
  // Damage the DOS magic so the image can never parse as PE, then flip
  // a deterministic scatter of payload bits (the wire-level damage).
  bytes[0] ^= 0xFF;
  if (bytes.size() > 1) bytes[1] ^= 0xFF;
  Rng rng{mix64(plan_.seed ^ fnv1a64("corrupt") ^ mix64(key))};
  const std::size_t flips = 4 + rng.index(28);
  for (std::size_t i = 0; i < flips; ++i) {
    bytes[rng.index(bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.index(8));
  }
}

bool FaultInjector::sandbox_fails(std::uint64_t key) {
  counters_.sandbox_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("sandbox", key, plan_.sandbox_failure_probability)) {
    counters_.sandbox_failures.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::delivery_fails(std::uint64_t key, int attempt) {
  counters_.delivery_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("ingest.delivery",
           mix64(key) + static_cast<std::uint64_t>(attempt),
           plan_.ingest_failure_probability)) {
    counters_.delivery_failures.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void FaultInjector::count_delivery_retry(std::int64_t backoff_seconds) {
  counters_.delivery_retries.fetch_add(1, std::memory_order_relaxed);
  counters_.delivery_backoff_seconds.fetch_add(backoff_seconds,
                                               std::memory_order_relaxed);
}

void FaultInjector::count_delivery_exhausted() {
  counters_.delivery_retry_exhausted.fetch_add(1, std::memory_order_relaxed);
}

bool FaultInjector::serve_slow_client(std::uint64_t key) {
  counters_.serve_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("serve.slow", key, plan_.serve_slow_client_probability)) {
    counters_.serve_slow_clients.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::serve_disconnect(std::uint64_t key) {
  counters_.serve_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("serve.disconnect", key, plan_.serve_disconnect_probability)) {
    counters_.serve_disconnects.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::serve_accept_fails(std::uint64_t key) {
  counters_.serve_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("serve.accept", key, plan_.serve_accept_failure_probability)) {
    counters_.serve_accept_failures.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::av_label_gap(std::uint64_t key) {
  counters_.av_label_checks.fetch_add(1, std::memory_order_relaxed);
  if (roll("avlabel", key, plan_.av_label_gap_probability)) {
    counters_.av_label_gaps.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace repro::fault
