#include "fault/injector.hpp"

#include <sstream>

#include "util/rng.hpp"

namespace repro::fault {

bool FaultReport::any() const noexcept {
  return attacks_lost_to_outage > 0 || proxy_failures > 0 ||
         refinements_abandoned > 0 || downloads_refused > 0 ||
         downloads_corrupted > 0 || sandbox_failures > 0 ||
         av_label_gaps > 0;
}

std::string FaultReport::summary() const {
  std::ostringstream out;
  out << "--- fault degradation summary ---\n"
      << "  sensor outages:      " << attacks_lost_to_outage
      << " attacks unrecorded\n"
      << "  proxy channel:       " << proxy_failures << " failed attempts ("
      << proxy_retries << " retries, " << proxy_backoff_seconds
      << "s backoff), " << refinements_abandoned
      << " refinements abandoned\n"
      << "  downloads:           " << downloads_refused << " refused, "
      << downloads_corrupted << " bit-corrupted\n"
      << "  sandbox:             " << sandbox_failures
      << " timeouts/crashes (samples left unenriched)\n"
      << "  AV labeler:          " << av_label_gaps << " label gaps\n";
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

bool FaultInjector::roll(std::string_view stage, std::uint64_t key,
                         double p) const noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t h =
      mix64(plan_.seed ^ fnv1a64(stage) ^ mix64(key ^ 0x9e37'79b9'7f4a'7c15ULL));
  // Top 53 bits -> uniform double in [0, 1).
  const double draw =
      static_cast<double>(h >> 11) * 0x1.0p-53;
  return draw < p;
}

bool FaultInjector::sensor_down(int location, int week) {
  for (const SensorOutage& outage : plan_.sensor_outages) {
    if (outage.location == location && week >= outage.from_week &&
        week < outage.to_week) {
      const std::lock_guard<std::mutex> lock{report_mutex_};
      ++report_.attacks_lost_to_outage;
      return true;
    }
  }
  return false;
}

FaultInjector::ProxyOutcome FaultInjector::try_proxy(std::uint64_t key) {
  ProxyOutcome outcome;
  outcome.attempts = 0;
  std::size_t failures = 0;
  bool abandoned = false;
  std::int64_t backoff = plan_.proxy_backoff_base_seconds;
  outcome.refined = false;
  for (int attempt = 0; attempt <= plan_.proxy_max_retries; ++attempt) {
    ++outcome.attempts;
    if (!roll("proxy", mix64(key) + static_cast<std::uint64_t>(attempt),
              plan_.proxy_failure_probability)) {
      outcome.refined = true;
      break;
    }
    ++failures;
    if (attempt < plan_.proxy_max_retries) {
      outcome.backoff_seconds += backoff;  // exponential backoff schedule
      backoff *= 2;
    }
  }
  abandoned = !outcome.refined;
  {
    const std::lock_guard<std::mutex> lock{report_mutex_};
    report_.proxy_attempts += static_cast<std::size_t>(outcome.attempts);
    report_.proxy_failures += failures;
    if (abandoned) ++report_.refinements_abandoned;
    report_.proxy_backoff_seconds += outcome.backoff_seconds;
    report_.proxy_retries += static_cast<std::size_t>(outcome.attempts - 1);
  }
  return outcome;
}

DownloadFault FaultInjector::download_fault(std::uint64_t key) {
  if (roll("download.refused", key, plan_.download_refused_probability)) {
    const std::lock_guard<std::mutex> lock{report_mutex_};
    ++report_.downloads_refused;
    return DownloadFault::kRefused;
  }
  if (roll("download.corrupt", key, plan_.download_corruption_probability)) {
    const std::lock_guard<std::mutex> lock{report_mutex_};
    ++report_.downloads_corrupted;
    return DownloadFault::kCorrupted;
  }
  return DownloadFault::kNone;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& bytes,
                            std::uint64_t key) const {
  if (bytes.empty()) return;
  // Damage the DOS magic so the image can never parse as PE, then flip
  // a deterministic scatter of payload bits (the wire-level damage).
  bytes[0] ^= 0xFF;
  if (bytes.size() > 1) bytes[1] ^= 0xFF;
  Rng rng{mix64(plan_.seed ^ fnv1a64("corrupt") ^ mix64(key))};
  const std::size_t flips = 4 + rng.index(28);
  for (std::size_t i = 0; i < flips; ++i) {
    bytes[rng.index(bytes.size())] ^=
        static_cast<std::uint8_t>(1u << rng.index(8));
  }
}

bool FaultInjector::sandbox_fails(std::uint64_t key) {
  if (roll("sandbox", key, plan_.sandbox_failure_probability)) {
    const std::lock_guard<std::mutex> lock{report_mutex_};
    ++report_.sandbox_failures;
    return true;
  }
  return false;
}

bool FaultInjector::av_label_gap(std::uint64_t key) {
  if (roll("avlabel", key, plan_.av_label_gap_probability)) {
    const std::lock_guard<std::mutex> lock{report_mutex_};
    ++report_.av_label_gaps;
    return true;
  }
  return false;
}

}  // namespace repro::fault
