#include "analysis/context.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace repro::analysis {

std::size_t MClusterContext::distinct_locations() const {
  std::set<int> locations;
  for (const auto& [time, location] : location_sequence) {
    locations.insert(location);
  }
  return locations.size();
}

BClusterContext propagation_context(const honeypot::EventDatabase& db,
                                    const cluster::EpmResult& m,
                                    const BehavioralView& b, int b_cluster,
                                    SimTime origin, int weeks) {
  BClusterContext context;
  context.b_cluster = b_cluster;

  // Samples of this B-cluster, then their events grouped by M-cluster.
  const std::vector<honeypot::SampleId> samples =
      b.samples_of_cluster(b_cluster);
  context.sample_count = samples.size();
  const std::unordered_set<honeypot::SampleId> sample_set{samples.begin(),
                                                          samples.end()};

  std::map<int, std::vector<const honeypot::AttackEvent*>> by_m;
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value() || !sample_set.count(*event.sample)) {
      continue;
    }
    const int m_cluster = m.cluster_of_event(event.id);
    if (m_cluster < 0) continue;
    by_m[m_cluster].push_back(&event);
  }

  for (auto& [m_cluster, events] : by_m) {
    MClusterContext mc;
    mc.m_cluster = m_cluster;
    mc.event_count = events.size();
    mc.weekly_events.assign(static_cast<std::size_t>(weeks), 0);

    std::unordered_set<std::uint32_t> attackers;
    std::set<std::pair<std::int64_t, int>> day_locations;  // dedup per day
    std::sort(events.begin(), events.end(),
              [](const auto* a, const auto* b_ev) { return a->time < b_ev->time; });
    for (const honeypot::AttackEvent* event : events) {
      attackers.insert(event->attacker.value());
      mc.ip_histogram.add(event->attacker);
      const std::int64_t week = week_index(event->time, origin);
      if (week >= 0 && week < weeks) {
        ++mc.weekly_events[static_cast<std::size_t>(week)];
      }
      const std::int64_t day = event->time.seconds / kSecondsPerDay;
      if (day_locations.emplace(day, event->location).second) {
        mc.location_sequence.emplace_back(event->time, event->location);
      }
    }
    mc.distinct_attackers = attackers.size();
    mc.occupied_slash8 = mc.ip_histogram.occupied_blocks();
    mc.ip_entropy = mc.ip_histogram.normalized_entropy();
    for (const std::size_t count : mc.weekly_events) {
      mc.weeks_active += count > 0 ? 1 : 0;
    }
    context.per_m_cluster.push_back(std::move(mc));
  }
  // Largest populations first, mirroring the figure's X-axis ordering.
  std::sort(context.per_m_cluster.begin(), context.per_m_cluster.end(),
            [](const MClusterContext& a, const MClusterContext& b_mc) {
              if (a.event_count != b_mc.event_count) {
                return a.event_count > b_mc.event_count;
              }
              return a.m_cluster < b_mc.m_cluster;
            });
  return context;
}

std::vector<int> most_split_b_clusters(const honeypot::EventDatabase& db,
                                       const cluster::EpmResult& m,
                                       const BehavioralView& b,
                                       std::size_t limit) {
  // B-cluster -> set of M-clusters among its samples' events.
  std::unordered_map<int, std::set<int>> splits;
  std::unordered_map<int, std::size_t> sizes;
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value()) continue;
    const int b_cluster = b.cluster_of_sample(*event.sample);
    const int m_cluster = m.cluster_of_event(event.id);
    if (b_cluster < 0 || m_cluster < 0) continue;
    splits[b_cluster].insert(m_cluster);
    ++sizes[b_cluster];
  }
  std::vector<int> order;
  order.reserve(splits.size());
  for (const auto& [b_cluster, m_set] : splits) order.push_back(b_cluster);
  std::sort(order.begin(), order.end(), [&](int a, int b_id) {
    const std::size_t sa = splits[a].size();
    const std::size_t sb = splits[b_id].size();
    if (sa != sb) return sa > sb;
    if (sizes[a] != sizes[b_id]) return sizes[a] > sizes[b_id];
    return a < b_id;
  });
  if (order.size() > limit) order.resize(limit);
  return order;
}

}  // namespace repro::analysis
