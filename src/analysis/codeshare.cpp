#include "analysis/codeshare.hpp"

#include <algorithm>

namespace repro::analysis {

std::size_t CodeSharingReport::m_clusters_sharing_vector() const {
  // M-cluster -> vectors it uses; an M shares when one of its vectors
  // is used by another M as well.
  std::map<int, std::set<std::pair<int, int>>> m_vectors;
  for (const auto& [vector, m_set] : vector_to_m) {
    for (const int m : m_set) m_vectors[m].insert(vector);
  }
  std::size_t sharing = 0;
  for (const auto& [m, vectors] : m_vectors) {
    bool shares = false;
    for (const auto& vector : vectors) {
      if (vector_to_m.at(vector).size() >= 2) shares = true;
    }
    sharing += shares ? 1 : 0;
  }
  return sharing;
}

std::size_t CodeSharingReport::shared_vectors() const {
  std::size_t count = 0;
  for (const auto& [vector, m_set] : vector_to_m) {
    count += m_set.size() >= 2 ? 1 : 0;
  }
  return count;
}

CodeSharingReport analyze_code_sharing(const honeypot::EventDatabase& db,
                                       const cluster::EpmResult& e,
                                       const cluster::EpmResult& p,
                                       const cluster::EpmResult& m,
                                       std::size_t min_events) {
  // Count events per (P, E) and per (E, P, M).
  std::map<std::pair<int, int>, std::size_t> pe_counts;
  std::map<std::tuple<int, int, int>, std::size_t> epm_counts;
  for (const honeypot::AttackEvent& event : db.events()) {
    const int e_cluster = e.cluster_of_event(event.id);
    const int p_cluster = p.cluster_of_event(event.id);
    if (e_cluster < 0 || p_cluster < 0) continue;
    ++pe_counts[{p_cluster, e_cluster}];
    const int m_cluster = m.cluster_of_event(event.id);
    if (m_cluster >= 0) {
      ++epm_counts[{e_cluster, p_cluster, m_cluster}];
    }
  }

  CodeSharingReport report;

  // Payloads reused across exploits.
  std::map<int, std::vector<std::pair<int, std::size_t>>> per_payload;
  for (const auto& [pe, count] : pe_counts) {
    if (count < min_events) continue;
    per_payload[pe.first].push_back({pe.second, count});
  }
  for (auto& [p_cluster, e_list] : per_payload) {
    if (e_list.size() < 2) continue;
    std::sort(e_list.begin(), e_list.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    report.shared_payloads.push_back(
        CodeSharingReport::SharedPayload{p_cluster, std::move(e_list)});
  }
  std::sort(report.shared_payloads.begin(), report.shared_payloads.end(),
            [](const auto& a, const auto& b) {
              return a.e_clusters.size() > b.e_clusters.size();
            });

  // Propagation vectors shared across M-clusters.
  for (const auto& [epm, count] : epm_counts) {
    if (count < min_events) continue;
    const auto& [e_cluster, p_cluster, m_cluster] = epm;
    report.vector_to_m[{e_cluster, p_cluster}].insert(m_cluster);
  }
  return report;
}

}  // namespace repro::analysis
