// The E-P-M-B relationship graph (Figure 3).
//
// Four layers of clusters — exploits, payloads, malware (static) and
// malware (behavioral) — with weighted edges counting the attack events
// (or samples, for the M-B layer) linking adjacent layers. As in the
// paper's figure, layers can be filtered to clusters grouping at least
// 30 events.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"

namespace repro::analysis {

struct RelationshipGraph {
  enum class Layer : std::uint8_t { kE, kP, kM, kB };

  struct Node {
    Layer layer;
    int cluster_id = 0;       // id within its own clustering
    std::string label;        // "E12", "P45", "M13", "B7"
    std::size_t event_count = 0;
  };

  std::vector<Node> nodes;
  /// (layer-adjacent) node-index pairs -> linking event/sample count.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edges;

  [[nodiscard]] std::size_t layer_size(Layer layer) const noexcept;
  /// Distinct E-P combinations present among the edges.
  [[nodiscard]] std::size_t ep_combination_count() const noexcept;
  /// Number of P nodes connected to 2+ E nodes (payload shared across
  /// exploits — the code-sharing signal).
  [[nodiscard]] std::size_t shared_p_count() const noexcept;
  /// Number of B nodes connected to 2+ M nodes (one behavior, several
  /// static variants).
  [[nodiscard]] std::size_t split_b_count() const noexcept;

  /// Graphviz rendering (one rank per layer).
  [[nodiscard]] std::string to_dot() const;
};

/// Builds the graph. Clusters with fewer than `min_events` linked
/// events (samples for B) are dropped, as in the paper's figure;
/// pass 1 to keep everything.
[[nodiscard]] RelationshipGraph build_relationship_graph(
    const honeypot::EventDatabase& db, const cluster::EpmResult& e,
    const cluster::EpmResult& p, const cluster::EpmResult& m,
    const BehavioralView& b, std::size_t min_events = 30);

}  // namespace repro::analysis
