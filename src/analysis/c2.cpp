#include "analysis/c2.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace repro::analysis {

namespace {

/// Extracts the IRC endpoint of a profile: the server contacted via a
/// "network|connect|a.b.c.d:port" feature, when the profile also joins
/// an IRC room. Connects to non-literal hosts (second-stage IRC of
/// downloaders) are ignored.
struct IrcEndpoint {
  net::Ipv4 server;
  std::string room;
};

std::optional<IrcEndpoint> irc_endpoint(
    const sandbox::BehavioralProfile& profile) {
  std::optional<net::Ipv4> server;
  std::optional<std::string> room;
  for (const std::string& feature : profile.features()) {
    const std::vector<std::string> parts = split(feature, '|');
    if (parts.size() != 3) continue;
    if (parts[0] == "network" && parts[1] == "connect") {
      const std::size_t colon = parts[2].rfind(':');
      if (colon == std::string::npos) continue;
      try {
        server = net::Ipv4::parse(parts[2].substr(0, colon));
      } catch (const ParseError&) {
        continue;  // hostname, not a literal address
      }
    } else if (parts[0] == "irc" && parts[1] == "join") {
      room = parts[2];
    }
  }
  if (!server.has_value() || !room.has_value()) return std::nullopt;
  return IrcEndpoint{*server, *room};
}

}  // namespace

std::size_t C2Report::multi_cluster_rows() const noexcept {
  std::size_t count = 0;
  for (const IrcAssociation& row : associations) {
    count += row.m_clusters.size() >= 2 ? 1 : 0;
  }
  return count;
}

std::size_t C2Report::colocated_groups() const noexcept {
  std::size_t count = 0;
  for (const auto& [subnet, servers] : slash24_groups) {
    count += servers.size() >= 2 ? 1 : 0;
  }
  return count;
}

C2Report correlate_irc(const honeypot::EventDatabase& db,
                       const cluster::EpmResult& m, const BehavioralView& b) {
  (void)b;  // reserved: future versions will scope the scan to bot B-clusters
  // Sample -> M-cluster via any of its events.
  std::unordered_map<honeypot::SampleId, int> sample_m;
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value()) continue;
    const int m_cluster = m.cluster_of_event(event.id);
    if (m_cluster >= 0) sample_m.emplace(*event.sample, m_cluster);
  }

  std::map<std::pair<std::uint32_t, std::string>, std::set<int>> channels;
  for (const honeypot::MalwareSample& sample : db.samples()) {
    if (!sample.profile.has_value()) continue;
    const auto endpoint = irc_endpoint(*sample.profile);
    if (!endpoint.has_value()) continue;
    const auto m_it = sample_m.find(sample.id);
    if (m_it == sample_m.end()) continue;
    channels[{endpoint->server.value(), endpoint->room}].insert(m_it->second);
  }

  C2Report report;
  std::set<std::uint32_t> servers;
  for (const auto& [channel, m_set] : channels) {
    IrcAssociation row;
    row.server = net::Ipv4{channel.first};
    row.room = channel.second;
    row.m_clusters.assign(m_set.begin(), m_set.end());
    servers.insert(channel.first);
    report.associations.push_back(std::move(row));
  }
  std::map<std::string, std::set<std::uint32_t>> room_servers;
  for (const IrcAssociation& row : report.associations) {
    room_servers[row.room].insert(row.server.value());
  }
  for (const auto& [room, server_set] : room_servers) {
    report.room_reuse[room] = server_set.size();
  }
  for (const std::uint32_t server : servers) {
    const net::Ipv4 address{server};
    report.slash24_groups[address.slash24().to_string() + "/24"].push_back(
        address.to_string());
  }
  return report;
}

}  // namespace repro::analysis
