#include "analysis/anomaly.hpp"

#include <unordered_map>

namespace repro::analysis {

SingletonReport detect_singleton_anomalies(const honeypot::EventDatabase& db,
                                           const cluster::EpmResult& e,
                                           const cluster::EpmResult& p,
                                           const cluster::EpmResult& m,
                                           const BehavioralView& b) {
  SingletonReport report;
  report.b_cluster_count = b.cluster_count();

  // Sample -> M-cluster (all events of a sample share mu features, so
  // any event of the sample resolves it), and one representative event
  // for E/P coordinates.
  std::unordered_map<honeypot::SampleId, int> sample_m;
  std::unordered_map<honeypot::SampleId, honeypot::EventId> sample_event;
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value()) continue;
    const int m_cluster = m.cluster_of_event(event.id);
    if (m_cluster < 0) continue;
    sample_m.emplace(*event.sample, m_cluster);
    sample_event.emplace(*event.sample, event.id);
  }

  // Analyzable samples per M-cluster.
  std::unordered_map<int, std::size_t> m_analyzable;
  for (const honeypot::MalwareSample& sample : db.samples()) {
    if (!sample.profile.has_value()) continue;
    const auto it = sample_m.find(sample.id);
    if (it != sample_m.end()) ++m_analyzable[it->second];
  }

  for (std::size_t cluster = 0; cluster < b.cluster_count(); ++cluster) {
    const auto members = b.samples_of_cluster(static_cast<int>(cluster));
    if (members.size() != 1) continue;
    ++report.singleton_b_clusters;
    const honeypot::SampleId sample = members.front();
    const auto m_it = sample_m.find(sample);
    if (m_it == sample_m.end()) {
      ++report.one_to_one;  // no static context at all: treat as rare
      continue;
    }
    if (m_analyzable[m_it->second] <= 1) {
      ++report.one_to_one;
      continue;
    }
    ++report.anomalies;
    report.anomalous_samples.push_back(sample);
    // An injected AV-labeler gap leaves the label empty; keep the
    // histogram readable by bucketing those explicitly.
    const std::string& label = db.sample(sample).av_label;
    ++report.av_names[label.empty() ? "(no label)" : label];
    const auto event_it = sample_event.find(sample);
    if (event_it != sample_event.end()) {
      const int e_cluster = e.cluster_of_event(event_it->second);
      const int p_cluster = p.cluster_of_event(event_it->second);
      ++report.ep_coordinates[{e_cluster, p_cluster}];
    }
  }
  return report;
}

}  // namespace repro::analysis
