// Behavioral clustering of a dataset — the B-cluster view.
//
// Binds the generic profile clustering to the event database: rows are
// the analyzable samples (those with a behavioral profile), and the
// view resolves sample ids and event ids to B-cluster ids.
#pragma once

#include <vector>

#include "cluster/behavioral.hpp"
#include "honeypot/database.hpp"

namespace repro::snapshot {
struct BehavioralViewAccess;
}  // namespace repro::snapshot

namespace repro::analysis {

class BehavioralView {
 public:
  /// Clusters every analyzable sample's profile in the database.
  static BehavioralView build(const honeypot::EventDatabase& db,
                              const cluster::BehavioralOptions& options = {});

  [[nodiscard]] const cluster::BehavioralClusters& clusters() const noexcept {
    return clusters_;
  }
  /// Sample behind row `index`.
  [[nodiscard]] honeypot::SampleId sample_of_row(std::size_t index) const {
    return rows_[index];
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// B-cluster of a sample; -1 when the sample was not analyzable.
  [[nodiscard]] int cluster_of_sample(honeypot::SampleId sample) const;

  /// Member sample ids of one B-cluster.
  [[nodiscard]] std::vector<honeypot::SampleId> samples_of_cluster(
      int cluster) const;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return clusters_.cluster_count();
  }
  [[nodiscard]] std::size_t singleton_count() const noexcept {
    return clusters_.singleton_count();
  }

 private:
  /// Snapshot codec: restores the row and assignment state directly.
  friend struct repro::snapshot::BehavioralViewAccess;

  std::vector<honeypot::SampleId> rows_;
  std::vector<int> sample_to_cluster_;  // indexed by SampleId, -1 = none
  cluster::BehavioralClusters clusters_;
};

}  // namespace repro::analysis
