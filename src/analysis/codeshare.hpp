// Code-sharing analysis.
//
// The paper's concluding claim: "the propagation vector information can
// be used to study code-sharing taking place among malware writers".
// Two signals carry it: payload patterns (P-clusters) reused across
// several exploits (E-clusters) — the same injection code grafted onto
// different vulnerabilities — and distinct malware families (M-clusters)
// propagating with an identical (E, P) vector — shared or copied
// propagation code, the paper's Allaple / M-cluster-13 case.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "cluster/epm.hpp"
#include "honeypot/database.hpp"

namespace repro::analysis {

struct CodeSharingReport {
  /// One payload used by several exploits.
  struct SharedPayload {
    int p_cluster = -1;
    /// (E-cluster, linking event count), descending by count.
    std::vector<std::pair<int, std::size_t>> e_clusters;
  };
  std::vector<SharedPayload> shared_payloads;

  /// (E, P) propagation vector -> M-clusters using it.
  std::map<std::pair<int, int>, std::set<int>> vector_to_m;

  /// Number of distinct (E, P) propagation vectors observed.
  [[nodiscard]] std::size_t distinct_vectors() const noexcept {
    return vector_to_m.size();
  }
  /// M-clusters whose propagation vector is shared with at least one
  /// other M-cluster.
  [[nodiscard]] std::size_t m_clusters_sharing_vector() const;
  /// Propagation vectors used by 2+ M-clusters.
  [[nodiscard]] std::size_t shared_vectors() const;
};

/// Minimum linking events for an (E, P) or (P, E) association to count
/// (filters one-off noise).
[[nodiscard]] CodeSharingReport analyze_code_sharing(
    const honeypot::EventDatabase& db, const cluster::EpmResult& e,
    const cluster::EpmResult& p, const cluster::EpmResult& m,
    std::size_t min_events = 3);

}  // namespace repro::analysis
