#include "analysis/evolution.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

namespace repro::analysis {

std::vector<std::int64_t> PatchChain::release_gaps_weeks(
    SimTime origin) const {
  std::vector<std::int64_t> gaps;
  for (std::size_t i = 1; i < releases.size(); ++i) {
    gaps.push_back(week_index(releases[i].first_seen, origin) -
                   week_index(releases[i - 1].first_seen, origin));
  }
  return gaps;
}

std::vector<int> EvolutionReport::burst_weeks(std::size_t threshold) const {
  std::vector<int> weeks;
  for (std::size_t week = 0; week < births_per_week.size(); ++week) {
    if (births_per_week[week] >= threshold) {
      weeks.push_back(static_cast<int>(week));
    }
  }
  return weeks;
}

EvolutionReport analyze_evolution(const honeypot::EventDatabase& db,
                                  const cluster::EpmResult& m,
                                  const BehavioralView& b, SimTime origin,
                                  int weeks) {
  EvolutionReport report;

  // Lifetimes per M-cluster.
  std::unordered_map<int, ClusterLifetime> lifetimes;
  std::unordered_map<honeypot::SampleId, int> sample_m;
  for (const honeypot::AttackEvent& event : db.events()) {
    const int m_cluster = m.cluster_of_event(event.id);
    if (m_cluster < 0) continue;
    auto [it, inserted] = lifetimes.try_emplace(m_cluster);
    ClusterLifetime& lifetime = it->second;
    if (inserted) {
      lifetime.m_cluster = m_cluster;
      lifetime.first_seen = event.time;
      lifetime.last_seen = event.time;
    } else {
      lifetime.first_seen = std::min(lifetime.first_seen, event.time);
      lifetime.last_seen = std::max(lifetime.last_seen, event.time);
    }
    ++lifetime.event_count;
    if (event.sample.has_value()) {
      sample_m.emplace(*event.sample, m_cluster);
    }
  }
  report.lifetimes.reserve(lifetimes.size());
  for (const auto& [m_cluster, lifetime] : lifetimes) {
    report.lifetimes.push_back(lifetime);
  }
  std::sort(report.lifetimes.begin(), report.lifetimes.end(),
            [](const ClusterLifetime& a, const ClusterLifetime& b_lt) {
              if (a.first_seen != b_lt.first_seen) {
                return a.first_seen < b_lt.first_seen;
              }
              return a.m_cluster < b_lt.m_cluster;
            });

  // Births per week.
  report.births_per_week.assign(static_cast<std::size_t>(weeks), 0);
  for (const ClusterLifetime& lifetime : report.lifetimes) {
    const std::int64_t week = week_index(lifetime.first_seen, origin);
    if (week >= 0 && week < weeks) {
      ++report.births_per_week[static_cast<std::size_t>(week)];
    }
  }

  // Patch chains: group M-clusters by B-cluster via their samples.
  std::map<int, std::set<int>> b_to_m;
  for (const auto& [sample, m_cluster] : sample_m) {
    const int b_cluster = b.cluster_of_sample(sample);
    if (b_cluster >= 0) b_to_m[b_cluster].insert(m_cluster);
  }
  for (const auto& [b_cluster, m_set] : b_to_m) {
    if (m_set.size() < 2) continue;
    PatchChain chain;
    chain.b_cluster = b_cluster;
    for (const int m_cluster : m_set) {
      chain.releases.push_back(lifetimes.at(m_cluster));
    }
    std::sort(chain.releases.begin(), chain.releases.end(),
              [](const ClusterLifetime& a, const ClusterLifetime& b_lt) {
                if (a.first_seen != b_lt.first_seen) {
                  return a.first_seen < b_lt.first_seen;
                }
                return a.m_cluster < b_lt.m_cluster;
              });
    report.chains.push_back(std::move(chain));
  }
  std::sort(report.chains.begin(), report.chains.end(),
            [](const PatchChain& a, const PatchChain& b_chain) {
              if (a.releases.size() != b_chain.releases.size()) {
                return a.releases.size() > b_chain.releases.size();
              }
              return a.b_cluster < b_chain.b_cluster;
            });
  return report;
}

}  // namespace repro::analysis
