#include "analysis/healing.hpp"

#include "pe/parser.hpp"
#include "sandbox/anubis.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::analysis {

namespace {

/// A suspect can be (re-)executed iff its stored image is intact and
/// still parses. Truncated/corrupted downloads stay unrunnable forever;
/// samples that merely hit a sandbox fault at enrichment time pass and
/// get their first profile through the healing retry.
bool runnable(const honeypot::MalwareSample& sample) {
  if (!sample.intact() || !pe::looks_like_pe(sample.content)) return false;
  try {
    (void)pe::parse_pe(sample.content);
  } catch (const ParseError&) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<honeypot::SampleId> unenriched_executable_samples(
    const honeypot::EventDatabase& db) {
  std::vector<honeypot::SampleId> out;
  for (const honeypot::MalwareSample& sample : db.samples()) {
    if (!sample.profile.has_value() && runnable(sample)) {
      out.push_back(sample.id);
    }
  }
  return out;
}

HealingOutcome heal_by_reexecution(
    honeypot::EventDatabase& db, const malware::Landscape& landscape,
    const sandbox::Environment& environment,
    const std::vector<honeypot::SampleId>& suspects,
    const BehavioralView& before, int reruns,
    const cluster::BehavioralOptions& options) {
  HealingOutcome outcome;
  outcome.report.suspects = suspects.size();
  outcome.report.b_clusters_before = before.cluster_count();
  outcome.report.singletons_before = before.singleton_count();

  const sandbox::Sandbox sandbox{environment};
  for (const honeypot::SampleId id : suspects) {
    honeypot::MalwareSample& sample = db.sample_mutable(id);
    // Samples whose bytes cannot execute are skipped; samples that are
    // runnable but never got a profile (sandbox fault during
    // enrichment) are recovered here with their first execution.
    if (!runnable(sample)) {
      ++outcome.report.unrunnable;
      continue;
    }
    const bool was_unenriched = !sample.profile.has_value();
    const malware::MalwareVariant& variant =
        landscape.variant(sample.truth_variant);
    // Fresh executions use a seed stream distinct from the original
    // submission so the noise draw is independent.
    sample.profile = sandbox.run_repeated(
        variant.behavior, sample.first_seen,
        mix64(fnv1a64(sample.md5) ^ 0x4ea1'0000'0000'0000ULL), reruns);
    ++outcome.report.reexecuted;
    if (was_unenriched) ++outcome.report.recovered_unenriched;
  }

  outcome.after = BehavioralView::build(db, options);
  outcome.report.b_clusters_after = outcome.after.cluster_count();
  outcome.report.singletons_after = outcome.after.singleton_count();
  return outcome;
}

}  // namespace repro::analysis
