#include "analysis/healing.hpp"

#include "sandbox/anubis.hpp"
#include "util/rng.hpp"

namespace repro::analysis {

HealingOutcome heal_by_reexecution(
    honeypot::EventDatabase& db, const malware::Landscape& landscape,
    const sandbox::Environment& environment,
    const std::vector<honeypot::SampleId>& suspects,
    const BehavioralView& before, int reruns,
    const cluster::BehavioralOptions& options) {
  HealingOutcome outcome;
  outcome.report.suspects = suspects.size();
  outcome.report.b_clusters_before = before.cluster_count();
  outcome.report.singletons_before = before.singleton_count();

  const sandbox::Sandbox sandbox{environment};
  for (const honeypot::SampleId id : suspects) {
    honeypot::MalwareSample& sample = db.sample_mutable(id);
    if (!sample.profile.has_value()) continue;
    const malware::MalwareVariant& variant =
        landscape.variant(sample.truth_variant);
    // Fresh executions use a seed stream distinct from the original
    // submission so the noise draw is independent.
    sample.profile = sandbox.run_repeated(
        variant.behavior, sample.first_seen,
        mix64(fnv1a64(sample.md5) ^ 0x4ea1'0000'0000'0000ULL), reruns);
    ++outcome.report.reexecuted;
  }

  outcome.after = BehavioralView::build(db, options);
  outcome.report.b_clusters_after = outcome.after.cluster_count();
  outcome.report.singletons_after = outcome.after.singleton_count();
  return outcome;
}

}  // namespace repro::analysis
