// IRC C&C correlation (Table 2 and the surrounding discussion).
//
// Behavioral profiles of bot samples record the IRC server they contact
// and the room they join. Correlating those features with the static
// M-clusters yields the paper's Table 2: per (server, room), the list
// of M-clusters commanded there. Two follow-up signals reproduce the
// paper's "single bot-herder" argument: several servers co-located in
// one /24, and room names recurring across distinct servers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"
#include "net/ipv4.hpp"

namespace repro::analysis {

struct IrcAssociation {
  net::Ipv4 server;
  std::string room;
  /// M-clusters whose samples receive commands on this channel,
  /// ascending. Two entries here = the paper's "patches applied to the
  /// very same botnet".
  std::vector<int> m_clusters;
};

struct C2Report {
  /// Table 2 rows, ordered by (server, room).
  std::vector<IrcAssociation> associations;
  /// /24 network -> servers inside it (co-location signal).
  std::map<std::string, std::vector<std::string>> slash24_groups;
  /// Room name -> number of distinct servers using it (recurring-name
  /// signal).
  std::map<std::string, std::size_t> room_reuse;

  [[nodiscard]] std::size_t multi_cluster_rows() const noexcept;
  [[nodiscard]] std::size_t colocated_groups() const noexcept;
};

/// Correlates IRC connect/join features with M-clusters.
[[nodiscard]] C2Report correlate_irc(const honeypot::EventDatabase& db,
                                     const cluster::EpmResult& m,
                                     const BehavioralView& b);

}  // namespace repro::analysis
