// Temporal evolution of the threat landscape.
//
// The paper's contextual records cover "the evolution of the attack in
// time" and motivate studying how codebases are patched over their
// life. This module derives three time-structured views from the
// dataset: per-M-cluster lifetimes, the birth rate of new M-clusters
// over the observation window (how fast new static variants appear),
// and *patch chains* — the M-clusters of one B-cluster ordered by first
// appearance, i.e. the observable release history of one codebase
// (Allaple's patches, a botnet's rebuilds).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"
#include "util/simtime.hpp"

namespace repro::analysis {

struct ClusterLifetime {
  int m_cluster = -1;
  SimTime first_seen{};
  SimTime last_seen{};
  std::size_t event_count = 0;

  [[nodiscard]] std::int64_t lifetime_weeks(SimTime origin) const {
    return week_index(last_seen, origin) - week_index(first_seen, origin) + 1;
  }
};

struct PatchChain {
  int b_cluster = -1;
  /// M-clusters ordered by first appearance — the codebase's release
  /// history as the honeypots saw it.
  std::vector<ClusterLifetime> releases;

  /// Weeks between consecutive first-appearances (release cadence).
  [[nodiscard]] std::vector<std::int64_t> release_gaps_weeks(
      SimTime origin) const;
};

struct EvolutionReport {
  /// Lifetime of every M-cluster, ordered by first appearance.
  std::vector<ClusterLifetime> lifetimes;
  /// New M-clusters first seen in each week of the window.
  std::vector<std::size_t> births_per_week;
  /// Patch chains of every B-cluster spanning 2+ M-clusters, longest
  /// first.
  std::vector<PatchChain> chains;

  /// Weeks (since origin) in which at least `threshold` new M-clusters
  /// appeared — variant-burst weeks.
  [[nodiscard]] std::vector<int> burst_weeks(std::size_t threshold) const;
};

[[nodiscard]] EvolutionReport analyze_evolution(
    const honeypot::EventDatabase& db, const cluster::EpmResult& m,
    const BehavioralView& b, SimTime origin, int weeks);

}  // namespace repro::analysis
