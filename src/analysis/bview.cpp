#include "analysis/bview.hpp"

namespace repro::analysis {

BehavioralView BehavioralView::build(const honeypot::EventDatabase& db,
                                     const cluster::BehavioralOptions& options) {
  BehavioralView view;
  std::vector<const sandbox::BehavioralProfile*> profiles;
  for (const honeypot::MalwareSample& sample : db.samples()) {
    if (!sample.profile.has_value()) continue;
    view.rows_.push_back(sample.id);
    profiles.push_back(&*sample.profile);
  }
  view.clusters_ = cluster::cluster_profiles(profiles, options);
  view.sample_to_cluster_.assign(db.samples().size(), -1);
  for (std::size_t row = 0; row < view.rows_.size(); ++row) {
    view.sample_to_cluster_[view.rows_[row]] =
        view.clusters_.assignment[row];
  }
  return view;
}

int BehavioralView::cluster_of_sample(honeypot::SampleId sample) const {
  if (sample >= sample_to_cluster_.size()) return -1;
  return sample_to_cluster_[sample];
}

std::vector<honeypot::SampleId> BehavioralView::samples_of_cluster(
    int cluster) const {
  std::vector<honeypot::SampleId> out;
  if (cluster < 0 ||
      static_cast<std::size_t>(cluster) >= clusters_.members.size()) {
    return out;
  }
  for (const std::size_t row :
       clusters_.members[static_cast<std::size_t>(cluster)]) {
    out.push_back(rows_[row]);
  }
  return out;
}

}  // namespace repro::analysis
