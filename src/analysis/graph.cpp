#include "analysis/graph.hpp"

#include <algorithm>
#include <unordered_map>

namespace repro::analysis {

namespace {

std::string layer_prefix(RelationshipGraph::Layer layer) {
  switch (layer) {
    case RelationshipGraph::Layer::kE: return "E";
    case RelationshipGraph::Layer::kP: return "P";
    case RelationshipGraph::Layer::kM: return "M";
    case RelationshipGraph::Layer::kB: return "B";
  }
  return "?";
}

}  // namespace

std::size_t RelationshipGraph::layer_size(Layer layer) const noexcept {
  std::size_t count = 0;
  for (const Node& node : nodes) count += node.layer == layer ? 1 : 0;
  return count;
}

std::size_t RelationshipGraph::ep_combination_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [edge, weight] : edges) {
    if (nodes[edge.first].layer == Layer::kE &&
        nodes[edge.second].layer == Layer::kP) {
      ++count;
    }
  }
  return count;
}

std::size_t RelationshipGraph::shared_p_count() const noexcept {
  std::unordered_map<std::size_t, std::size_t> e_neighbours;
  for (const auto& [edge, weight] : edges) {
    if (nodes[edge.first].layer == Layer::kE &&
        nodes[edge.second].layer == Layer::kP) {
      ++e_neighbours[edge.second];
    }
  }
  std::size_t shared = 0;
  for (const auto& [p_node, degree] : e_neighbours) {
    shared += degree >= 2 ? 1 : 0;
  }
  return shared;
}

std::size_t RelationshipGraph::split_b_count() const noexcept {
  std::unordered_map<std::size_t, std::size_t> m_neighbours;
  for (const auto& [edge, weight] : edges) {
    if (nodes[edge.first].layer == Layer::kM &&
        nodes[edge.second].layer == Layer::kB) {
      ++m_neighbours[edge.second];
    }
  }
  std::size_t split = 0;
  for (const auto& [b_node, degree] : m_neighbours) {
    split += degree >= 2 ? 1 : 0;
  }
  return split;
}

std::string RelationshipGraph::to_dot() const {
  std::string out = "digraph epmb {\n  rankdir=TB;\n";
  for (const Layer layer :
       {Layer::kE, Layer::kP, Layer::kM, Layer::kB}) {
    out += "  { rank=same;";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].layer == layer) out += " n" + std::to_string(i) + ";";
    }
    out += " }\n";
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" + nodes[i].label + " (" +
           std::to_string(nodes[i].event_count) + ")\"];\n";
  }
  for (const auto& [edge, weight] : edges) {
    out += "  n" + std::to_string(edge.first) + " -> n" +
           std::to_string(edge.second) + " [label=\"" +
           std::to_string(weight) + "\"];\n";
  }
  out += "}\n";
  return out;
}

RelationshipGraph build_relationship_graph(const honeypot::EventDatabase& db,
                                           const cluster::EpmResult& e,
                                           const cluster::EpmResult& p,
                                           const cluster::EpmResult& m,
                                           const BehavioralView& b,
                                           std::size_t min_events) {
  // Per-event cluster tuple; -1 when a dimension lacks the observation.
  struct Tuple {
    int e = -1;
    int p = -1;
    int m = -1;
    int b = -1;
  };
  std::vector<Tuple> tuples;
  tuples.reserve(db.events().size());
  for (const honeypot::AttackEvent& event : db.events()) {
    Tuple tuple;
    tuple.e = e.cluster_of_event(event.id);
    tuple.p = p.cluster_of_event(event.id);
    tuple.m = m.cluster_of_event(event.id);
    if (event.sample.has_value()) {
      tuple.b = b.cluster_of_sample(*event.sample);
    }
    tuples.push_back(tuple);
  }

  // Per-layer event counts (samples for B).
  std::unordered_map<int, std::size_t> e_count;
  std::unordered_map<int, std::size_t> p_count;
  std::unordered_map<int, std::size_t> m_count;
  std::unordered_map<int, std::size_t> b_count;
  for (const Tuple& tuple : tuples) {
    if (tuple.e >= 0) ++e_count[tuple.e];
    if (tuple.p >= 0) ++p_count[tuple.p];
    if (tuple.m >= 0) ++m_count[tuple.m];
    if (tuple.b >= 0) ++b_count[tuple.b];
  }

  RelationshipGraph graph;
  std::unordered_map<int, std::size_t> e_node;
  std::unordered_map<int, std::size_t> p_node;
  std::unordered_map<int, std::size_t> m_node;
  std::unordered_map<int, std::size_t> b_node;
  const auto add_layer = [&](RelationshipGraph::Layer layer,
                             const std::unordered_map<int, std::size_t>& counts,
                             std::unordered_map<int, std::size_t>& index) {
    // Deterministic order: ascending cluster id.
    std::vector<std::pair<int, std::size_t>> sorted{counts.begin(),
                                                    counts.end()};
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [cluster, count] : sorted) {
      if (count < min_events) continue;
      index[cluster] = graph.nodes.size();
      graph.nodes.push_back(RelationshipGraph::Node{
          layer, cluster,
          layer_prefix(layer) + std::to_string(cluster), count});
    }
  };
  add_layer(RelationshipGraph::Layer::kE, e_count, e_node);
  add_layer(RelationshipGraph::Layer::kP, p_count, p_node);
  add_layer(RelationshipGraph::Layer::kM, m_count, m_node);
  add_layer(RelationshipGraph::Layer::kB, b_count, b_node);

  for (const Tuple& tuple : tuples) {
    const auto link = [&](const std::unordered_map<int, std::size_t>& from,
                          int from_id,
                          const std::unordered_map<int, std::size_t>& to,
                          int to_id) {
      const auto from_it = from.find(from_id);
      const auto to_it = to.find(to_id);
      if (from_it == from.end() || to_it == to.end()) return;
      ++graph.edges[{from_it->second, to_it->second}];
    };
    if (tuple.e >= 0 && tuple.p >= 0) link(e_node, tuple.e, p_node, tuple.p);
    if (tuple.p >= 0 && tuple.m >= 0) link(p_node, tuple.p, m_node, tuple.m);
    if (tuple.m >= 0 && tuple.b >= 0) link(m_node, tuple.m, b_node, tuple.b);
  }
  return graph;
}

}  // namespace repro::analysis
