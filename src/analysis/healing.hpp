// Healing clustering anomalies by re-execution (Section 4.2).
//
// The paper notes that re-running misclassified samples is "indeed very
// effective in eliminating these anomalies", and that static clustering
// makes the procedure affordable by pinpointing the small set of
// suspect samples instead of re-running everything. heal_by_reexecution
// re-executes exactly the suspect set, replaces their profiles with the
// intersection of several runs (stripping execution-unique noise), and
// re-clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/bview.hpp"
#include "honeypot/database.hpp"
#include "malware/landscape.hpp"
#include "sandbox/environment.hpp"

namespace repro::analysis {

struct HealingReport {
  std::size_t suspects = 0;
  std::size_t reexecuted = 0;
  /// Of `reexecuted`: suspects that had no profile at all (sandbox
  /// faults) and gained their first one through the healing retry.
  std::size_t recovered_unenriched = 0;
  /// Suspects that cannot execute (truncated/corrupted/non-PE bytes);
  /// skipped, never retried.
  std::size_t unrunnable = 0;
  std::size_t b_clusters_before = 0;
  std::size_t b_clusters_after = 0;
  std::size_t singletons_before = 0;
  std::size_t singletons_after = 0;
};

/// Re-executes the suspect samples `reruns` times each and re-clusters
/// all profiles. Mutates the database profiles in place and returns the
/// before/after comparison together with the new view.
struct HealingOutcome {
  HealingReport report;
  BehavioralView after;
};

/// Samples with no behavioral profile whose bytes are intact and still
/// parse as PE — i.e. sandbox-fault victims that deserve a retry.
/// Truncated/corrupted downloads are excluded (they can never run).
[[nodiscard]] std::vector<honeypot::SampleId> unenriched_executable_samples(
    const honeypot::EventDatabase& db);

[[nodiscard]] HealingOutcome heal_by_reexecution(
    honeypot::EventDatabase& db, const malware::Landscape& landscape,
    const sandbox::Environment& environment,
    const std::vector<honeypot::SampleId>& suspects,
    const BehavioralView& before, int reruns = 3,
    const cluster::BehavioralOptions& options = {});

}  // namespace repro::analysis
