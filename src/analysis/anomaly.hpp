// Singleton B-cluster anomaly detection (Section 4.2 / Figure 4).
//
// Behavioral clustering can misclassify: profile noise pushes a sample
// below the similarity threshold and it lands in a size-1 B-cluster
// even though its codebase has a big, healthy B-cluster elsewhere. The
// paper's key observation is that the *static* M-cluster of such a
// sample exposes the problem: a singleton B-cluster whose M-cluster is
// large (and mostly mapped to another, larger B-cluster) is an anomaly;
// a singleton B-cluster in 1-1 correspondence with a tiny M-cluster is
// just a genuinely rare sample.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"

namespace repro::analysis {

struct SingletonReport {
  std::size_t b_cluster_count = 0;
  std::size_t singleton_b_clusters = 0;
  /// Singletons whose M-cluster contains no other analyzable sample —
  /// genuinely rare malware, not an anomaly.
  std::size_t one_to_one = 0;
  /// Singletons whose M-cluster is shared with samples in larger
  /// B-clusters — the misclassification anomaly.
  std::size_t anomalies = 0;
  std::vector<honeypot::SampleId> anomalous_samples;

  /// Figure 4 (top): AV names of the anomalous samples.
  std::map<std::string, std::size_t> av_names;
  /// Figure 4 (bottom): propagation strategy of the anomalous samples in
  /// (E-cluster, P-cluster) coordinates.
  std::map<std::pair<int, int>, std::size_t> ep_coordinates;
};

/// Scans all size-1 B-clusters and classifies each as 1-1 or anomalous.
[[nodiscard]] SingletonReport detect_singleton_anomalies(
    const honeypot::EventDatabase& db, const cluster::EpmResult& e,
    const cluster::EpmResult& p, const cluster::EpmResult& m,
    const BehavioralView& b);

}  // namespace repro::analysis
