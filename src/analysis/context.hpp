// Propagation context (Figure 5).
//
// For a B-cluster split across several M-clusters, computes per
// M-cluster: the infected population observed (distinct attackers), its
// spread over the IP space (/8 histogram, occupied blocks, entropy),
// the weeks of activity, and the weekly event timeline — the three
// panels of Figure 5. Also extracts the network-location hopping
// sequence the paper uses as evidence of coordinated, C&C-driven
// behavior.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"
#include "net/address_space.hpp"
#include "util/simtime.hpp"

namespace repro::analysis {

struct MClusterContext {
  int m_cluster = -1;
  std::size_t event_count = 0;
  std::size_t distinct_attackers = 0;
  net::Slash8Histogram ip_histogram;
  std::size_t occupied_slash8 = 0;
  double ip_entropy = 0.0;
  int weeks_active = 0;
  std::vector<std::size_t> weekly_events;  // index = week since origin
  /// Chronological (time, location) hits, deduplicated per day —
  /// the paper's "15/7-16/7 location A, 18/7 location B, ..." sequence.
  std::vector<std::pair<SimTime, int>> location_sequence;

  /// True if consecutive activity alternates between few locations
  /// while the population is concentrated — the bot-like signature.
  [[nodiscard]] std::size_t distinct_locations() const;
};

struct BClusterContext {
  int b_cluster = -1;
  std::size_t sample_count = 0;
  std::vector<MClusterContext> per_m_cluster;
};

/// Computes the context of one B-cluster, split by M-cluster.
[[nodiscard]] BClusterContext propagation_context(
    const honeypot::EventDatabase& db, const cluster::EpmResult& m,
    const BehavioralView& b, int b_cluster, SimTime origin, int weeks);

/// B-cluster ids ordered by how many distinct M-clusters they span
/// (descending), then by size — used to pick Figure 5's subjects.
[[nodiscard]] std::vector<int> most_split_b_clusters(
    const honeypot::EventDatabase& db, const cluster::EpmResult& m,
    const BehavioralView& b, std::size_t limit);

}  // namespace repro::analysis
