#include "report/reports.hpp"

#include <algorithm>

#include "util/histogram.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace repro::report {

namespace {

std::string paper_vs(const std::string& what, std::size_t measured,
                     const std::string& paper) {
  return what + ": measured " + std::to_string(measured) + " (paper: " +
         paper + ")\n";
}

}  // namespace

std::string big_picture(const honeypot::EventDatabase& db,
                        const honeypot::EnrichmentStats& stats,
                        const cluster::EpmResult& e,
                        const cluster::EpmResult& p,
                        const cluster::EpmResult& m,
                        const analysis::BehavioralView& b) {
  std::string out = "=== Section 4.1 — the big picture ===\n";
  out += "attack events observed: " + with_commas(db.events().size()) + "\n";
  out += paper_vs("malware samples collected", db.samples().size(), "6353");
  out += paper_vs("samples executed in sandbox", stats.executed, "5165");
  out += paper_vs("E-clusters", e.cluster_count(), "39");
  out += paper_vs("P-clusters", p.cluster_count(), "27");
  out += paper_vs("M-clusters", m.cluster_count(), "260");
  out += paper_vs("B-clusters", b.cluster_count(), "972");
  out += paper_vs("size-1 B-clusters", b.singleton_count(), "860");
  return out;
}

std::string table1(const cluster::EpmResult& e, const cluster::EpmResult& p,
                   const cluster::EpmResult& m) {
  // The paper's reference counts, row-aligned with our schemas.
  const std::vector<std::pair<const cluster::EpmResult*,
                              std::vector<std::string>>> dims = {
      {&e, {"50", "3"}},
      {&p, {"6", "22", "4", "5"}},
      {&m, {"57", "95", "7", "1", "8", "7", "1", "7", "43", "11", "15"}}};
  TextTable table{{"Dim.", "Feature", "# invariants", "paper"}};
  for (const auto& [result, paper] : dims) {
    for (std::size_t f = 0; f < result->schema.size(); ++f) {
      table.add_row({f == 0 ? cluster::dimension_name(result->schema.dimension) : "",
                     result->schema.names[f],
                     std::to_string(result->invariants.count(f)),
                     f < paper.size() ? paper[f] : "-"});
    }
  }
  return "=== Table 1 — selected features and invariants ===\n" +
         table.render();
}

std::string figure3(const analysis::RelationshipGraph& graph) {
  using Layer = analysis::RelationshipGraph::Layer;
  std::string out = "=== Figure 3 — EPM/B relationships (clusters with >=30 "
                    "events) ===\n";
  out += "E nodes: " + std::to_string(graph.layer_size(Layer::kE)) +
         ", P nodes: " + std::to_string(graph.layer_size(Layer::kP)) +
         ", M nodes: " + std::to_string(graph.layer_size(Layer::kM)) +
         ", B nodes: " + std::to_string(graph.layer_size(Layer::kB)) + "\n";
  out += "distinct E-P combinations: " +
         std::to_string(graph.ep_combination_count()) + "\n";
  out += "P-clusters shared by 2+ E-clusters: " +
         std::to_string(graph.shared_p_count()) + "\n";
  out += "B-clusters split across 2+ M-clusters: " +
         std::to_string(graph.split_b_count()) + "\n";
  out += "paper's observations to verify:\n";
  out += "  (1) few E/P combinations vs many M-clusters\n";
  out += "  (2) same P-cluster associated to multiple E-clusters\n";
  out += "  (3) fewer B-clusters than M-clusters\n";
  return out;
}

std::string figure4(const analysis::SingletonReport& report) {
  std::string out = "=== Figure 4 — size-1 B-cluster anomaly ===\n";
  out += paper_vs("size-1 B-clusters", report.singleton_b_clusters, "860");
  out += "  of which 1-1 with an M-cluster (genuinely rare): " +
         std::to_string(report.one_to_one) + "\n";
  out += "  of which misclassification anomalies: " +
         std::to_string(report.anomalies) + "\n";
  out += "-- AV names of anomalous samples (top 10; paper: dominated by "
         "Rahack/Allaple variants) --\n";
  BarChart av;
  for (const auto& [name, count] : report.av_names) {
    av.add(name, static_cast<double>(count));
  }
  av.sort_desc();
  av.truncate(10);
  out += av.render();
  out += "-- propagation strategy in (E,P) coordinates (top 5; paper: one "
         "dominant P-pattern, PUSH on tcp/9988) --\n";
  std::vector<std::pair<std::size_t, std::pair<int, int>>> coords;
  for (const auto& [ep, count] : report.ep_coordinates) {
    coords.push_back({count, ep});
  }
  std::sort(coords.rbegin(), coords.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(coords.size(), 5); ++i) {
    out += "  E" + std::to_string(coords[i].second.first) + " / P" +
           std::to_string(coords[i].second.second) + " : " +
           std::to_string(coords[i].first) + " samples\n";
  }
  return out;
}

std::string figure5(const analysis::BClusterContext& context) {
  std::string out = "=== Figure 5 — propagation context of B-cluster " +
                    std::to_string(context.b_cluster) + " (" +
                    std::to_string(context.sample_count) + " samples, " +
                    std::to_string(context.per_m_cluster.size()) +
                    " M-clusters) ===\n";
  TextTable table{{"M-cluster", "events", "attackers", "/8 blocks",
                   "IP entropy", "weeks active", "locations"}};
  for (const analysis::MClusterContext& mc : context.per_m_cluster) {
    table.add_row({"M" + std::to_string(mc.m_cluster),
                   std::to_string(mc.event_count),
                   std::to_string(mc.distinct_attackers),
                   std::to_string(mc.occupied_slash8),
                   fixed(mc.ip_entropy, 2), std::to_string(mc.weeks_active),
                   std::to_string(mc.distinct_locations())});
  }
  out += table.render();
  out += "-- weekly activity timelines (one row per M-cluster) --\n";
  for (const analysis::MClusterContext& mc : context.per_m_cluster) {
    std::vector<double> series;
    series.reserve(mc.weekly_events.size());
    for (const std::size_t count : mc.weekly_events) {
      series.push_back(static_cast<double>(count));
    }
    out += "  M" + std::to_string(mc.m_cluster) + " " + sparkline(series) +
           "\n";
  }
  return out;
}

std::string table2(const analysis::C2Report& report) {
  std::string out = "=== Table 2 — IRC servers associated to M-clusters ===\n";
  TextTable table{{"Server address", "Room name", "M-clusters"}};
  for (const analysis::IrcAssociation& row : report.associations) {
    std::vector<std::string> ids;
    ids.reserve(row.m_clusters.size());
    for (const int m : row.m_clusters) ids.push_back(std::to_string(m));
    table.add_row({row.server.to_string(), row.room, join(ids, ", ")});
  }
  out += table.render();
  out += "channels commanding 2+ M-clusters (same botnet, patched builds): " +
         std::to_string(report.multi_cluster_rows()) + "\n";
  out += "/24 networks hosting 2+ C&C servers: " +
         std::to_string(report.colocated_groups()) + "\n";
  std::size_t reused_rooms = 0;
  for (const auto& [room, servers] : report.room_reuse) {
    reused_rooms += servers >= 2 ? 1 : 0;
  }
  out += "room names recurring on 2+ servers: " +
         std::to_string(reused_rooms) + "\n";
  return out;
}

std::string healing(const analysis::HealingReport& report) {
  std::string out = "=== Section 4.2 — healing by re-execution ===\n";
  out += "suspect samples: " + std::to_string(report.suspects) +
         ", re-executed: " + std::to_string(report.reexecuted) + "\n";
  if (report.recovered_unenriched > 0 || report.unrunnable > 0) {
    out += "  recovered from sandbox faults: " +
           std::to_string(report.recovered_unenriched) +
           ", unrunnable (skipped): " + std::to_string(report.unrunnable) +
           "\n";
  }
  out += "B-clusters: " + std::to_string(report.b_clusters_before) + " -> " +
         std::to_string(report.b_clusters_after) + "\n";
  out += "size-1 B-clusters: " + std::to_string(report.singletons_before) +
         " -> " + std::to_string(report.singletons_after) + "\n";
  return out;
}

std::string degradation(const fault::FaultReport& faults,
                        const honeypot::EventDatabase& db,
                        const honeypot::EnrichmentStats& stats) {
  if (!faults.any()) return {};
  std::string out = faults.summary();
  const honeypot::EventDatabase::PresenceSummary presence =
      db.presence_summary();
  out += "-- dataset completeness per dimension --\n";
  const auto fraction = [&](std::size_t have) {
    return std::to_string(have) + "/" + std::to_string(presence.events);
  };
  out += "  epsilon: " + fraction(presence.events) + " (" +
         std::to_string(presence.unknown_paths) + " unknown paths, " +
         std::to_string(presence.refinement_failures) +
         " refinement failures)\n";
  out += "  gamma:   " + fraction(presence.with_gamma) + "\n";
  out += "  pi:      " + fraction(presence.with_pi) + "\n";
  out += "  mu:      " + fraction(presence.with_sample) + " (" +
         std::to_string(presence.refused_downloads) + " downloads refused)\n";
  out += "  samples: " + std::to_string(db.samples().size()) + " collected, " +
         std::to_string(presence.truncated_samples) + " truncated, " +
         std::to_string(presence.corrupted_samples) + " corrupted, " +
         std::to_string(presence.unlabeled_samples) + " unlabeled; " +
         std::to_string(stats.executed) + " enriched, " +
         std::to_string(stats.sandbox_faults) + " sandbox faults\n";
  return out;
}

}  // namespace repro::report
