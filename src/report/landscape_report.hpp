// The analyst-facing threat-landscape report.
//
// The paper's conclusion is that combining the perspectives builds
// "rich, structured knowledge that helps the security analyst obtain a
// better understanding of the economy of the different threats". This
// emitter produces that artifact: one dossier per major threat
// (B-cluster), synthesizing every perspective — behavior class, static
// variant spread, propagation vector, population character, C&C
// coordinates, activity timeline.
#pragma once

#include <string>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "honeypot/database.hpp"
#include "util/simtime.hpp"

namespace repro::report {

struct LandscapeReportOptions {
  /// Dossiers for the `top` largest multi-sample B-clusters.
  std::size_t top = 5;
  SimTime origin{};
  int weeks = 0;
};

[[nodiscard]] std::string landscape_report(
    const honeypot::EventDatabase& db, const cluster::EpmResult& e,
    const cluster::EpmResult& p, const cluster::EpmResult& m,
    const analysis::BehavioralView& b, const LandscapeReportOptions& options);

}  // namespace repro::report
