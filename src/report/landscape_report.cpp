#include "report/landscape_report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/c2.hpp"
#include "analysis/context.hpp"
#include "util/strings.hpp"

namespace repro::report {

namespace {

/// Coarse behavior class inferred from profile features alone.
std::string behavior_class(const sandbox::BehavioralProfile& profile) {
  bool irc = false;
  bool dns = false;
  bool dos = false;
  bool scan = false;
  for (const std::string& feature : profile.features()) {
    irc |= feature.rfind("irc|join|", 0) == 0;
    dns |= feature.rfind("dns|", 0) == 0;
    dos |= feature.rfind("dos|", 0) == 0;
    scan |= feature.rfind("network|scan|", 0) == 0;
  }
  if (irc && !dns) return "IRC bot (C&C-driven)";
  if (dns) return "downloader / dropper (distribution site)";
  if (dos && scan) return "self-propagating worm with DoS payload";
  if (scan) return "self-propagating worm";
  return "trojan (no network propagation behavior)";
}

/// The most frequent AV label among a set of samples.
std::string dominant_label(const honeypot::EventDatabase& db,
                           const std::vector<honeypot::SampleId>& samples) {
  std::map<std::string, std::size_t> counts;
  for (const auto id : samples) ++counts[db.sample(id).av_label];
  std::string best = "(unknown)";
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::string landscape_report(const honeypot::EventDatabase& db,
                             const cluster::EpmResult& e,
                             const cluster::EpmResult& p,
                             const cluster::EpmResult& m,
                             const analysis::BehavioralView& b,
                             const LandscapeReportOptions& options) {
  std::string out = "# Threat landscape report\n\n";
  out += "dataset: " + with_commas(db.events().size()) + " attacks, " +
         with_commas(db.samples().size()) + " samples, " +
         std::to_string(b.cluster_count()) + " behavior classes\n\n";

  // Rank B-clusters by sample count, multi-sample only.
  std::vector<std::pair<std::size_t, int>> ranked;
  for (std::size_t c = 0; c < b.cluster_count(); ++c) {
    const auto members = b.samples_of_cluster(static_cast<int>(c));
    if (members.size() >= 2) ranked.push_back({members.size(), static_cast<int>(c)});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (ranked.size() > options.top) ranked.resize(options.top);

  const analysis::C2Report c2 = analysis::correlate_irc(db, m, b);

  int rank = 1;
  for (const auto& [sample_count, b_cluster] : ranked) {
    const auto samples = b.samples_of_cluster(b_cluster);
    const auto context = analysis::propagation_context(
        db, m, b, b_cluster, options.origin, options.weeks);

    out += "## Threat " + std::to_string(rank++) + " — B" +
           std::to_string(b_cluster) + " (" + std::to_string(sample_count) +
           " samples, " + std::to_string(context.per_m_cluster.size()) +
           " static variants)\n";

    // Behavior, from the first member's profile.
    const auto& first_sample = db.sample(samples.front());
    if (first_sample.profile.has_value()) {
      out += "- behavior: " + behavior_class(*first_sample.profile) + "\n";
    }
    out += "- dominant AV label: " + dominant_label(db, samples) + "\n";

    // Propagation vector: dominant (E, P) pair over the threat's events.
    std::map<std::pair<int, int>, std::size_t> vectors;
    std::size_t events = 0;
    const std::set<honeypot::SampleId> sample_set{samples.begin(),
                                                  samples.end()};
    for (const auto& event : db.events()) {
      if (!event.sample.has_value() || !sample_set.count(*event.sample)) {
        continue;
      }
      ++events;
      ++vectors[{e.cluster_of_event(event.id), p.cluster_of_event(event.id)}];
    }
    if (!vectors.empty()) {
      const auto dominant = std::max_element(
          vectors.begin(), vectors.end(),
          [](const auto& a, const auto& bb) { return a.second < bb.second; });
      out += "- propagation: E" + std::to_string(dominant->first.first) +
             "/P" + std::to_string(dominant->first.second) + " covers " +
             std::to_string(dominant->second * 100 / std::max<std::size_t>(
                                                         1, events)) +
             "% of " + std::to_string(events) + " attacks";
      const int p_cluster = dominant->first.second;
      if (p_cluster >= 0) {
        const auto& fields =
            p.patterns[static_cast<std::size_t>(p_cluster)].fields();
        out += " (" + fields[0].value_or("*") + " / port " +
               fields[2].value_or("*") + " / " + fields[3].value_or("*") +
               ")";
      }
      out += "\n";
    }

    // Population character from the lead M-cluster.
    if (!context.per_m_cluster.empty()) {
      const auto& lead = context.per_m_cluster.front();
      out += "- population: " +
             std::string(lead.ip_entropy > 0.5
                             ? "widespread over the IP space ("
                             : "concentrated in specific networks (") +
             std::to_string(lead.occupied_slash8) + " /8 blocks, " +
             std::to_string(lead.distinct_attackers) +
             " attackers in the lead variant), active " +
             std::to_string(lead.weeks_active) + " weeks\n";
    }

    // C&C coordinates, when the threat's M-clusters appear in Table 2.
    std::set<int> threat_m;
    for (const auto& mc : context.per_m_cluster) threat_m.insert(mc.m_cluster);
    std::vector<std::string> channels;
    for (const auto& row : c2.associations) {
      for (const int m_cluster : row.m_clusters) {
        if (threat_m.count(m_cluster)) {
          channels.push_back(row.server.to_string() + " " + row.room);
          break;
        }
      }
    }
    if (!channels.empty()) {
      out += "- C&C: " + join(channels, ", ") + "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace repro::report
