// Paper-style report emitters.
//
// One function per paper artifact: each renders the same rows/series
// the paper reports, from the corresponding analysis result. The bench
// binaries print these next to the paper's reference values.
#pragma once

#include <string>

#include "analysis/anomaly.hpp"
#include "analysis/bview.hpp"
#include "analysis/c2.hpp"
#include "analysis/context.hpp"
#include "analysis/graph.hpp"
#include "analysis/healing.hpp"
#include "cluster/epm.hpp"
#include "fault/injector.hpp"
#include "honeypot/database.hpp"
#include "honeypot/enrichment.hpp"

namespace repro::report {

/// Section 4.1 headline counts (samples, analyzable samples, cluster
/// counts per perspective), with the paper's reference values.
[[nodiscard]] std::string big_picture(const honeypot::EventDatabase& db,
                                      const honeypot::EnrichmentStats& stats,
                                      const cluster::EpmResult& e,
                                      const cluster::EpmResult& p,
                                      const cluster::EpmResult& m,
                                      const analysis::BehavioralView& b);

/// Table 1: features and number of invariants per dimension.
[[nodiscard]] std::string table1(const cluster::EpmResult& e,
                                 const cluster::EpmResult& p,
                                 const cluster::EpmResult& m);

/// Figure 3: the E-P-M-B relationship graph summary and its three
/// stated observations.
[[nodiscard]] std::string figure3(const analysis::RelationshipGraph& graph);

/// Figure 4: AV-name histogram and E/P coordinates of the singleton
/// anomalies.
[[nodiscard]] std::string figure4(const analysis::SingletonReport& report);

/// Figure 5: per-M-cluster propagation context of one B-cluster
/// (population, IP spread, weeks of activity, weekly timeline).
[[nodiscard]] std::string figure5(const analysis::BClusterContext& context);

/// Table 2: IRC server/room to M-cluster associations plus the
/// co-location and room-reuse signals.
[[nodiscard]] std::string table2(const analysis::C2Report& report);

/// Section 4.2 healing experiment summary.
[[nodiscard]] std::string healing(const analysis::HealingReport& report);

/// Degradation summary under fault injection: per-stage fault counters
/// plus how partial the resulting dataset is per dimension. Returns an
/// empty string when no fault ever fired (so benches can print it
/// unconditionally).
[[nodiscard]] std::string degradation(const fault::FaultReport& faults,
                                      const honeypot::EventDatabase& db,
                                      const honeypot::EnrichmentStats& stats);

}  // namespace repro::report
