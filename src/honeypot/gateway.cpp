#include "honeypot/gateway.hpp"

namespace repro::honeypot {

proto::IncrementalFsm& Gateway::model_for(std::uint16_t port) {
  const auto it = models_.find(port);
  if (it != models_.end()) return it->second;
  return models_.emplace(port, proto::IncrementalFsm{port, options_})
      .first->second;
}

Gateway::Outcome Gateway::handle(
    const proto::Conversation& raw,
    const proto::PayloadLocation& payload_location) {
  proto::IncrementalFsm& model = model_for(raw.dst_port);
  if (const auto path = model.match(raw)) {
    ++matched_count_;
    return Outcome{*path, false};
  }
  // Proxy to the sample factory: the taint oracle isolates the payload
  // and the stripped dialog refines the model. The channel may fail;
  // after the bounded retry/backoff budget the refinement is abandoned
  // and the model learns nothing from this conversation.
  ++proxied_count_;
  bool refined = true;
  if (injector_ != nullptr) {
    refined = injector_->try_proxy(proxied_count_).refined;
  }
  if (refined) {
    model.train(proto::strip_payload(raw, payload_location));
  } else {
    ++refinement_failures_;
  }
  return Outcome{"unknown/p" + std::to_string(raw.dst_port) + "/" +
                     std::to_string(proxied_count_),
                 true, refined};
}

std::size_t Gateway::mature_transitions() const noexcept {
  std::size_t count = 0;
  for (const auto& [port, model] : models_) {
    count += model.mature_transition_count();
  }
  return count;
}

}  // namespace repro::honeypot
