#include "honeypot/database.hpp"

#include "util/error.hpp"
#include "util/md5.hpp"

namespace repro::honeypot {

EventId EventDatabase::add_event(AttackEvent event) {
  event.id = static_cast<EventId>(events_.size());
  const EventId id = event.id;
  events_.push_back(std::move(event));
  return id;
}

SampleId EventDatabase::add_sample(std::vector<std::uint8_t> content,
                                   SimTime seen, bool truncated,
                                   malware::VariantId truth_variant) {
  const std::string md5 = Md5::hex_digest(content);
  const auto it = md5_index_.find(md5);
  if (it != md5_index_.end()) {
    MalwareSample& existing = samples_[it->second];
    ++existing.event_count;
    if (seen < existing.first_seen) existing.first_seen = seen;
    return it->second;
  }
  MalwareSample sample;
  sample.id = static_cast<SampleId>(samples_.size());
  sample.md5 = md5;
  sample.content = std::move(content);
  sample.first_seen = seen;
  sample.truncated = truncated;
  sample.event_count = 1;
  sample.truth_variant = truth_variant;
  md5_index_.emplace(md5, sample.id);
  samples_.push_back(std::move(sample));
  return samples_.back().id;
}

const MalwareSample& EventDatabase::sample(SampleId id) const {
  if (id >= samples_.size()) {
    throw ConfigError("EventDatabase::sample: unknown id " +
                      std::to_string(id));
  }
  return samples_[id];
}

MalwareSample& EventDatabase::sample_mutable(SampleId id) {
  if (id >= samples_.size()) {
    throw ConfigError("EventDatabase::sample_mutable: unknown id " +
                      std::to_string(id));
  }
  return samples_[id];
}

std::optional<SampleId> EventDatabase::find_by_md5(
    const std::string& md5) const {
  const auto it = md5_index_.find(md5);
  if (it == md5_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<EventId> EventDatabase::events_of_sample(SampleId id) const {
  std::vector<EventId> out;
  for (const AttackEvent& event : events_) {
    if (event.sample.has_value() && *event.sample == id) {
      out.push_back(event.id);
    }
  }
  return out;
}

EventDatabase::PresenceSummary EventDatabase::presence_summary()
    const noexcept {
  PresenceSummary summary;
  summary.events = events_.size();
  for (const AttackEvent& event : events_) {
    const DimensionPresence presence = event.presence();
    summary.with_gamma += presence.gamma ? 1 : 0;
    summary.with_pi += presence.pi ? 1 : 0;
    summary.with_sample += presence.mu ? 1 : 0;
    summary.unknown_paths +=
        event.epsilon.fsm_path.rfind("unknown/", 0) == 0 ? 1 : 0;
    summary.refused_downloads += event.download_refused ? 1 : 0;
    summary.refinement_failures += event.refinement_failed ? 1 : 0;
  }
  for (const MalwareSample& sample : samples_) {
    summary.truncated_samples += sample.truncated ? 1 : 0;
    summary.corrupted_samples += sample.corrupted ? 1 : 0;
    summary.unlabeled_samples += sample.label_missing ? 1 : 0;
  }
  return summary;
}

void EventDatabase::check_consistency() const {
  std::vector<std::size_t> referenced(samples_.size(), 0);
  for (const AttackEvent& event : events_) {
    if (!event.sample.has_value()) continue;
    if (*event.sample >= samples_.size()) {
      throw ConfigError("EventDatabase: event " + std::to_string(event.id) +
                        " references unknown sample " +
                        std::to_string(*event.sample));
    }
    ++referenced[*event.sample];
  }
  for (const MalwareSample& sample : samples_) {
    if (sample.event_count != referenced[sample.id]) {
      throw ConfigError(
          "EventDatabase: sample " + std::to_string(sample.id) +
          " event_count " + std::to_string(sample.event_count) +
          " != referencing events " + std::to_string(referenced[sample.id]));
    }
    const auto it = md5_index_.find(sample.md5);
    if (it == md5_index_.end() || it->second != sample.id) {
      throw ConfigError("EventDatabase: sample " + std::to_string(sample.id) +
                        " missing from the MD5 index");
    }
  }
  if (md5_index_.size() != samples_.size()) {
    throw ConfigError("EventDatabase: MD5 index size " +
                      std::to_string(md5_index_.size()) + " != sample count " +
                      std::to_string(samples_.size()));
  }
}

std::size_t EventDatabase::analyzable_sample_count() const noexcept {
  std::size_t count = 0;
  for (const MalwareSample& sample : samples_) {
    count += sample.profile.has_value() ? 1 : 0;
  }
  return count;
}

}  // namespace repro::honeypot
