#include "honeypot/enrichment.hpp"

#include "honeypot/avlabels.hpp"
#include "pe/parser.hpp"
#include "sandbox/anubis.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::honeypot {

EnrichmentStats enrich_database(EventDatabase& db,
                                const malware::Landscape& landscape,
                                const sandbox::Environment& environment,
                                fault::FaultInjector* faults) {
  EnrichmentStats stats;
  const sandbox::Sandbox sandbox{environment};
  for (MalwareSample& sample : db.samples_mutable()) {
    ++stats.submitted;
    const malware::MalwareVariant& variant =
        landscape.variant(sample.truth_variant);

    // AV labeling; an injected labeler gap leaves the label explicitly
    // missing rather than inventing one.
    sample.label_missing =
        faults != nullptr && faults->av_label_gap(fnv1a64(sample.md5));
    if (sample.label_missing) {
      ++stats.label_gaps;
      sample.av_label.clear();
    } else {
      sample.av_label =
          assign_av_label(variant, sample.md5, !sample.intact());
    }

    // Dynamic analysis needs a complete, parseable executable. A
    // bit-corrupted or otherwise undecodable image throws ParseError,
    // which is recovered here and counted — never propagated.
    bool executable = sample.intact() && pe::looks_like_pe(sample.content);
    if (executable) {
      try {
        (void)pe::parse_pe(sample.content);
      } catch (const ParseError&) {
        executable = false;
        ++stats.parse_failures;
      }
    }
    if (!executable) {
      ++stats.failed;
      continue;
    }
    // Injected sandbox timeout/crash: the sample stays unenriched; the
    // healing path (analysis::heal_by_reexecution) retries it.
    if (faults != nullptr && faults->sandbox_fails(fnv1a64(sample.md5))) {
      ++stats.sandbox_faults;
      continue;
    }
    sample.profile = sandbox.run(variant.behavior, sample.first_seen,
                                 fnv1a64(sample.md5));
    ++stats.executed;
  }
  return stats;
}

}  // namespace repro::honeypot
