#include "honeypot/enrichment.hpp"

#include <vector>

#include "honeypot/avlabels.hpp"
#include "pe/parser.hpp"
#include "sandbox/anubis.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace repro::honeypot {

namespace {

/// One sample's enrichment, accumulating into `stats`. Pure per sample:
/// every decision keys on the sample's own MD5 (no shared RNG stream),
/// so samples can be processed in any order — or concurrently — with
/// identical results.
void enrich_sample(MalwareSample& sample, const malware::Landscape& landscape,
                   const sandbox::Sandbox& sandbox,
                   fault::FaultInjector* faults, EnrichmentStats& stats) {
  ++stats.submitted;
  const malware::MalwareVariant& variant =
      landscape.variant(sample.truth_variant);

  // AV labeling; an injected labeler gap leaves the label explicitly
  // missing rather than inventing one.
  sample.label_missing =
      faults != nullptr && faults->av_label_gap(fnv1a64(sample.md5));
  if (sample.label_missing) {
    ++stats.label_gaps;
    sample.av_label.clear();
  } else {
    sample.av_label = assign_av_label(variant, sample.md5, !sample.intact());
  }

  // Dynamic analysis needs a complete, parseable executable. A
  // bit-corrupted or otherwise undecodable image throws ParseError,
  // which is recovered here and counted — never propagated.
  bool executable = sample.intact() && pe::looks_like_pe(sample.content);
  if (executable) {
    try {
      (void)pe::parse_pe(sample.content);
    } catch (const ParseError&) {
      executable = false;
      ++stats.parse_failures;
    }
  }
  if (!executable) {
    ++stats.failed;
    return;
  }
  // Injected sandbox timeout/crash: the sample stays unenriched; the
  // healing path (analysis::heal_by_reexecution) retries it.
  if (faults != nullptr && faults->sandbox_fails(fnv1a64(sample.md5))) {
    ++stats.sandbox_faults;
    return;
  }
  sample.profile = sandbox.run(variant.behavior, sample.first_seen,
                               fnv1a64(sample.md5));
  ++stats.executed;
}

EnrichmentStats merge(const std::vector<EnrichmentStats>& chunks) {
  EnrichmentStats total;
  for (const EnrichmentStats& chunk : chunks) {
    total.submitted += chunk.submitted;
    total.executed += chunk.executed;
    total.failed += chunk.failed;
    total.parse_failures += chunk.parse_failures;
    total.sandbox_faults += chunk.sandbox_faults;
    total.label_gaps += chunk.label_gaps;
  }
  return total;
}

}  // namespace

EnrichmentStats enrich_database(EventDatabase& db,
                                const malware::Landscape& landscape,
                                const sandbox::Environment& environment,
                                fault::FaultInjector* faults,
                                ThreadPool* pool,
                                std::size_t first_sample) {
  const sandbox::Sandbox sandbox{environment};
  std::vector<MalwareSample>& samples = db.samples_mutable();
  if (first_sample >= samples.size()) return EnrichmentStats{};
  if (pool == nullptr || pool->width() == 1) {
    EnrichmentStats stats;
    for (std::size_t i = first_sample; i < samples.size(); ++i) {
      enrich_sample(samples[i], landscape, sandbox, faults, stats);
    }
    return stats;
  }
  // Parallel path: chunks own disjoint sample ranges (in-place writes
  // never alias) and accumulate private counter blocks, merged in
  // chunk order. The injector's decisions are pure hashes of the
  // sample MD5; only its report counters are shared, and those are
  // internally locked.
  constexpr std::size_t kChunk = 64;
  const std::vector<EnrichmentStats> chunks =
      pool->map_chunks<EnrichmentStats>(
          samples.size() - first_sample, kChunk,
          [&](std::size_t begin, std::size_t end) {
            EnrichmentStats stats;
            for (std::size_t i = begin; i < end; ++i) {
              enrich_sample(samples[first_sample + i], landscape, sandbox,
                            faults, stats);
            }
            return stats;
          });
  return merge(chunks);
}

}  // namespace repro::honeypot
