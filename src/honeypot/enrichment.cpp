#include "honeypot/enrichment.hpp"

#include "honeypot/avlabels.hpp"
#include "pe/parser.hpp"
#include "sandbox/anubis.hpp"
#include "util/rng.hpp"

namespace repro::honeypot {

EnrichmentStats enrich_database(EventDatabase& db,
                                const malware::Landscape& landscape,
                                const sandbox::Environment& environment) {
  EnrichmentStats stats;
  const sandbox::Sandbox sandbox{environment};
  for (MalwareSample& sample : db.samples_mutable()) {
    ++stats.submitted;
    const malware::MalwareVariant& variant =
        landscape.variant(sample.truth_variant);
    sample.av_label = assign_av_label(variant, sample.md5, sample.truncated);
    const bool executable =
        !sample.truncated && pe::looks_like_pe(sample.content);
    if (!executable) {
      ++stats.failed;
      continue;
    }
    sample.profile = sandbox.run(variant.behavior, sample.first_seen,
                                 fnv1a64(sample.md5));
    ++stats.executed;
  }
  return stats;
}

}  // namespace repro::honeypot
