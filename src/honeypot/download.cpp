#include "honeypot/download.hpp"

#include <algorithm>

namespace repro::honeypot {

DownloadResult emulate_download(std::vector<std::uint8_t> binary,
                                const DownloadOptions& options, Rng& rng) {
  DownloadResult result;
  // A binary no larger than the minimum kept prefix cannot be cut
  // short: truncation would either keep every byte (a full transfer
  // mislabeled `truncated`) or keep more bytes than exist.
  if (binary.size() > options.min_kept_bytes &&
      rng.chance(options.truncation_probability)) {
    const std::size_t keep =
        options.min_kept_bytes + rng.index(binary.size() - options.min_kept_bytes);
    binary.resize(keep);
    result.truncated = true;
  }
  result.content = std::move(binary);
  return result;
}

}  // namespace repro::honeypot
