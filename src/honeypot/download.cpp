#include "honeypot/download.hpp"

#include <algorithm>

namespace repro::honeypot {

DownloadResult emulate_download(std::vector<std::uint8_t> binary,
                                const DownloadOptions& options, Rng& rng) {
  DownloadResult result;
  if (!binary.empty() && rng.chance(options.truncation_probability)) {
    const std::size_t min_keep =
        std::min(options.min_kept_bytes, binary.size() - 1);
    const std::size_t keep =
        min_keep + rng.index(binary.size() - min_keep);
    binary.resize(std::max<std::size_t>(keep, 1));
    result.truncated = true;
  }
  result.content = std::move(binary);
  return result;
}

}  // namespace repro::honeypot
