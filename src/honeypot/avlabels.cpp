#include "honeypot/avlabels.hpp"

#include "util/rng.hpp"

namespace repro::honeypot {

std::string assign_av_label(const malware::MalwareVariant& variant,
                            const std::string& md5, bool truncated) {
  if (truncated) return "(corrupted)";
  Rng rng{mix64(fnv1a64(md5) ^ 0xa11a'be1e'd000'0000ULL)};
  const double draw = rng.real();
  if (draw < 0.85) return variant.av_name;
  if (draw < 0.93) return "W32.Packed.Gen";
  if (draw < 0.97) return "Trojan Horse";
  return "Suspicious.MH690";
}

}  // namespace repro::honeypot
