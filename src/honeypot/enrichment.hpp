// Information enrichment pipeline.
//
// Mirrors [18]: every collected sample is submitted to the dynamic
// analysis sandbox (Anubis substitute) and to the AV labeler
// (VirusTotal substitute), and the results are stored back into the
// dataset. Truncated samples cannot execute — this is what produces the
// paper's 6353-collected vs 5165-analyzable gap.
#pragma once

#include <cstdint>

#include "honeypot/database.hpp"
#include "malware/landscape.hpp"
#include "sandbox/environment.hpp"

namespace repro::honeypot {

struct EnrichmentStats {
  std::size_t submitted = 0;
  std::size_t executed = 0;
  std::size_t failed = 0;  // truncated / not a valid executable
};

/// Enriches every sample in place. The behavior executed for a sample
/// is its ground-truth variant's spec — the honest stand-in for running
/// the real binary; the *environment at first-seen time* decides what
/// the profile records.
EnrichmentStats enrich_database(EventDatabase& db,
                                const malware::Landscape& landscape,
                                const sandbox::Environment& environment);

}  // namespace repro::honeypot
