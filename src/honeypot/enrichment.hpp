// Information enrichment pipeline.
//
// Mirrors [18]: every collected sample is submitted to the dynamic
// analysis sandbox (Anubis substitute) and to the AV labeler
// (VirusTotal substitute), and the results are stored back into the
// dataset. Truncated samples cannot execute — this is what produces the
// paper's 6353-collected vs 5165-analyzable gap. Under fault injection
// the pipeline degrades gracefully: corrupted images and undecodable
// bytes are counted as failed instead of propagating ParseError,
// sandbox crashes leave the sample unenriched (the healing path retries
// it), and labeler gaps leave an explicitly missing label.
#pragma once

#include <cstdint>

#include "fault/injector.hpp"
#include "honeypot/database.hpp"
#include "malware/landscape.hpp"
#include "sandbox/environment.hpp"

namespace repro {
class ThreadPool;
}  // namespace repro

namespace repro::honeypot {

struct EnrichmentStats {
  std::size_t submitted = 0;
  std::size_t executed = 0;
  std::size_t failed = 0;  // truncated / corrupted / not a valid executable
  /// Of `failed`: images that look like PE but no longer parse.
  std::size_t parse_failures = 0;
  /// Sandbox timeouts/crashes (injected): executable but unenriched.
  std::size_t sandbox_faults = 0;
  /// Samples the AV labeler returned nothing for (injected).
  std::size_t label_gaps = 0;
};

/// Enriches every sample in place. The behavior executed for a sample
/// is its ground-truth variant's spec — the honest stand-in for running
/// the real binary; the *environment at first-seen time* decides what
/// the profile records. `faults` (optional) injects sandbox failures
/// and AV-label gaps; submitted == executed + failed + sandbox_faults
/// always holds. `pool` (optional) fans per-sample work out over the
/// pool; every sample's enrichment is a pure function of the sample
/// itself, so the result is identical at any width. `first_sample`
/// skips samples below that id — the streaming epoch loop enriches
/// only each epoch's delta, and per-sample purity makes the delta
/// result identical to re-enriching everything.
EnrichmentStats enrich_database(EventDatabase& db,
                                const malware::Landscape& landscape,
                                const sandbox::Environment& environment,
                                fault::FaultInjector* faults = nullptr,
                                ThreadPool* pool = nullptr,
                                std::size_t first_sample = 0);

}  // namespace repro::honeypot
