// Simulated AV labeling (VirusTotal substitute).
//
// Figure 4 of the paper histograms the AV detection names of the
// misclassified singleton samples. We reproduce the mechanism with a
// deterministic labeler that mostly reports the variant's ground-truth
// detection name but exhibits the inconsistencies real AV labels are
// known for ([3,7]): occasional generic names and packed-heuristic
// names.
#pragma once

#include <string>

#include "malware/family.hpp"

namespace repro::honeypot {

/// Label for one sample; deterministic in (variant, md5).
[[nodiscard]] std::string assign_av_label(const malware::MalwareVariant& variant,
                                          const std::string& md5,
                                          bool truncated);

}  // namespace repro::honeypot
