#include "honeypot/deployment.hpp"

#include <algorithm>

#include "malware/binary.hpp"
#include "malware/population.hpp"
#include "malware/schedule.hpp"
#include "shellcode/analyzer.hpp"
#include "shellcode/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::honeypot {

namespace {

/// One attack scheduled for a given instant, before pipeline processing.
struct PendingAttack {
  SimTime time{};
  malware::VariantId variant = 0;
  net::Ipv4 attacker;
  std::size_t honeypot_index = 0;

  friend bool operator<(const PendingAttack& a, const PendingAttack& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.variant != b.variant) return a.variant < b.variant;
    return a.attacker < b.attacker;
  }
};

}  // namespace

Deployment::Deployment(const malware::Landscape& landscape,
                       DeploymentConfig config)
    : landscape_(&landscape), config_(config), gateway_(config.fsm) {
  landscape.validate();
  gateway_.set_fault_injector(config_.faults);
  if (config_.location_count <= 0 || config_.honeypots_per_location <= 0) {
    throw ConfigError("Deployment: location/honeypot counts must be positive");
  }
  // Place each network location in a distinct /24 and assign consecutive
  // addresses to its honeypots.
  Rng rng{mix64(config_.seed ^ 0x5e45'0000'0000'0001ULL)};
  const net::WidespreadSampler sampler;
  for (int location = 0; location < config_.location_count; ++location) {
    const net::Ipv4 base = sampler.sample(rng);
    const net::Subnet block{base, 24};
    for (int h = 0; h < config_.honeypots_per_location; ++h) {
      honeypots_.push_back(
          net::Ipv4{block.network().value() + 10 +
                    static_cast<std::uint32_t>(h)});
    }
  }
}

EventDatabase Deployment::run() {
  EventDatabase db;
  Rng driver_rng{mix64(config_.seed ^ 0xdeb1'0000'0000'0000ULL)};

  // Realize every variant's infected population once, deterministically.
  std::vector<std::vector<net::Ipv4>> populations;
  populations.reserve(landscape_->variants.size());
  for (const malware::MalwareVariant& variant : landscape_->variants) {
    Rng population_rng{mix64(variant.seed ^ 0x9090'9090'9090'9090ULL)};
    populations.push_back(
        malware::realize_population(variant.population, population_rng));
  }

  std::uint64_t nonce = 0;
  for (int week = 0; week < landscape_->weeks; ++week) {
    // Schedule this week's attacks across all variants, then process
    // them in chronological order (the gateway's model maturity depends
    // on it).
    std::vector<PendingAttack> pending;
    const SimTime week_start = add_weeks(landscape_->start_time, week);
    for (const malware::MalwareVariant& variant : landscape_->variants) {
      const auto& population = populations[variant.id];
      if (population.empty()) continue;
      const malware::WeeklyActivity activity = malware::weekly_activity(
          variant.schedule, week, config_.location_count);
      if (activity.expected_events <= 0.0) continue;
      Rng week_rng{mix64(variant.seed ^ mix64(config_.seed) ^
                         mix64(0x3eed'0000ULL + static_cast<std::uint64_t>(
                                                    week + 7'000'000)))};
      const std::uint64_t count =
          week_rng.poisson(activity.expected_events);
      for (std::uint64_t i = 0; i < count; ++i) {
        PendingAttack attack;
        attack.time = add_seconds(
            week_start,
            static_cast<std::int64_t>(week_rng.uniform(0, kSecondsPerWeek - 1)));
        attack.variant = variant.id;
        attack.attacker = week_rng.pick(population);
        const int location =
            activity.target_locations.empty()
                ? static_cast<int>(week_rng.index(
                      static_cast<std::size_t>(config_.location_count)))
                : week_rng.pick(activity.target_locations);
        attack.honeypot_index =
            static_cast<std::size_t>(location) *
                static_cast<std::size_t>(config_.honeypots_per_location) +
            week_rng.index(
                static_cast<std::size_t>(config_.honeypots_per_location));
        pending.push_back(attack);
      }
    }
    std::sort(pending.begin(), pending.end());

    for (const PendingAttack& attack : pending) {
      // Sensor outage: the honeypot records nothing — no event, no FSM
      // learning, no sample. Skipped before any shared RNG draw so an
      // empty fault plan leaves the stream untouched.
      if (config_.faults != nullptr &&
          config_.faults->sensor_down(location_of(attack.honeypot_index),
                                      week)) {
        continue;
      }
      const malware::MalwareVariant& variant =
          landscape_->variants[attack.variant];
      const malware::PayloadSpec& payload_spec =
          landscape_->payloads[variant.payload_index];
      const proto::ExploitTemplate& exploit =
          landscape_->exploits[variant.exploit_index];
      const net::Ipv4 honeypot = honeypots_[attack.honeypot_index];

      // 1. The attacker builds and sends the exploit + payload.
      const shellcode::DownloadIntent intent =
          malware::realize_intent(payload_spec, attack.attacker, driver_rng);
      const std::vector<std::uint8_t> payload = shellcode::build_shellcode(
          intent, payload_spec.encoder, driver_rng);
      const proto::Conversation conversation = proto::synthesize_attack(
          exploit, payload, attack.attacker, honeypot, driver_rng);

      // 2. Sensor/gateway: FSM match or proxy + refine.
      const Gateway::Outcome outcome =
          gateway_.handle(conversation, proto::payload_location(exploit));

      AttackEvent event;
      event.time = attack.time;
      event.attacker = attack.attacker;
      event.honeypot = honeypot;
      event.location = location_of(attack.honeypot_index);
      event.epsilon =
          EpsilonObservation{outcome.fsm_path, conversation.dst_port};
      event.refinement_failed = outcome.proxied && !outcome.refined;
      event.truth_variant = variant.id;

      // Gamma extension: when the conversation went through the sample
      // factory, the taint oracle sees the hijack — parse the control
      // data out of the tainted region (bytes, not ground truth).
      if (outcome.proxied) {
        const proto::PayloadLocation location =
            proto::payload_location(exploit);
        const proto::Bytes& carrier =
            conversation.messages[location.message_index].bytes;
        if (location.byte_offset < carrier.size()) {
          const proto::Bytes tainted{
              carrier.begin() + static_cast<long>(location.byte_offset),
              carrier.end()};
          event.gamma = proto::observe_gamma(tainted);
        }
      }

      // 3. Shellcode extraction and analysis (Nepenthes substitute):
      // scan the client byte stream for a known decoder structure.
      std::vector<std::uint8_t> client_stream;
      for (const proto::Bytes* message : conversation.client_messages()) {
        client_stream.insert(client_stream.end(), message->begin(),
                             message->end());
      }
      const auto analyzed = shellcode::analyze_shellcode(client_stream);
      if (analyzed.has_value()) {
        PiObservation pi;
        pi.protocol = shellcode::protocol_name(analyzed->protocol);
        pi.filename = analyzed->filename;
        pi.port = analyzed->port;
        pi.interaction = shellcode::interaction_name(
            shellcode::classify_interaction(*analyzed, attack.attacker));
        event.pi = pi;

        // 4. Download emulation: fetch the malware binary. Injected
        // faults extend the truncation model: a refused connection
        // collects nothing, bit corruption damages the stored image.
        const fault::DownloadFault download_fault =
            config_.faults != nullptr ? config_.faults->download_fault(nonce)
                                      : fault::DownloadFault::kNone;
        if (download_fault == fault::DownloadFault::kRefused) {
          event.download_refused = true;
        } else {
          DownloadResult download = emulate_download(
              malware::realize_binary(variant, attack.attacker, nonce),
              config_.download, driver_rng);
          if (download_fault == fault::DownloadFault::kCorrupted) {
            config_.faults->corrupt(download.content, nonce);
          }
          event.sample = db.add_sample(std::move(download.content),
                                       attack.time, download.truncated,
                                       variant.id);
          if (download_fault == fault::DownloadFault::kCorrupted) {
            db.sample_mutable(*event.sample).corrupted = true;
          }
        }
      }
      ++nonce;
      db.add_event(std::move(event));
    }
  }
  return db;
}

}  // namespace repro::honeypot
