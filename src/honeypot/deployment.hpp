// The distributed deployment driver.
//
// Simulates the SGNET deployment of the paper: 150 honeypot IPs spread
// over 30 network locations, observing the landscape's infected
// populations from January 2008 to May 2009. Every attack runs through
// the full pipeline — exploit dialog synthesis, FSM matching or
// sample-factory proxying, shellcode extraction and analysis, download
// emulation — and lands in the event database exactly as the sensors
// would record it.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "honeypot/database.hpp"
#include "honeypot/download.hpp"
#include "honeypot/gateway.hpp"
#include "malware/landscape.hpp"
#include "net/ipv4.hpp"

namespace repro::honeypot {

struct DeploymentConfig {
  /// 30 network locations x 5 addresses = the paper's 150 monitored IPs.
  int location_count = 30;
  int honeypots_per_location = 5;
  std::uint64_t seed = 1;
  DownloadOptions download;
  proto::IncrementalFsm::Options fsm;
  /// Optional fault injection: sensor outages, proxy-channel failures
  /// and extended download faults fire per its plan. The injector's
  /// decisions never consume the deployment's own RNG streams, so a
  /// nullptr injector and an injector with an empty plan produce
  /// bit-identical datasets. Not owned; must outlive the deployment.
  fault::FaultInjector* faults = nullptr;
};

class Deployment {
 public:
  Deployment(const malware::Landscape& landscape, DeploymentConfig config);

  /// Runs the whole observation window and returns the dataset.
  [[nodiscard]] EventDatabase run();

  [[nodiscard]] const std::vector<net::Ipv4>& honeypots() const noexcept {
    return honeypots_;
  }
  [[nodiscard]] int location_of(std::size_t honeypot_index) const noexcept {
    return static_cast<int>(honeypot_index) /
           config_.honeypots_per_location;
  }
  [[nodiscard]] const Gateway& gateway() const noexcept { return gateway_; }
  [[nodiscard]] const malware::Landscape& landscape() const noexcept {
    return *landscape_;
  }

 private:
  const malware::Landscape* landscape_;
  DeploymentConfig config_;
  Gateway gateway_;
  std::vector<net::Ipv4> honeypots_;
};

}  // namespace repro::honeypot
