// The SGNET dataset: events plus the deduplicated sample store.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "honeypot/event.hpp"

namespace repro::honeypot {

class EventDatabase {
 public:
  /// Stores one event, assigning its id. Returns the id.
  EventId add_event(AttackEvent event);

  /// Stores a collected binary, deduplicating by MD5. Returns the
  /// sample id and bumps its event count; first_seen keeps the earliest
  /// time.
  SampleId add_sample(std::vector<std::uint8_t> content, SimTime seen,
                      bool truncated, malware::VariantId truth_variant);

  [[nodiscard]] const std::vector<AttackEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<MalwareSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const MalwareSample& sample(SampleId id) const;
  [[nodiscard]] MalwareSample& sample_mutable(SampleId id);
  /// Mutable view for the enrichment pipeline.
  [[nodiscard]] std::vector<MalwareSample>& samples_mutable() noexcept {
    return samples_;
  }

  [[nodiscard]] std::optional<SampleId> find_by_md5(
      const std::string& md5) const;

  /// Events referencing the given sample.
  [[nodiscard]] std::vector<EventId> events_of_sample(SampleId id) const;

  /// Samples with a behavioral profile (executed successfully).
  [[nodiscard]] std::size_t analyzable_sample_count() const noexcept;

 private:
  std::vector<AttackEvent> events_;
  std::vector<MalwareSample> samples_;
  std::unordered_map<std::string, SampleId> md5_index_;
};

}  // namespace repro::honeypot
