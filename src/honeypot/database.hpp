// The SGNET dataset: events plus the deduplicated sample store.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "honeypot/event.hpp"

namespace repro::snapshot {
struct EventDatabaseAccess;
}  // namespace repro::snapshot

namespace repro::honeypot {

class EventDatabase {
 public:
  /// Stores one event, assigning its id. Returns the id.
  EventId add_event(AttackEvent event);

  /// Stores a collected binary, deduplicating by MD5. Returns the
  /// sample id and bumps its event count; first_seen keeps the earliest
  /// time.
  SampleId add_sample(std::vector<std::uint8_t> content, SimTime seen,
                      bool truncated, malware::VariantId truth_variant);

  [[nodiscard]] const std::vector<AttackEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<MalwareSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] const MalwareSample& sample(SampleId id) const;
  [[nodiscard]] MalwareSample& sample_mutable(SampleId id);
  /// Mutable view for the enrichment pipeline.
  [[nodiscard]] std::vector<MalwareSample>& samples_mutable() noexcept {
    return samples_;
  }

  [[nodiscard]] std::optional<SampleId> find_by_md5(
      const std::string& md5) const;

  /// Events referencing the given sample.
  [[nodiscard]] std::vector<EventId> events_of_sample(SampleId id) const;

  /// Samples with a behavioral profile (executed successfully).
  [[nodiscard]] std::size_t analyzable_sample_count() const noexcept;

  /// How partial the dataset is, per dimension — the degradation view
  /// consumers use to skip-and-count instead of assuming completeness.
  struct PresenceSummary {
    std::size_t events = 0;
    std::size_t with_gamma = 0;
    std::size_t with_pi = 0;
    std::size_t with_sample = 0;
    std::size_t unknown_paths = 0;       // epsilon left unrefined/proxied
    std::size_t refused_downloads = 0;   // pi present, transfer refused
    std::size_t refinement_failures = 0; // proxy channel gave up
    std::size_t truncated_samples = 0;
    std::size_t corrupted_samples = 0;
    std::size_t unlabeled_samples = 0;
  };
  [[nodiscard]] PresenceSummary presence_summary() const noexcept;

  /// Cross-reference integrity: every event's sample id resolves, every
  /// sample's event_count matches the events referencing it, and the
  /// MD5 index is a bijection onto the sample store. Throws ConfigError
  /// with a description of the first violation.
  void check_consistency() const;

 private:
  /// Snapshot codec: restores the tables and rebuilds the MD5 index.
  friend struct repro::snapshot::EventDatabaseAccess;

  std::vector<AttackEvent> events_;
  std::vector<MalwareSample> samples_;
  std::unordered_map<std::string, SampleId> md5_index_;
};

}  // namespace repro::honeypot
