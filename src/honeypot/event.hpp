// The EGPM attack-event schema.
//
// SGNET structures every observed code-injection attack along the
// epsilon-gamma-pi-mu model: the exploit dialog (epsilon), the control
// flow hijack (gamma, not observed host-side in SGNET and therefore not
// modeled), the injected payload (pi) and the uploaded malware binary
// (mu). An AttackEvent records what the deployment observed for one
// attack; a MalwareSample is one distinct collected binary enriched
// with sandbox and AV metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "malware/family.hpp"
#include "net/ipv4.hpp"
#include "proto/gamma.hpp"
#include "sandbox/profile.hpp"
#include "util/simtime.hpp"

namespace repro::honeypot {

using EventId = std::uint64_t;
using SampleId = std::uint32_t;

/// Epsilon: what the sensor saw of the exploit dialog.
struct EpsilonObservation {
  /// FSM path identifier, or an event-unique "unknown/..." marker when
  /// the dialog could not be matched by a mature model (early
  /// observations of a new activity, proxied to the sample factory).
  std::string fsm_path;
  std::uint16_t dst_port = 0;
};

/// Pi: what the Nepenthes-style analyzer recovered from the shellcode.
struct PiObservation {
  std::string protocol;     // ftp/http/tftp/creceive/csend/blink
  std::string filename;     // empty when the protocol carries none
  std::uint16_t port = 0;   // server port involved in the interaction
  std::string interaction;  // PUSH/PULL/central flavour
};

/// Which dimensions of one event were actually observed. Faults and
/// analyzer limits make records explicitly partial; downstream
/// consumers skip-and-count missing dimensions instead of assuming
/// completeness.
struct DimensionPresence {
  bool epsilon = true;  // always recorded (possibly an unknown path)
  bool gamma = false;
  bool pi = false;
  bool mu = false;
};

/// One observed code-injection attack.
struct AttackEvent {
  EventId id = 0;
  SimTime time{};
  net::Ipv4 attacker;
  net::Ipv4 honeypot;
  /// Index of the network location (0..29) hosting the honeypot.
  int location = 0;

  EpsilonObservation epsilon;
  /// Present only for proxied events: the sample factory's taint oracle
  /// observed the control-flow hijack (the gamma extension; sensors
  /// handling matured activity autonomously have no host-side view).
  std::optional<proto::GammaObservation> gamma;
  /// Present when shellcode analysis succeeded.
  std::optional<PiObservation> pi;
  /// Present when a binary was collected (possibly truncated).
  std::optional<SampleId> sample;
  /// True when the analyzer recovered a download intent but the
  /// transfer was refused (injected connection failure): pi present,
  /// mu absent for a reason other than analyzer failure.
  bool download_refused = false;
  /// True when the conversation was proxied but the sample-factory
  /// channel failed every retry: the event keeps its unknown-path
  /// marker and the FSM was left unrefined.
  bool refinement_failed = false;

  /// Ground truth, for validation metrics only — never an input to
  /// clustering.
  malware::VariantId truth_variant = 0;

  [[nodiscard]] DimensionPresence presence() const noexcept {
    return DimensionPresence{true, gamma.has_value(), pi.has_value(),
                             sample.has_value()};
  }
};

/// One distinct collected binary (deduplicated by MD5) plus enrichment.
struct MalwareSample {
  SampleId id = 0;
  std::string md5;
  std::vector<std::uint8_t> content;
  SimTime first_seen{};
  /// True when the Nepenthes-style download was cut short and the
  /// binary is incomplete — such samples cannot run in the sandbox.
  bool truncated = false;
  /// True when the transfer arrived bit-corrupted (injected download
  /// fault): the image no longer parses and cannot run either.
  bool corrupted = false;
  std::size_t event_count = 0;

  /// Enrichment results (information-enrichment pipeline of [18]).
  std::optional<sandbox::BehavioralProfile> profile;  // Anubis substitute
  std::string av_label;  // VirusTotal substitute; empty = labeler gap
  /// True when the AV labeler returned nothing for this sample.
  bool label_missing = false;

  /// A sample can execute in the sandbox only when its bytes form a
  /// complete, undamaged image.
  [[nodiscard]] bool intact() const noexcept {
    return !truncated && !corrupted;
  }

  /// Ground truth, for validation only.
  malware::VariantId truth_variant = 0;
};

}  // namespace repro::honeypot
