// Gateway + sample factory: the Figure-1 control plane.
//
// Sensors forward every conversation here. The gateway first tries the
// mature FSM knowledge for the port; on success the sensor "handles the
// activity autonomously" and the FSM path id is recorded. Otherwise the
// conversation is proxied to a sample factory whose Argos-style taint
// oracle pinpoints the injected payload; the payload-stripped dialog
// then refines the FSM knowledge (ScriptGen), and the event is recorded
// with an unknown-path marker.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fault/injector.hpp"
#include "proto/incremental.hpp"
#include "proto/services.hpp"

namespace repro::honeypot {

class Gateway {
 public:
  explicit Gateway(proto::IncrementalFsm::Options options = {})
      : options_(options) {}

  /// Installs a fault injector; the proxy channel to the sample factory
  /// then fails per the plan (with bounded retry/backoff) and abandoned
  /// deliveries leave the FSM unrefined. nullptr disables injection.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Result of handling one conversation.
  struct Outcome {
    /// FSM path id (matched) or "unknown/p<port>/<serial>" (proxied).
    std::string fsm_path;
    bool proxied = false;
    /// For proxied conversations: whether the sample factory received
    /// the dialog and refined the FSM. false = every delivery attempt
    /// failed; the event keeps its unknown-path marker and the model
    /// learned nothing.
    bool refined = true;
  };

  /// `raw` is the conversation as seen on the wire; `payload_location`
  /// is what the taint oracle reports when the conversation is proxied
  /// (ground truth stands in for Argos memory tainting).
  Outcome handle(const proto::Conversation& raw,
                 const proto::PayloadLocation& payload_location);

  [[nodiscard]] std::size_t proxied_count() const noexcept {
    return proxied_count_;
  }
  [[nodiscard]] std::size_t matched_count() const noexcept {
    return matched_count_;
  }
  /// Proxied conversations that never reached the sample factory.
  [[nodiscard]] std::size_t refinement_failures() const noexcept {
    return refinement_failures_;
  }
  /// Mature transitions across all per-port models.
  [[nodiscard]] std::size_t mature_transitions() const noexcept;

 private:
  proto::IncrementalFsm& model_for(std::uint16_t port);

  proto::IncrementalFsm::Options options_;
  std::map<std::uint16_t, proto::IncrementalFsm> models_;
  fault::FaultInjector* injector_ = nullptr;
  std::size_t proxied_count_ = 0;
  std::size_t matched_count_ = 0;
  std::size_t refinement_failures_ = 0;
};

}  // namespace repro::honeypot
