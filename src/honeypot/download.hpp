// Download emulation and the Nepenthes failure model.
//
// Once the shellcode's intent is known, SGNET's Nepenthes modules
// emulate the network action and fetch the binary. The paper notes that
// "due to failures in Nepenthes download modules, some of the collected
// samples are truncated or corrupted" and consequently cannot be
// analyzed dynamically (6353 collected vs 5165 executable). The
// truncation model reproduces that: with a configurable probability the
// transfer stops early and only a prefix of the binary is stored.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace repro::honeypot {

struct DownloadResult {
  std::vector<std::uint8_t> content;
  bool truncated = false;
};

struct DownloadOptions {
  /// Probability that a transfer fails mid-way.
  double truncation_probability = 0.18;
  /// A truncated transfer keeps at least this many bytes; binaries no
  /// larger than this are never truncated (a cut below the minimum is
  /// impossible, a cut at full size is not a truncation).
  std::size_t min_kept_bytes = 256;
};

/// Emulates fetching `binary`; may truncate it per the failure model.
[[nodiscard]] DownloadResult emulate_download(
    std::vector<std::uint8_t> binary, const DownloadOptions& options,
    Rng& rng);

}  // namespace repro::honeypot
