#include "shellcode/builder.hpp"

#include "proto/message.hpp"

namespace repro::shellcode {

namespace {

/// Decoder stub signature the analyzer scans for; loosely modeled on the
/// byte patterns real XOR decoder loops leave in memory.
constexpr std::uint8_t kStubSignature[4] = {0xd9, 0xc0, 0xd9, 0x74};

/// Alphanumeric decoder stub marker ("PYIIII"-style getpc sequences in
/// real alphanumeric shellcode).
constexpr char kAlnumSignature[] = "PYIIII";

}  // namespace

std::vector<std::uint8_t> encode_body(const DownloadIntent& intent) {
  std::string body = "NEPO ";
  switch (intent.protocol) {
    case Protocol::kBind:
      body += "BIND " + std::to_string(intent.port);
      break;
    case Protocol::kCsend:
      body += "CSEND " + std::to_string(intent.port);
      break;
    case Protocol::kConnectBack:
      body += "CBCK " + (intent.host ? intent.host->to_string() : "0.0.0.0") +
              ":" + std::to_string(intent.port);
      break;
    case Protocol::kFtp:
    case Protocol::kHttp: {
      const std::string scheme =
          intent.protocol == Protocol::kFtp ? "ftp" : "http";
      body += "URL " + scheme + "://" +
              (intent.host ? intent.host->to_string() : "0.0.0.0") + ":" +
              std::to_string(intent.port) + "/" + intent.filename;
      break;
    }
    case Protocol::kTftp:
      body += "TFTP " + (intent.host ? intent.host->to_string() : "0.0.0.0") +
              ":" + std::to_string(intent.port) + " GET " + intent.filename;
      break;
  }
  body += " END";
  return proto::to_bytes(body);
}

std::vector<std::uint8_t> build_shellcode(const DownloadIntent& intent,
                                          const EncoderOptions& options,
                                          Rng& rng) {
  std::vector<std::uint8_t> out;

  // Junk sled: random bytes that differ per instance. Avoid the stub
  // signature's first byte so the analyzer cannot be confused by sled
  // content.
  const std::size_t sled =
      options.min_sled +
      rng.index(options.max_sled - options.min_sled + 1);
  for (std::size_t i = 0; i < sled; ++i) {
    std::uint8_t junk = static_cast<std::uint8_t>(rng.uniform(0x01, 0xff));
    if (junk == kStubSignature[0]) junk = 0x90;
    out.push_back(junk);
  }

  const std::vector<std::uint8_t> body = encode_body(intent);
  switch (options.kind) {
    case EncoderKind::kClear:
      out.insert(out.end(), body.begin(), body.end());
      return out;
    case EncoderKind::kXor: {
      const std::uint8_t key =
          options.random_key ? static_cast<std::uint8_t>(rng.uniform(1, 255))
                             : options.fixed_key;
      out.insert(out.end(), std::begin(kStubSignature),
                 std::end(kStubSignature));
      out.push_back(key);
      out.push_back(static_cast<std::uint8_t>(body.size() & 0xff));
      out.push_back(static_cast<std::uint8_t>(body.size() >> 8));
      for (const std::uint8_t byte : body) {
        out.push_back(static_cast<std::uint8_t>(byte ^ key));
      }
      return out;
    }
    case EncoderKind::kAlphanumeric: {
      // Marker, then each body byte as two letters: 'A'+hi-nibble,
      // 'a'+lo-nibble; terminated by '!' (not part of the alphabet).
      for (const char c : std::string_view{kAlnumSignature}) {
        out.push_back(static_cast<std::uint8_t>(c));
      }
      for (const std::uint8_t byte : body) {
        out.push_back(static_cast<std::uint8_t>('A' + (byte >> 4)));
        out.push_back(static_cast<std::uint8_t>('a' + (byte & 0x0f)));
      }
      out.push_back('!');
      return out;
    }
  }
  return out;
}

}  // namespace repro::shellcode
