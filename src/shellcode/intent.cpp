#include "shellcode/intent.hpp"

namespace repro::shellcode {

std::string protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kFtp: return "ftp";
    case Protocol::kHttp: return "http";
    case Protocol::kTftp: return "tftp";
    case Protocol::kBind: return "creceive";
    case Protocol::kCsend: return "csend";
    case Protocol::kConnectBack: return "blink";
  }
  return "unknown";
}

std::string interaction_name(InteractionType type) {
  switch (type) {
    case InteractionType::kPushBind: return "PUSH/bind";
    case InteractionType::kPushCsend: return "PUSH/csend";
    case InteractionType::kPullConnectBack: return "PULL/connect-back";
    case InteractionType::kPullUrl: return "PULL/url";
    case InteractionType::kCentralUrl: return "central/url";
  }
  return "unknown";
}

InteractionType classify_interaction(const DownloadIntent& intent,
                                     net::Ipv4 attacker) {
  switch (intent.protocol) {
    case Protocol::kBind: return InteractionType::kPushBind;
    case Protocol::kCsend: return InteractionType::kPushCsend;
    case Protocol::kConnectBack: return InteractionType::kPullConnectBack;
    case Protocol::kFtp:
    case Protocol::kHttp:
    case Protocol::kTftp:
      if (intent.host.has_value() && *intent.host != attacker) {
        return InteractionType::kCentralUrl;
      }
      return InteractionType::kPullUrl;
  }
  return InteractionType::kPullUrl;
}

}  // namespace repro::shellcode
