// Nepenthes-style shellcode analyzer.
//
// Given raw payload bytes extracted by the sample factory, the analyzer
// reconstructs the download intent without any ground-truth knowledge:
// it locates the XOR decoder stub (or a cleartext body), decodes the
// body, and parses the download command — mirroring how the Nepenthes
// shellcode modules pattern-match decoder loops and emulate the network
// action of real shellcode.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "shellcode/intent.hpp"

namespace repro::shellcode {

/// Analysis result; nullopt when no known shellcode structure is found
/// (SGNET would then fail to emulate the injection and collect nothing).
[[nodiscard]] std::optional<DownloadIntent> analyze_shellcode(
    std::span<const std::uint8_t> payload);

}  // namespace repro::shellcode
