// Shellcode builder.
//
// Produces the injected payload bytes (pi) for an attack instance: a
// sled of junk bytes, an XOR decoder stub, and an encoded body whose
// opcodes describe the download action. The builder is the ground-truth
// side; the analyzer (analyzer.hpp) must recover the intent from the
// bytes alone, as Nepenthes does from real shellcode.
#pragma once

#include <cstdint>
#include <vector>

#include "shellcode/intent.hpp"
#include "util/rng.hpp"

namespace repro::shellcode {

/// Encoding scheme applied to the shellcode body.
enum class EncoderKind : std::uint8_t {
  /// Body embedded in clear (no decoder stub).
  kClear,
  /// Single-byte XOR with a decoder stub, the classic scheme.
  kXor,
  /// Alphanumeric nibble encoding: each body byte becomes two letters,
  /// as used by exploits whose payload must survive text-safe channels.
  kAlphanumeric,
};

/// Knobs controlling how a payload realization varies across instances.
struct EncoderOptions {
  EncoderKind kind = EncoderKind::kXor;
  /// Fresh XOR key per instance (common in the wild); a fixed key makes
  /// the encoded body an invariant too. Ignored by other encoders.
  bool random_key = true;
  std::uint8_t fixed_key = 0x5a;
  /// Random-junk sled length range prepended before the decoder stub.
  std::size_t min_sled = 4;
  std::size_t max_sled = 24;
};

/// Serializes the intent into the body command understood by the
/// decoder/analyzer pair, e.g. "NEPO URL http://1.2.3.4:80/ssms.exe".
[[nodiscard]] std::vector<std::uint8_t> encode_body(
    const DownloadIntent& intent);

/// Builds one concrete shellcode instance carrying the intent.
[[nodiscard]] std::vector<std::uint8_t> build_shellcode(
    const DownloadIntent& intent, const EncoderOptions& options, Rng& rng);

}  // namespace repro::shellcode
