#include "shellcode/analyzer.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace repro::shellcode {

namespace {

constexpr std::uint8_t kStubSignature[4] = {0xd9, 0xc0, 0xd9, 0x74};

/// Parses "host:port" into an intent's host/port fields; returns false
/// on malformed input.
bool parse_host_port(const std::string& text, DownloadIntent& intent) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  try {
    intent.host = net::Ipv4::parse(text.substr(0, colon));
    intent.port = parse_u16(text.substr(colon + 1), "port");
  } catch (const ParseError&) {
    return false;
  }
  return true;
}

/// Parses a bare decimal port; returns false on garbage or overflow
/// (e.g. "99999", which std::stoi used to truncate into uint16_t).
bool parse_port(const std::string& text, DownloadIntent& intent) {
  try {
    intent.port = parse_u16(text, "port");
  } catch (const ParseError&) {
    return false;
  }
  return true;
}

std::optional<DownloadIntent> parse_body(const std::string& body) {
  // Expected shape: "NEPO <CMD> <args...> END"
  const std::vector<std::string> tokens = split(body, ' ');
  if (tokens.size() < 3 || tokens.front() != "NEPO" || tokens.back() != "END") {
    return std::nullopt;
  }
  DownloadIntent intent;
  const std::string& command = tokens[1];
  if (command == "BIND" && tokens.size() == 4) {
    intent.protocol = Protocol::kBind;
    if (!parse_port(tokens[2], intent)) return std::nullopt;
    return intent;
  }
  if (command == "CSEND" && tokens.size() == 4) {
    intent.protocol = Protocol::kCsend;
    if (!parse_port(tokens[2], intent)) return std::nullopt;
    return intent;
  }
  if (command == "CBCK" && tokens.size() == 4) {
    intent.protocol = Protocol::kConnectBack;
    if (!parse_host_port(tokens[2], intent)) return std::nullopt;
    return intent;
  }
  if (command == "URL" && tokens.size() == 4) {
    const std::string& url = tokens[2];
    const std::size_t scheme_end = url.find("://");
    if (scheme_end == std::string::npos) return std::nullopt;
    const std::string scheme = url.substr(0, scheme_end);
    if (scheme == "ftp") {
      intent.protocol = Protocol::kFtp;
    } else if (scheme == "http") {
      intent.protocol = Protocol::kHttp;
    } else {
      return std::nullopt;
    }
    const std::string rest = url.substr(scheme_end + 3);
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos) return std::nullopt;
    if (!parse_host_port(rest.substr(0, slash), intent)) return std::nullopt;
    intent.filename = rest.substr(slash + 1);
    return intent;
  }
  if (command == "TFTP" && tokens.size() == 6 && tokens[3] == "GET") {
    intent.protocol = Protocol::kTftp;
    if (!parse_host_port(tokens[2], intent)) return std::nullopt;
    intent.filename = tokens[4];
    return intent;
  }
  return std::nullopt;
}

}  // namespace

std::optional<DownloadIntent> analyze_shellcode(
    std::span<const std::uint8_t> payload) {
  // 1) Cleartext body anywhere in the payload.
  static constexpr char kClearMarker[] = "NEPO ";
  const auto clear_it =
      std::search(payload.begin(), payload.end(), std::begin(kClearMarker),
                  std::end(kClearMarker) - 1);
  if (clear_it != payload.end()) {
    const std::string body{clear_it, payload.end()};
    const std::size_t end = body.find(" END");
    if (end != std::string::npos) {
      if (auto intent = parse_body(body.substr(0, end + 4))) return intent;
    }
  }

  // 2) Alphanumeric decoder: marker, then byte-per-letter-pair body
  // terminated by '!'.
  static constexpr char kAlnumSignature[] = "PYIIII";
  const auto alnum_it =
      std::search(payload.begin(), payload.end(), std::begin(kAlnumSignature),
                  std::end(kAlnumSignature) - 1);
  if (alnum_it != payload.end()) {
    std::string body;
    std::size_t i =
        static_cast<std::size_t>(alnum_it - payload.begin()) +
        sizeof(kAlnumSignature) - 1;
    bool terminated = false;
    while (i < payload.size()) {
      const std::uint8_t hi = payload[i];
      if (hi == '!') {
        terminated = true;
        break;
      }
      if (i + 1 >= payload.size()) break;
      const std::uint8_t lo = payload[i + 1];
      if (hi < 'A' || hi > 'P' || lo < 'a' || lo > 'p') break;
      body.push_back(static_cast<char>(((hi - 'A') << 4) | (lo - 'a')));
      i += 2;
    }
    if (terminated) {
      if (auto intent = parse_body(body)) return intent;
    }
  }

  // 3) XOR decoder stub: signature, key, little-endian body length,
  // encoded body.
  const auto stub_it =
      std::search(payload.begin(), payload.end(), std::begin(kStubSignature),
                  std::end(kStubSignature));
  if (stub_it == payload.end()) return std::nullopt;
  const std::size_t stub_offset =
      static_cast<std::size_t>(stub_it - payload.begin());
  if (stub_offset + 7 > payload.size()) return std::nullopt;
  const std::uint8_t key = payload[stub_offset + 4];
  const std::size_t body_length =
      payload[stub_offset + 5] |
      static_cast<std::size_t>(payload[stub_offset + 6]) << 8;
  const std::size_t body_offset = stub_offset + 7;
  if (body_offset + body_length > payload.size()) return std::nullopt;

  std::string body;
  body.reserve(body_length);
  for (std::size_t i = 0; i < body_length; ++i) {
    body.push_back(static_cast<char>(payload[body_offset + i] ^ key));
  }
  return parse_body(body);
}

}  // namespace repro::shellcode
