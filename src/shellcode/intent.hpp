// Download intent — the pi-dimension ground truth and analysis result.
//
// A shellcode's purpose, once decoded, is to move the malware binary to
// the victim. The paper's pi features (Table 1) are exactly the fields
// of this intent: download protocol, filename, server port, and the
// PUSH / PULL / central-repository interaction type.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ipv4.hpp"

namespace repro::shellcode {

/// Transport the victim uses to obtain the binary. The six values below
/// are the protocol vocabulary of the Nepenthes download modules the
/// paper relies on (URL fetches plus Nepenthes-specific channels).
enum class Protocol : std::uint8_t {
  kFtp,       // ftp:// URL fetch
  kHttp,      // http:// URL fetch
  kTftp,      // trivial FTP fetch
  kBind,      // victim listens, attacker connects and pushes ("creceive")
  kCsend,     // attacker pushes over the exploited connection itself
  kConnectBack,  // victim connects back to the attacker ("blink"-style)
};

[[nodiscard]] std::string protocol_name(Protocol protocol);

/// Who serves the binary.
enum class HostRole : std::uint8_t {
  kAttacker,   // the attacking host itself
  kThirdParty  // a central repository distinct from the attacker
};

/// Decoded shellcode intent, as reconstructed by the analyzer.
struct DownloadIntent {
  Protocol protocol = Protocol::kBind;
  /// Filename requested in the protocol interaction; empty when the
  /// protocol has no filename (bind/csend pushes).
  std::string filename;
  /// Server port involved in the protocol interaction.
  std::uint16_t port = 0;
  /// Host serving the binary for URL/tftp/connect-back protocols;
  /// nullopt for bind/csend (the exploited connection or a listener on
  /// the victim is used instead).
  std::optional<net::Ipv4> host;

  friend bool operator==(const DownloadIntent&, const DownloadIntent&) =
      default;
};

/// Interaction types as the paper names them. The five values reflect
/// how Nepenthes distinguishes the channels: two PUSH flavours, two PULL
/// flavours and the central-repository case.
enum class InteractionType : std::uint8_t {
  kPushBind,     // PUSH: attacker connects to a fresh listener on victim
  kPushCsend,    // PUSH: attacker reuses the exploited connection
  kPullConnectBack,  // PULL: victim connects back to a port on attacker
  kPullUrl,      // PULL: victim fetches a URL hosted on the attacker
  kCentralUrl,   // central repository: URL hosted on a third party
};

[[nodiscard]] std::string interaction_name(InteractionType type);

/// Classifies the interaction: bind/csend are PUSH-flavoured; URL-style
/// protocols are PULL from the attacker or central-repository fetches
/// depending on whether the serving host is the attacker itself.
[[nodiscard]] InteractionType classify_interaction(const DownloadIntent& intent,
                                                   net::Ipv4 attacker);

}  // namespace repro::shellcode
