#include "net/ipv4.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace repro::net {

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Ipv4 Ipv4::parse(std::string_view text) {
  const std::vector<std::string> octets = split(text, '.');
  if (octets.size() != 4) {
    throw ParseError("Ipv4::parse: malformed address '" + std::string{text} +
                     "'");
  }
  try {
    return Ipv4{parse_u8(octets[0], "octet"), parse_u8(octets[1], "octet"),
                parse_u8(octets[2], "octet"), parse_u8(octets[3], "octet")};
  } catch (const ParseError&) {
    throw ParseError("Ipv4::parse: malformed address '" + std::string{text} +
                     "'");
  }
}

}  // namespace repro::net
