#include "net/ipv4.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace repro::net {

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Ipv4 Ipv4::parse(std::string_view text) {
  unsigned a = 0;
  unsigned b = 0;
  unsigned c = 0;
  unsigned d = 0;
  char tail = 0;
  const std::string owned{text};
  const int matched =
      std::sscanf(owned.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw ParseError("Ipv4::parse: malformed address '" + owned + "'");
  }
  return Ipv4{static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d)};
}

}  // namespace repro::net
