#include "net/address_space.hpp"

#include <cmath>

#include "util/error.hpp"

namespace repro::net {

bool WidespreadSampler::routable_slash8(std::uint8_t first_octet) noexcept {
  if (first_octet == 0 || first_octet == 10 || first_octet == 127) return false;
  if (first_octet >= 224) return false;  // multicast + reserved
  return true;
}

Ipv4 WidespreadSampler::sample(Rng& rng) const noexcept {
  while (true) {
    const Ipv4 candidate{static_cast<std::uint32_t>(rng.next())};
    if (!routable_slash8(candidate.slash8())) continue;
    // Skip RFC1918 172.16/12 and 192.168/16 as well.
    if (candidate.octet(0) == 172 && candidate.octet(1) >= 16 &&
        candidate.octet(1) < 32) {
      continue;
    }
    if (candidate.octet(0) == 192 && candidate.octet(1) == 168) continue;
    return candidate;
  }
}

ConcentratedSampler::ConcentratedSampler(std::vector<Subnet> subnets,
                                         std::vector<double> weights)
    : subnets_(std::move(subnets)), weights_(std::move(weights)) {
  if (subnets_.empty()) {
    throw ConfigError("ConcentratedSampler: needs at least one subnet");
  }
  if (weights_.empty()) {
    weights_.assign(subnets_.size(), 1.0);
  }
  if (weights_.size() != subnets_.size()) {
    throw ConfigError("ConcentratedSampler: weights/subnets size mismatch");
  }
}

Ipv4 ConcentratedSampler::sample(Rng& rng) const noexcept {
  const std::size_t choice = rng.weighted(weights_);
  return subnets_[choice].random_address(rng);
}

std::uint64_t Slash8Histogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_) sum += c;
  return sum;
}

std::size_t Slash8Histogram::occupied_blocks() const noexcept {
  std::size_t occupied = 0;
  for (const std::uint64_t c : counts_) occupied += c > 0 ? 1 : 0;
  return occupied;
}

double Slash8Histogram::normalized_entropy() const noexcept {
  const double total_count = static_cast<double>(total());
  if (total_count <= 0.0) return 0.0;
  double entropy = 0.0;
  for (const std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total_count;
    entropy -= p * std::log2(p);
  }
  return entropy / 8.0;  // log2(256) == 8
}

}  // namespace repro::net
