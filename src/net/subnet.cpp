#include "net/subnet.hpp"

#include "util/error.hpp"
#include "util/parse.hpp"

namespace repro::net {

Subnet::Subnet(Ipv4 base, int prefix_length) : prefix_(prefix_length) {
  if (prefix_length < 0 || prefix_length > 32) {
    throw ConfigError("Subnet: prefix length must be in [0, 32], got " +
                      std::to_string(prefix_length));
  }
  network_ = Ipv4{base.value() & mask()};
}

Subnet Subnet::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw ParseError("Subnet::parse: missing '/' in '" + std::string{text} + "'");
  }
  const Ipv4 base = Ipv4::parse(text.substr(0, slash));
  int prefix = 0;
  try {
    prefix = parse_i32(text.substr(slash + 1), "prefix");
  } catch (const ParseError&) {
    throw ParseError("Subnet::parse: malformed prefix in '" +
                     std::string{text} + "'");
  }
  if (prefix < 0 || prefix > 32) {
    throw ParseError("Subnet::parse: prefix out of range in '" +
                     std::string{text} + "'");
  }
  return Subnet{base, prefix};
}

Ipv4 Subnet::random_address(Rng& rng) const noexcept {
  const std::uint32_t host_bits = ~mask();
  return Ipv4{network_.value() |
              (static_cast<std::uint32_t>(rng.next()) & host_bits)};
}

std::string Subnet::to_string() const {
  return network_.to_string() + "/" + std::to_string(prefix_);
}

}  // namespace repro::net
