// Address-space population sampling and /8 occupancy histograms.
//
// Figure 5 of the paper contrasts two propagation styles: worm
// populations spread widely over the routable IPv4 space versus bot
// populations concentrated in a handful of specific networks. This
// module provides both samplers and the /8 histogram used to render the
// "distribution of the infected hosts over the IP space" panels.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "net/subnet.hpp"
#include "util/rng.hpp"

namespace repro::net {

/// Draws addresses spread over the historically routable unicast space,
/// skipping reserved/multicast prefixes — models a scanning worm's
/// victim/infectee population.
class WidespreadSampler {
 public:
  [[nodiscard]] Ipv4 sample(Rng& rng) const noexcept;

  /// True if the first octet is in the routable unicast space this
  /// sampler draws from.
  [[nodiscard]] static bool routable_slash8(std::uint8_t first_octet) noexcept;
};

/// Draws addresses from a fixed set of subnets with given weights —
/// models a botnet recruited from specific provider networks.
class ConcentratedSampler {
 public:
  ConcentratedSampler(std::vector<Subnet> subnets, std::vector<double> weights);

  [[nodiscard]] Ipv4 sample(Rng& rng) const noexcept;

  [[nodiscard]] const std::vector<Subnet>& subnets() const noexcept {
    return subnets_;
  }

 private:
  std::vector<Subnet> subnets_;
  std::vector<double> weights_;
};

/// Occupancy counts over the 256 /8 blocks.
class Slash8Histogram {
 public:
  void add(Ipv4 ip) noexcept { ++counts_[ip.slash8()]; }

  [[nodiscard]] std::uint64_t count(std::uint8_t block) const noexcept {
    return counts_[block];
  }
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Number of distinct /8 blocks with at least one hit — the spread
  /// statistic used to discriminate widespread vs concentrated
  /// populations.
  [[nodiscard]] std::size_t occupied_blocks() const noexcept;

  /// Normalized entropy of the /8 distribution in [0, 1]; near 1 for
  /// widespread populations, near 0 for single-network ones.
  [[nodiscard]] double normalized_entropy() const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, 256>& counts() const noexcept {
    return counts_;
  }

 private:
  std::array<std::uint64_t, 256> counts_{};
};

}  // namespace repro::net
