// IPv4 address value type.
//
// Attack sources and honeypot sensors are identified by IPv4 addresses;
// the propagation-context analysis (Figure 5) buckets populations by /8
// and the C&C analysis (Table 2) groups servers by /24.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace repro::net {

/// An IPv4 address stored in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() noexcept = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_(static_cast<std::uint32_t>(a) << 24 |
               static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// First octet; index of the /8 bucket used by IP-space histograms.
  [[nodiscard]] constexpr std::uint8_t slash8() const noexcept {
    return octet(0);
  }

  /// Network part for /24 grouping (low octet zeroed).
  [[nodiscard]] constexpr Ipv4 slash24() const noexcept {
    return Ipv4{value_ & 0xffffff00u};
  }

  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad notation. Throws ParseError on malformed input.
  [[nodiscard]] static Ipv4 parse(std::string_view text);

  friend constexpr auto operator<=>(const Ipv4&, const Ipv4&) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace repro::net

template <>
struct std::hash<repro::net::Ipv4> {
  std::size_t operator()(const repro::net::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
