// CIDR subnets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "util/rng.hpp"

namespace repro::net {

/// A CIDR block, e.g. 67.43.232.0/24.
class Subnet {
 public:
  constexpr Subnet() noexcept = default;

  /// Builds the subnet containing `base` with the given prefix length
  /// (host bits of `base` are cleared). Prefix must be in [0, 32].
  Subnet(Ipv4 base, int prefix_length);

  /// Parse "a.b.c.d/len". Throws ParseError on malformed input.
  [[nodiscard]] static Subnet parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4 network() const noexcept { return network_; }
  [[nodiscard]] constexpr int prefix_length() const noexcept { return prefix_; }

  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return prefix_ == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4 ip) const noexcept {
    return (ip.value() & mask()) == network_.value();
  }

  /// Number of addresses in the block (2^(32-prefix)).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - prefix_);
  }

  /// Uniformly random address inside the block.
  [[nodiscard]] Ipv4 random_address(Rng& rng) const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Subnet&, const Subnet&) noexcept =
      default;

 private:
  Ipv4 network_{};
  int prefix_ = 32;
};

}  // namespace repro::net
