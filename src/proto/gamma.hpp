// Bogus control data (gamma) — synthesis and taint-side observation.
//
// In the EGPM model, gamma is the network data that overwrites control
// structures and redirects execution into the payload: the return
// address (typically a jmp-reg trampoline inside a loaded DLL), the
// register-context spray, and the stack padding in front of it. The
// paper does not classify gamma "due to lack of host-based information
// in the SGNET dataset" (footnote 1); this module implements the
// extension the footnote implies. The Argos-style taint oracle *does*
// see the hijack when a conversation is proxied to the sample factory,
// so gamma observations exist for the factory-handled subset of events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace repro::proto {

/// Control-flow hijack techniques observed in server-side exploits.
enum class HijackTechnique : std::uint8_t {
  kStackReturn,  // classic saved-return-address overwrite
  kSehFrame,     // SEH handler overwrite
  kFuncPointer,  // function/vtable pointer overwrite
};

[[nodiscard]] std::string hijack_technique_name(HijackTechnique technique);

/// Ground-truth gamma configuration of one exploit implementation. The
/// trampoline address is implementation-specific (hard-coded by the
/// exploit author for a particular DLL build), which is what makes it
/// a usable invariant.
struct GammaSpec {
  HijackTechnique technique = HijackTechnique::kStackReturn;
  /// Hijacked control value: address of a jmp-esp style trampoline.
  std::uint32_t trampoline = 0x7c80'1234;
  /// Bytes of padding between the overflow point and the control value.
  std::uint16_t pad_length = 64;
};

/// Deterministic gamma configuration for an exploit implementation.
[[nodiscard]] GammaSpec make_gamma_spec(std::uint64_t exploit_seed);

/// Serializes the bogus control data that precedes the payload on the
/// wire: pad bytes, then a technique marker, then the little-endian
/// trampoline. The pad content varies per instance; everything else is
/// implementation-invariant.
[[nodiscard]] std::vector<std::uint8_t> build_gamma(const GammaSpec& spec,
                                                    Rng& rng);

/// What the taint oracle reports when the hijack fires inside the
/// sample factory.
struct GammaObservation {
  std::string technique;      // hijack technique name
  std::uint32_t trampoline = 0;  // overwriting value caught by tainting
  std::uint16_t pad_length = 0;  // distance from overflow to control data

  friend bool operator==(const GammaObservation&,
                         const GammaObservation&) = default;
};

/// Parses gamma bytes back into an observation (the taint-side view).
/// Returns nullopt when the marker structure is absent.
[[nodiscard]] std::optional<GammaObservation> observe_gamma(
    const std::vector<std::uint8_t>& bytes);

}  // namespace repro::proto
