#include "proto/message.hpp"

namespace repro::proto {

Bytes to_bytes(std::string_view text) {
  return Bytes{text.begin(), text.end()};
}

std::vector<const Bytes*> Conversation::client_messages() const {
  std::vector<const Bytes*> out;
  for (const Message& message : messages) {
    if (message.direction == Message::Direction::kClientToServer) {
      out.push_back(&message.bytes);
    }
  }
  return out;
}

}  // namespace repro::proto
