#include "proto/gamma.hpp"

namespace repro::proto {

namespace {

/// Marker separating the pad from the control value; stands in for the
/// structural knowledge (frame layout) the taint oracle has.
constexpr std::uint8_t kGammaMarker[2] = {0xeb, 0x06};

}  // namespace

std::string hijack_technique_name(HijackTechnique technique) {
  switch (technique) {
    case HijackTechnique::kStackReturn: return "stack-return";
    case HijackTechnique::kSehFrame: return "seh-frame";
    case HijackTechnique::kFuncPointer: return "func-pointer";
  }
  return "unknown";
}

GammaSpec make_gamma_spec(std::uint64_t exploit_seed) {
  Rng rng{mix64(exploit_seed ^ 0x6a11'a000'0000'0000ULL)};
  GammaSpec spec;
  const double draw = rng.real();
  spec.technique = draw < 0.6   ? HijackTechnique::kStackReturn
                   : draw < 0.85 ? HijackTechnique::kSehFrame
                                 : HijackTechnique::kFuncPointer;
  // Trampolines live in system DLL ranges; a handful of addresses are
  // reused across implementations (popular jmp-esp gadgets).
  static constexpr std::uint32_t kPopularGadgets[] = {
      0x7c80'1234, 0x7c83'5a41, 0x71ab'7bfb, 0x7e42'9353};
  if (rng.chance(0.5)) {
    spec.trampoline = kPopularGadgets[rng.index(4)];
  } else {
    spec.trampoline =
        0x7c80'0000 + static_cast<std::uint32_t>(rng.index(0x0008'0000));
  }
  spec.pad_length = static_cast<std::uint16_t>(32 + 4 * rng.index(64));
  return spec;
}

std::vector<std::uint8_t> build_gamma(const GammaSpec& spec, Rng& rng) {
  std::vector<std::uint8_t> out;
  out.reserve(spec.pad_length + 8);
  for (std::uint16_t i = 0; i < spec.pad_length; ++i) {
    // Per-instance pad filler; avoid the marker's first byte.
    std::uint8_t filler = static_cast<std::uint8_t>(rng.uniform(0x41, 0x5a));
    out.push_back(filler);
  }
  out.push_back(kGammaMarker[0]);
  out.push_back(kGammaMarker[1]);
  out.push_back(static_cast<std::uint8_t>(spec.technique));
  out.push_back(static_cast<std::uint8_t>(spec.trampoline & 0xff));
  out.push_back(static_cast<std::uint8_t>((spec.trampoline >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((spec.trampoline >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((spec.trampoline >> 24) & 0xff));
  return out;
}

std::optional<GammaObservation> observe_gamma(
    const std::vector<std::uint8_t>& bytes) {
  // Scan for the marker; the pad length is the offset where it sits.
  for (std::size_t i = 0; i + 7 <= bytes.size(); ++i) {
    if (bytes[i] != kGammaMarker[0] || bytes[i + 1] != kGammaMarker[1]) {
      continue;
    }
    const std::uint8_t technique_raw = bytes[i + 2];
    if (technique_raw > static_cast<std::uint8_t>(
                            HijackTechnique::kFuncPointer)) {
      continue;
    }
    GammaObservation observation;
    observation.technique = hijack_technique_name(
        static_cast<HijackTechnique>(technique_raw));
    observation.trampoline =
        static_cast<std::uint32_t>(bytes[i + 3]) |
        static_cast<std::uint32_t>(bytes[i + 4]) << 8 |
        static_cast<std::uint32_t>(bytes[i + 5]) << 16 |
        static_cast<std::uint32_t>(bytes[i + 6]) << 24;
    observation.pad_length = static_cast<std::uint16_t>(i);
    return observation;
  }
  return std::nullopt;
}

}  // namespace repro::proto
