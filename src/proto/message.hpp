// Protocol messages and conversations.
//
// SGNET sensors observe code-injection attacks as TCP conversations:
// an ordered exchange of client and server messages on a destination
// port. ScriptGen learns Finite State Machine models from such
// conversations; the FSM path taken by an attack is the main
// epsilon-dimension feature of EPM clustering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace repro::proto {

using Bytes = std::vector<std::uint8_t>;

/// Converts ASCII text to protocol bytes.
[[nodiscard]] Bytes to_bytes(std::string_view text);

/// One directional message within a conversation.
struct Message {
  enum class Direction : std::uint8_t { kClientToServer, kServerToClient };

  Direction direction = Direction::kClientToServer;
  Bytes bytes;
};

/// One observed TCP conversation between an attacker and a honeypot.
struct Conversation {
  net::Ipv4 source;
  net::Ipv4 destination;
  std::uint16_t dst_port = 0;
  std::vector<Message> messages;

  /// Client-to-server messages in order; FSM learning and matching only
  /// consider the client side (the honeypot plays the server).
  [[nodiscard]] std::vector<const Bytes*> client_messages() const;
};

}  // namespace repro::proto
