// Synthetic vulnerable-service exploit dialogs.
//
// SGNET observes real exploits against Windows services (the paper's
// Allaple case targets the MS04-007 ASN.1 vulnerability on 445/tcp).
// We cannot replay real exploit traffic offline, so this module defines
// byte-level *exploit dialog templates*: multi-request conversations
// with a realistic mix of fixed protocol framing, implementation-
// specific constants (usernames, NetBIOS connection identifiers — what
// makes two implementations of the same exploit take different FSM
// paths) and per-instance random fields. The final request carries the
// injected payload (gamma + pi of the EGPM model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "proto/gamma.hpp"
#include "proto/message.hpp"
#include "util/rng.hpp"

namespace repro::proto {

/// The base service a dialog speaks; fixes the destination port and the
/// protocol framing. The paper's dataset sees three invariant ports.
enum class ServiceKind : std::uint8_t {
  kSmb445,      // SMB / MS04-007-style dialogs on 445/tcp
  kNetbios139,  // NetBIOS session service dialogs on 139/tcp
  kDceRpc135,   // DCE-RPC endpoint-mapper dialogs on 135/tcp
};

[[nodiscard]] std::uint16_t service_port(ServiceKind kind) noexcept;
[[nodiscard]] std::string service_name(ServiceKind kind);

/// One client request within a dialog template.
struct RequestTemplate {
  /// Fixed protocol framing shared by every implementation of the
  /// service (e.g. the SMB negotiate header).
  std::string protocol_prefix;
  /// Implementation-specific constant: identical across all attacks by
  /// this exploit implementation, different between implementations.
  std::string implementation_token;
  /// Length of the per-instance random field (transaction ids, padding).
  std::size_t random_field_length = 0;
  /// Whether the injected payload bytes are appended to this request.
  bool carries_payload = false;
};

/// A full exploit implementation: the epsilon ground truth.
struct ExploitTemplate {
  std::string id;        // stable label, e.g. "smb445-asn1-implA"
  ServiceKind service = ServiceKind::kSmb445;
  std::vector<RequestTemplate> requests;
  /// Bogus control data configuration (gamma): serialized between the
  /// fixed dialog fields and the payload in the carrying request.
  GammaSpec gamma;
};

/// Deterministically derives a distinct exploit implementation of the
/// given service. Different `implementation_index` values produce
/// different implementation tokens (and possibly different dialog
/// lengths), hence different FSM paths.
[[nodiscard]] ExploitTemplate make_exploit_template(
    ServiceKind service, std::uint32_t implementation_index);

/// Renders one concrete attack conversation from a template: fixed
/// framing + implementation tokens + fresh random fields + the payload
/// appended to the payload-carrying request. Server replies are
/// interleaved so the conversation is a plausible dialog.
[[nodiscard]] Conversation synthesize_attack(const ExploitTemplate& tmpl,
                                             const Bytes& payload,
                                             net::Ipv4 source,
                                             net::Ipv4 destination, Rng& rng);

/// Location of the injected (tainted) region inside the carrying client
/// message — the information Argos' memory tainting provides to the
/// sample factory. The region starts at the gamma bytes (bogus control
/// data) and runs through the payload to the end of the message.
struct PayloadLocation {
  std::size_t message_index = 0;  // index into Conversation::messages
  std::size_t byte_offset = 0;    // start of gamma + payload
};
[[nodiscard]] PayloadLocation payload_location(const ExploitTemplate& tmpl);

/// Copy of the conversation with the tainted payload bytes removed from
/// the carrying message. The sample factory applies this before handing
/// conversations to ScriptGen FSM refinement, so learned models describe
/// the protocol dialog rather than payload bytes (matching how SGNET
/// separates epsilon from gamma/pi).
[[nodiscard]] Conversation strip_payload(Conversation conversation,
                                         const PayloadLocation& location);

}  // namespace repro::proto
