// ScriptGen region analysis.
//
// Given a set of protocol messages assumed to be instances of the same
// logical request, region analysis separates the bytes every instance
// shares (fixed regions — protocol keywords, implementation-specific
// constants) from the bytes that vary between instances (mutating
// regions — transaction ids, random filenames, payload). Fixed regions
// become the matching labels of FSM transitions.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/message.hpp"

namespace repro::proto {

/// A maximal run of bytes shared (in order, contiguously) by all
/// messages of a group.
struct Region {
  Bytes bytes;
};

/// Longest common subsequence of two byte strings (classic O(n*m) DP).
[[nodiscard]] Bytes longest_common_subsequence(const Bytes& a, const Bytes& b);

/// Similarity in [0, 1]: 2*|LCS| / (|a| + |b|). Two empty messages have
/// similarity 1.
[[nodiscard]] double message_similarity(const Bytes& a, const Bytes& b);

/// Extracts the fixed regions common to all messages: the runs of the
/// iterated LCS that occur contiguously and in order in every message.
/// Regions shorter than `min_region_length` are discarded as noise.
/// An empty input yields no regions.
[[nodiscard]] std::vector<Region> region_analysis(
    const std::vector<const Bytes*>& messages,
    std::size_t min_region_length = 3);

/// True if all regions occur in `candidate` in order without overlap.
[[nodiscard]] bool regions_match(const std::vector<Region>& regions,
                                 const Bytes& candidate) noexcept;

/// Total fixed bytes across regions; used to prefer the most specific
/// transition when several match.
[[nodiscard]] std::size_t total_region_bytes(
    const std::vector<Region>& regions) noexcept;

}  // namespace repro::proto
