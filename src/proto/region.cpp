#include "proto/region.hpp"

#include <algorithm>

namespace repro::proto {

Bytes longest_common_subsequence(const Bytes& a, const Bytes& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return {};
  // Full DP table (messages are bounded by MTU-scale sizes; learning
  // runs on small per-transition sample sets).
  std::vector<std::uint32_t> table((n + 1) * (m + 1), 0);
  const auto at = [&](std::size_t i, std::size_t j) -> std::uint32_t& {
    return table[i * (m + 1) + j];
  };
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      at(i, j) = a[i - 1] == b[j - 1]
                     ? at(i - 1, j - 1) + 1
                     : std::max(at(i - 1, j), at(i, j - 1));
    }
  }
  Bytes out(at(n, m));
  std::size_t i = n;
  std::size_t j = m;
  std::size_t k = out.size();
  while (i > 0 && j > 0) {
    if (a[i - 1] == b[j - 1]) {
      out[--k] = a[i - 1];
      --i;
      --j;
    } else if (at(i - 1, j) >= at(i, j - 1)) {
      --i;
    } else {
      --j;
    }
  }
  return out;
}

double message_similarity(const Bytes& a, const Bytes& b) {
  if (a.empty() && b.empty()) return 1.0;
  const Bytes common = longest_common_subsequence(a, b);
  return 2.0 * static_cast<double>(common.size()) /
         static_cast<double>(a.size() + b.size());
}

namespace {

/// Leftmost greedy embedding positions of subsequence `needle` in
/// `haystack`; returns false if `needle` is not a subsequence.
bool embed(const Bytes& needle, const Bytes& haystack,
           std::vector<std::size_t>& positions) {
  positions.clear();
  positions.reserve(needle.size());
  std::size_t h = 0;
  for (const std::uint8_t byte : needle) {
    while (h < haystack.size() && haystack[h] != byte) ++h;
    if (h == haystack.size()) return false;
    positions.push_back(h++);
  }
  return true;
}

}  // namespace

std::vector<Region> region_analysis(const std::vector<const Bytes*>& messages,
                                    std::size_t min_region_length) {
  std::vector<Region> regions;
  if (messages.empty()) return regions;

  // Iterated LCS: bytes common to all messages, in order.
  Bytes common = *messages.front();
  for (std::size_t i = 1; i < messages.size() && !common.empty(); ++i) {
    common = longest_common_subsequence(common, *messages[i]);
  }
  if (common.empty()) return regions;

  // Embed the common subsequence in every message and split it wherever
  // any message breaks contiguity: the surviving runs are bytes that are
  // contiguous (hence structurally fixed) in all instances.
  std::vector<std::vector<std::size_t>> embeddings(messages.size());
  std::vector<std::size_t> scratch;
  for (std::size_t m = 0; m < messages.size(); ++m) {
    if (!embed(common, *messages[m], scratch)) return regions;  // defensive
    embeddings[m] = scratch;
  }

  Bytes run;
  const auto flush = [&] {
    if (run.size() >= min_region_length) regions.push_back(Region{run});
    run.clear();
  };
  for (std::size_t k = 0; k < common.size(); ++k) {
    if (k > 0) {
      bool contiguous = true;
      for (const auto& positions : embeddings) {
        if (positions[k] != positions[k - 1] + 1) {
          contiguous = false;
          break;
        }
      }
      if (!contiguous) flush();
    }
    run.push_back(common[k]);
  }
  flush();
  return regions;
}

bool regions_match(const std::vector<Region>& regions,
                   const Bytes& candidate) noexcept {
  auto cursor = candidate.begin();
  for (const Region& region : regions) {
    cursor = std::search(cursor, candidate.end(), region.bytes.begin(),
                         region.bytes.end());
    if (cursor == candidate.end() && !region.bytes.empty()) return false;
    cursor += static_cast<long>(region.bytes.size());
  }
  return true;
}

std::size_t total_region_bytes(const std::vector<Region>& regions) noexcept {
  std::size_t total = 0;
  for (const Region& region : regions) total += region.bytes.size();
  return total;
}

}  // namespace repro::proto
