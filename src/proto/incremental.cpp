#include "proto/incremental.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::proto {

int IncrementalFsm::find_cluster(const State& state,
                                 const Bytes& message) const {
  int best = -1;
  double best_similarity = 0.0;
  for (std::size_t t = 0; t < state.transitions.size(); ++t) {
    const Transition& transition = state.transitions[t];
    if (transition.exemplars.empty()) continue;
    const double similarity =
        message_similarity(transition.exemplars.front(), message);
    if (similarity >= options_.fsm.similarity_threshold &&
        similarity > best_similarity) {
      best = static_cast<int>(t);
      best_similarity = similarity;
    }
  }
  return best;
}

void IncrementalFsm::train(const Conversation& conversation) {
  if (conversation.dst_port != port_) {
    throw ConfigError("IncrementalFsm::train: port mismatch");
  }
  // Pair each client message with the server reply that follows it (the
  // honeyfarm's answer, which sensors will replay once mature).
  std::vector<const Bytes*> replies;
  {
    const Bytes* pending_reply = nullptr;
    for (auto it = conversation.messages.rbegin();
         it != conversation.messages.rend(); ++it) {
      if (it->direction == Message::Direction::kServerToClient) {
        pending_reply = &it->bytes;
      } else {
        replies.push_back(pending_reply);
        pending_reply = nullptr;
      }
    }
    std::reverse(replies.begin(), replies.end());
  }
  std::size_t depth = 0;
  int state_index = 0;
  for (const Bytes* message : conversation.client_messages()) {
    State& state = states_[static_cast<std::size_t>(state_index)];
    int cluster = find_cluster(state, *message);
    if (cluster < 0) {
      Transition transition;
      transition.target = static_cast<int>(states_.size());
      states_.emplace_back();
      // NOTE: states_ growth may reallocate; re-take the reference.
      State& reloaded = states_[static_cast<std::size_t>(state_index)];
      reloaded.transitions.push_back(std::move(transition));
      cluster = static_cast<int>(reloaded.transitions.size()) - 1;
    }
    Transition& transition = states_[static_cast<std::size_t>(state_index)]
                                 .transitions[static_cast<std::size_t>(cluster)];
    ++transition.sample_count;
    if (depth < replies.size() && replies[depth] != nullptr) {
      ++transition.replies[*replies[depth]];
    }
    ++depth;
    if (transition.exemplars.size() < options_.max_exemplars) {
      transition.exemplars.push_back(*message);
      // Re-derive the fixed regions from the exemplar set.
      std::vector<const Bytes*> views;
      views.reserve(transition.exemplars.size());
      for (const Bytes& exemplar : transition.exemplars) {
        views.push_back(&exemplar);
      }
      transition.regions =
          region_analysis(views, options_.fsm.min_region_length);
    }
    state_index = transition.target;
  }
}

std::optional<std::string> IncrementalFsm::match(
    const Conversation& conversation) const {
  if (conversation.dst_port != port_) return std::nullopt;
  std::string path = "p" + std::to_string(port_) + "/";
  int state_index = 0;
  bool first = true;
  for (const Bytes* message : conversation.client_messages()) {
    const State& state = states_[static_cast<std::size_t>(state_index)];
    int best = -1;
    std::size_t best_bytes = 0;
    for (std::size_t t = 0; t < state.transitions.size(); ++t) {
      const Transition& transition = state.transitions[t];
      if (transition.sample_count < options_.maturity) continue;
      if (!regions_match(transition.regions, *message)) continue;
      const std::size_t fixed_bytes = total_region_bytes(transition.regions);
      if (best < 0 || fixed_bytes > best_bytes) {
        best = static_cast<int>(t);
        best_bytes = fixed_bytes;
      }
    }
    if (best < 0) return std::nullopt;
    if (!first) path += ".";
    path += std::to_string(best);
    first = false;
    state_index =
        state.transitions[static_cast<std::size_t>(best)].target;
  }
  return path;
}

std::optional<Bytes> IncrementalFsm::respond(
    const Conversation& dialog_so_far) const {
  if (dialog_so_far.dst_port != port_) return std::nullopt;
  int state_index = 0;
  const Transition* last = nullptr;
  for (const Bytes* message : dialog_so_far.client_messages()) {
    const State& state = states_[static_cast<std::size_t>(state_index)];
    int best = -1;
    std::size_t best_bytes = 0;
    for (std::size_t t = 0; t < state.transitions.size(); ++t) {
      const Transition& transition = state.transitions[t];
      if (transition.sample_count < options_.maturity) continue;
      if (!regions_match(transition.regions, *message)) continue;
      const std::size_t fixed_bytes = total_region_bytes(transition.regions);
      if (best < 0 || fixed_bytes > best_bytes) {
        best = static_cast<int>(t);
        best_bytes = fixed_bytes;
      }
    }
    if (best < 0) return std::nullopt;
    last = &state.transitions[static_cast<std::size_t>(best)];
    state_index = last->target;
  }
  if (last == nullptr || last->replies.empty()) return std::nullopt;
  // Most common observed reply, ties broken by byte order.
  const auto mode = std::max_element(
      last->replies.begin(), last->replies.end(),
      [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second < b.second;
        return b.first < a.first;
      });
  return mode->first;
}

std::size_t IncrementalFsm::transition_count() const noexcept {
  std::size_t count = 0;
  for (const State& state : states_) count += state.transitions.size();
  return count;
}

std::size_t IncrementalFsm::mature_transition_count() const noexcept {
  std::size_t count = 0;
  for (const State& state : states_) {
    for (const Transition& transition : state.transitions) {
      count += transition.sample_count >= options_.maturity ? 1 : 0;
    }
  }
  return count;
}

}  // namespace repro::proto
