// ScriptGen Finite State Machine models.
//
// An Fsm models the client side of a service dialog on one port. Each
// state's outgoing transitions are labeled with the fixed regions of a
// cluster of similar client messages; traversing the machine with an
// observed conversation yields an FSM *path identifier* — the feature
// the paper uses to classify exploits (Table 1: 50 invariant FSM paths).
//
// Because FSM models are learned from concrete conversations, a path
// captures protocol structure *and* implementation specificities (fixed
// usernames, connection identifiers), exactly as [20] describes — two
// implementations of the same exploit yield different paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proto/message.hpp"
#include "proto/region.hpp"

namespace repro::proto {

/// Tuning knobs for FSM learning.
struct FsmOptions {
  /// Two client messages at the same dialog position belong to the same
  /// transition when their LCS similarity reaches this threshold.
  double similarity_threshold = 0.8;
  /// Fixed regions shorter than this are discarded as alignment noise.
  std::size_t min_region_length = 3;
};

/// A learned per-port FSM.
class Fsm {
 public:
  /// Learns a machine from training conversations, which must all share
  /// the same destination port. Throws ConfigError on mixed ports or an
  /// empty training set.
  [[nodiscard]] static Fsm learn(const std::vector<Conversation>& training,
                                 const FsmOptions& options = {});

  /// Walks the machine along the conversation's client messages.
  /// Returns the path identifier ("p445/2.0.1": port plus the transition
  /// index taken at each step) or nullopt as soon as a message matches
  /// no transition — the SGNET sensor would proxy such a conversation to
  /// the sample factory as a new activity.
  [[nodiscard]] std::optional<std::string> match(
      const Conversation& conversation) const;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t state_count() const noexcept {
    return states_.size();
  }
  [[nodiscard]] std::size_t transition_count() const noexcept;

  /// Distinct complete root-to-leaf path identifiers in the machine.
  [[nodiscard]] std::vector<std::string> all_paths() const;

 private:
  struct Transition {
    std::vector<Region> regions;
    int target = -1;
  };
  struct State {
    std::vector<Transition> transitions;
  };

  void learn_node(int state, const std::vector<const Conversation*>& group,
                  std::size_t depth, const FsmOptions& options);

  std::vector<State> states_;
  std::uint16_t port_ = 0;
};

}  // namespace repro::proto
