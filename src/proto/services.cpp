#include "proto/services.hpp"

#include "util/error.hpp"

namespace repro::proto {

std::uint16_t service_port(ServiceKind kind) noexcept {
  switch (kind) {
    case ServiceKind::kSmb445: return 445;
    case ServiceKind::kNetbios139: return 139;
    case ServiceKind::kDceRpc135: return 135;
  }
  return 0;
}

std::string service_name(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kSmb445: return "smb445";
    case ServiceKind::kNetbios139: return "netbios139";
    case ServiceKind::kDceRpc135: return "dcerpc135";
  }
  return "unknown";
}

namespace {

/// Assembles an implementation-specific constant from a pool of
/// "key=value" option fields. Different exploit implementations choose
/// different option subsets and different values, which is what makes
/// their messages separable by the FSM's message clustering — exactly
/// the "implementation specificities" effect of [20].
std::string implementation_fields(Rng& rng, std::size_t min_fields,
                                  std::size_t max_fields) {
  static constexpr const char* kKeys[] = {"client", "domain", "os",    "lm",
                                          "pid",    "cap",    "flags", "uid"};
  const std::size_t count =
      min_fields + rng.index(max_fields - min_fields + 1);
  std::vector<std::string> keys{std::begin(kKeys), std::end(kKeys)};
  rng.shuffle(keys);
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    out += " " + keys[i] + "=" + rng.alnum(10 + rng.index(6));
  }
  return out;
}

}  // namespace

ExploitTemplate make_exploit_template(ServiceKind service,
                                      std::uint32_t implementation_index) {
  // Implementation constants are derived from a deterministic stream so
  // the same (service, index) pair always yields the same exploit.
  Rng rng{mix64(fnv1a64(service_name(service)) ^
                (0x9e37'79b9'7f4a'7c15ULL * (implementation_index + 1)))};

  ExploitTemplate tmpl;
  tmpl.service = service;
  tmpl.id = service_name(service) + "-impl" +
            std::to_string(implementation_index);
  tmpl.gamma = make_gamma_spec(fnv1a64(tmpl.id));

  switch (service) {
    case ServiceKind::kSmb445: {
      tmpl.requests.push_back(RequestTemplate{
          "\xffSMBr NEGOTIATE", implementation_fields(rng, 3, 5), 6, false});
      // Roughly a third of the implementations authenticate anonymously
      // and skip the session-setup request, shortening the dialog.
      if (implementation_index % 3 != 2) {
        tmpl.requests.push_back(RequestTemplate{
            "\xffSMBs SESSION_SETUP", implementation_fields(rng, 2, 4),
            4 + implementation_index % 5, false});
      }
      tmpl.requests.push_back(RequestTemplate{
          "\xffSMB2 TRANS2 ASN.1 bitstring",
          implementation_fields(rng, 2, 4) + " blob=", 6, true});
      break;
    }
    case ServiceKind::kNetbios139: {
      tmpl.requests.push_back(RequestTemplate{
          "\x81 SESSION REQUEST called=*SMBSERVER",
          implementation_fields(rng, 2, 3), 2, false});
      tmpl.requests.push_back(RequestTemplate{
          "\xffSMBr NEGOTIATE", implementation_fields(rng, 3, 5), 6, false});
      tmpl.requests.push_back(RequestTemplate{
          "\xffSMB2 TRANS2 ASN.1 bitstring",
          implementation_fields(rng, 2, 4) + " blob=", 6, true});
      break;
    }
    case ServiceKind::kDceRpc135: {
      tmpl.requests.push_back(RequestTemplate{
          "\x05\x0b BIND uuid=4d9f4ab8-7d1c-11cf-861e-0020af6e7c57",
          implementation_fields(rng, 2, 4), 6, false});
      tmpl.requests.push_back(RequestTemplate{
          "\x05 REQUEST opnum=4",
          implementation_fields(rng, 2, 3) + " stub=",
          2 + implementation_index % 4, true});
      break;
    }
  }
  return tmpl;
}

Conversation synthesize_attack(const ExploitTemplate& tmpl,
                               const Bytes& payload, net::Ipv4 source,
                               net::Ipv4 destination, Rng& rng) {
  if (tmpl.requests.empty()) {
    throw ConfigError("synthesize_attack: template '" + tmpl.id +
                      "' has no requests");
  }
  Conversation conversation;
  conversation.source = source;
  conversation.destination = destination;
  conversation.dst_port = service_port(tmpl.service);

  for (const RequestTemplate& request : tmpl.requests) {
    Message client;
    client.direction = Message::Direction::kClientToServer;
    client.bytes = to_bytes(request.protocol_prefix);
    const Bytes token = to_bytes(request.implementation_token);
    client.bytes.insert(client.bytes.end(), token.begin(), token.end());
    // Per-instance random field: hex-ish bytes so no accidental overlap
    // with protocol keywords.
    for (std::size_t i = 0; i < request.random_field_length; ++i) {
      client.bytes.push_back(
          static_cast<std::uint8_t>(rng.uniform(0x80, 0xbf)));
    }
    if (request.carries_payload) {
      // Bogus control data first (pad + hijacked control value), then
      // the payload it redirects execution into.
      const Bytes gamma = build_gamma(tmpl.gamma, rng);
      client.bytes.insert(client.bytes.end(), gamma.begin(), gamma.end());
      client.bytes.insert(client.bytes.end(), payload.begin(), payload.end());
    }
    conversation.messages.push_back(std::move(client));

    Message server;
    server.direction = Message::Direction::kServerToClient;
    server.bytes = to_bytes(request.carries_payload ? "-FAULT pipe broken"
                                                     : "+OK continue");
    conversation.messages.push_back(std::move(server));
  }
  return conversation;
}

PayloadLocation payload_location(const ExploitTemplate& tmpl) {
  for (std::size_t i = 0; i < tmpl.requests.size(); ++i) {
    const RequestTemplate& request = tmpl.requests[i];
    if (!request.carries_payload) continue;
    // Client messages sit at even indices (each followed by one reply).
    return PayloadLocation{
        i * 2, request.protocol_prefix.size() +
                   request.implementation_token.size() +
                   request.random_field_length};
  }
  throw ConfigError("payload_location: template '" + tmpl.id +
                    "' carries no payload");
}

Conversation strip_payload(Conversation conversation,
                           const PayloadLocation& location) {
  if (location.message_index >= conversation.messages.size()) {
    throw ConfigError("strip_payload: message index out of range");
  }
  Bytes& bytes = conversation.messages[location.message_index].bytes;
  if (location.byte_offset < bytes.size()) {
    bytes.resize(location.byte_offset);
  }
  return conversation;
}

}  // namespace repro::proto
