// Incremental ScriptGen learning — the SGNET gateway life-cycle.
//
// Batch learning (Fsm::learn) assumes a complete training corpus. The
// deployment instead sees conversations one at a time: unknown activity
// is proxied to the sample factory, its (payload-stripped) conversation
// is added as training, and once a dialog cluster has accumulated
// enough samples the model is considered *mature* for it and sensors
// answer autonomously. IncrementalFsm implements that life-cycle with
// stable path identifiers: transitions keep their index across
// refinements, so a path id never changes once assigned.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/fsm.hpp"
#include "proto/message.hpp"
#include "proto/region.hpp"

namespace repro::proto {

class IncrementalFsm {
 public:
  struct Options {
    FsmOptions fsm;
    /// A transition answers autonomously once it has seen this many
    /// training samples (the "sufficient number of samples of the same
    /// type of interaction" of the SGNET design).
    std::size_t maturity = 3;
    /// At most this many exemplar messages are retained per transition
    /// for region re-analysis.
    std::size_t max_exemplars = 4;
  };

  explicit IncrementalFsm(std::uint16_t port)
      : IncrementalFsm(port, Options{}) {}
  IncrementalFsm(std::uint16_t port, Options options)
      : port_(port), options_(options) {
    states_.emplace_back();
  }

  /// Adds one (payload-stripped) training conversation, refining the
  /// model. Throws ConfigError on a port mismatch.
  void train(const Conversation& conversation);

  /// Matches a conversation along *mature* transitions only. Returns
  /// the stable path identifier, or nullopt when any message reaches an
  /// immature or missing transition (the sensor would proxy).
  [[nodiscard]] std::optional<std::string> match(
      const Conversation& conversation) const;

  /// Response emulation — ScriptGen's original purpose: given the
  /// client messages of a dialog in progress, returns the server reply
  /// the model learned for the *last* client message (the most common
  /// reply observed during training). nullopt when the dialog reaches
  /// an immature or unknown transition, or no reply was ever recorded —
  /// the sensor would proxy to the honeyfarm.
  [[nodiscard]] std::optional<Bytes> respond(
      const Conversation& dialog_so_far) const;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t state_count() const noexcept {
    return states_.size();
  }
  [[nodiscard]] std::size_t transition_count() const noexcept;
  [[nodiscard]] std::size_t mature_transition_count() const noexcept;

 private:
  struct Transition {
    std::vector<Region> regions;
    std::vector<Bytes> exemplars;  // capped at max_exemplars
    /// Observed server replies to this request, with occurrence counts.
    std::map<Bytes, std::size_t> replies;
    std::size_t sample_count = 0;
    int target = -1;
  };
  struct State {
    std::vector<Transition> transitions;
  };

  /// Finds the transition whose first exemplar is most similar to the
  /// message (>= threshold); -1 if none.
  [[nodiscard]] int find_cluster(const State& state,
                                 const Bytes& message) const;

  std::uint16_t port_;
  Options options_;
  std::vector<State> states_;
};

}  // namespace repro::proto
