#include "proto/fsm.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace repro::proto {

namespace {

/// Union-find over message indices for single-linkage micro-clustering.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Fsm Fsm::learn(const std::vector<Conversation>& training,
               const FsmOptions& options) {
  if (training.empty()) {
    throw ConfigError("Fsm::learn: empty training set");
  }
  Fsm fsm;
  fsm.port_ = training.front().dst_port;
  for (const Conversation& conversation : training) {
    if (conversation.dst_port != fsm.port_) {
      throw ConfigError("Fsm::learn: mixed destination ports in training set");
    }
  }
  fsm.states_.emplace_back();
  std::vector<const Conversation*> group;
  group.reserve(training.size());
  for (const Conversation& conversation : training) {
    group.push_back(&conversation);
  }
  fsm.learn_node(0, group, 0, options);
  return fsm;
}

void Fsm::learn_node(int state, const std::vector<const Conversation*>& group,
                     std::size_t depth, const FsmOptions& options) {
  // Conversations that still have a client message at this depth.
  std::vector<const Conversation*> active;
  std::vector<const Bytes*> messages;
  for (const Conversation* conversation : group) {
    const auto client = conversation->client_messages();
    if (depth < client.size()) {
      active.push_back(conversation);
      messages.push_back(client[depth]);
    }
  }
  if (active.empty()) return;

  // Micro-cluster the messages at this dialog position: single linkage
  // over pairwise LCS similarity.
  UnionFind groups(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    for (std::size_t j = i + 1; j < messages.size(); ++j) {
      if (groups.find(i) == groups.find(j)) continue;
      if (message_similarity(*messages[i], *messages[j]) >=
          options.similarity_threshold) {
        groups.unite(i, j);
      }
    }
  }

  // Materialize clusters in first-seen order so learning is
  // deterministic for a given training order.
  std::vector<std::size_t> roots;
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const std::size_t root = groups.find(i);
    const auto it = std::find(roots.begin(), roots.end(), root);
    if (it == roots.end()) {
      roots.push_back(root);
      members.push_back({i});
    } else {
      members[static_cast<std::size_t>(it - roots.begin())].push_back(i);
    }
  }

  for (const auto& cluster : members) {
    std::vector<const Bytes*> cluster_messages;
    std::vector<const Conversation*> cluster_conversations;
    for (const std::size_t index : cluster) {
      cluster_messages.push_back(messages[index]);
      cluster_conversations.push_back(active[index]);
    }
    Transition transition;
    transition.regions =
        region_analysis(cluster_messages, options.min_region_length);
    transition.target = static_cast<int>(states_.size());
    states_.emplace_back();
    states_[static_cast<std::size_t>(state)].transitions.push_back(
        std::move(transition));
    const int target =
        states_[static_cast<std::size_t>(state)].transitions.back().target;
    learn_node(target, cluster_conversations, depth + 1, options);
  }
}

std::optional<std::string> Fsm::match(const Conversation& conversation) const {
  if (conversation.dst_port != port_) return std::nullopt;
  std::string path = "p" + std::to_string(port_) + "/";
  int state = 0;
  bool first = true;
  for (const Bytes* message : conversation.client_messages()) {
    const State& node = states_[static_cast<std::size_t>(state)];
    int best = -1;
    std::size_t best_bytes = 0;
    for (std::size_t t = 0; t < node.transitions.size(); ++t) {
      const Transition& transition = node.transitions[t];
      if (!regions_match(transition.regions, *message)) continue;
      const std::size_t fixed_bytes = total_region_bytes(transition.regions);
      if (best < 0 || fixed_bytes > best_bytes) {
        best = static_cast<int>(t);
        best_bytes = fixed_bytes;
      }
    }
    if (best < 0) return std::nullopt;  // unknown activity -> proxy
    if (!first) path += ".";
    path += std::to_string(best);
    first = false;
    state = node.transitions[static_cast<std::size_t>(best)].target;
  }
  return path;
}

std::size_t Fsm::transition_count() const noexcept {
  std::size_t count = 0;
  for (const State& state : states_) count += state.transitions.size();
  return count;
}

std::vector<std::string> Fsm::all_paths() const {
  std::vector<std::string> paths;
  std::string prefix = "p" + std::to_string(port_) + "/";
  // Depth-first enumeration of root-to-leaf transition index sequences.
  struct Frame {
    int state;
    std::string path;
  };
  std::vector<Frame> stack{{0, prefix}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const State& node = states_[static_cast<std::size_t>(frame.state)];
    if (node.transitions.empty()) {
      paths.push_back(frame.path);
      continue;
    }
    for (std::size_t t = 0; t < node.transitions.size(); ++t) {
      std::string next = frame.path;
      if (next.back() != '/') next += ".";
      next += std::to_string(t);
      stack.push_back({node.transitions[t].target, std::move(next)});
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace repro::proto
