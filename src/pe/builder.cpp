#include "pe/builder.hpp"

#include <algorithm>

#include "util/byteio.hpp"
#include "util/error.hpp"

namespace repro::pe {

namespace {

constexpr std::uint32_t kDosHeaderSize = 64;
constexpr std::uint32_t kDosStubSize = 64;
constexpr std::uint32_t kPeHeaderOffset = kDosHeaderSize + kDosStubSize;  // 128
constexpr std::uint32_t kCoffHeaderSize = 20;
constexpr std::uint32_t kOptionalHeaderSize = 224;  // PE32 with 16 directories
constexpr std::uint32_t kSectionHeaderSize = 40;

constexpr std::uint32_t align_up(std::uint32_t value,
                                 std::uint32_t alignment) noexcept {
  return (value + alignment - 1) / alignment * alignment;
}

/// Serialized import tables for one section, positioned at `base_rva`.
struct ImportBlob {
  std::vector<std::uint8_t> bytes;
  std::uint32_t directory_rva = 0;
  std::uint32_t directory_size = 0;
};

ImportBlob build_imports(const std::vector<ImportSpec>& imports,
                         std::uint32_t base_rva) {
  ImportBlob blob;
  if (imports.empty()) return blob;

  // Layout: descriptor array (n + 1 terminator), then per-DLL
  // ILT + IAT (u32 thunks, NUL-terminated), then hint/name entries and
  // DLL name strings.
  const std::uint32_t descriptor_bytes =
      static_cast<std::uint32_t>((imports.size() + 1) * 20);

  std::uint32_t thunk_cursor = descriptor_bytes;
  std::vector<std::uint32_t> ilt_rva(imports.size());
  std::vector<std::uint32_t> iat_rva(imports.size());
  for (std::size_t i = 0; i < imports.size(); ++i) {
    const auto thunks =
        static_cast<std::uint32_t>((imports[i].symbols.size() + 1) * 4);
    ilt_rva[i] = base_rva + thunk_cursor;
    thunk_cursor += thunks;
    iat_rva[i] = base_rva + thunk_cursor;
    thunk_cursor += thunks;
  }

  // Hint/name table and DLL name strings.
  std::uint32_t string_cursor = thunk_cursor;
  std::vector<std::vector<std::uint32_t>> name_rva(imports.size());
  std::vector<std::uint32_t> dll_name_rva(imports.size());
  for (std::size_t i = 0; i < imports.size(); ++i) {
    for (const auto& symbol : imports[i].symbols) {
      name_rva[i].push_back(base_rva + string_cursor);
      // 2-byte hint + name + NUL, 2-aligned.
      std::uint32_t entry = 2 + static_cast<std::uint32_t>(symbol.size()) + 1;
      entry = align_up(entry, 2);
      string_cursor += entry;
    }
    dll_name_rva[i] = base_rva + string_cursor;
    string_cursor +=
        align_up(static_cast<std::uint32_t>(imports[i].dll.size()) + 1, 2);
  }

  ByteWriter w;
  // Descriptor array.
  for (std::size_t i = 0; i < imports.size(); ++i) {
    w.u32(ilt_rva[i]);      // OriginalFirstThunk
    w.u32(0);               // TimeDateStamp
    w.u32(0);               // ForwarderChain
    w.u32(dll_name_rva[i]); // Name
    w.u32(iat_rva[i]);      // FirstThunk
  }
  w.zeros(20);  // terminator descriptor

  // ILT + IAT per DLL.
  for (std::size_t i = 0; i < imports.size(); ++i) {
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::uint32_t rva : name_rva[i]) w.u32(rva);
      w.u32(0);
    }
  }

  // Hint/name entries and DLL names.
  for (std::size_t i = 0; i < imports.size(); ++i) {
    for (const auto& symbol : imports[i].symbols) {
      const std::size_t before = w.size();
      w.u16(0);  // hint
      w.text(symbol);
      w.u8(0);
      if ((w.size() - before) % 2 != 0) w.u8(0);
    }
    const std::size_t before = w.size();
    w.text(imports[i].dll);
    w.u8(0);
    if ((w.size() - before) % 2 != 0) w.u8(0);
  }

  blob.bytes = w.take();
  blob.directory_rva = base_rva;
  blob.directory_size = descriptor_bytes;
  return blob;
}

}  // namespace

std::vector<std::uint8_t> build_pe(const PeTemplate& tmpl) {
  if (tmpl.sections.empty()) {
    throw ConfigError("build_pe: template needs at least one section");
  }
  std::size_t import_holders = 0;
  for (const auto& section : tmpl.sections) {
    import_holders += section.holds_imports ? 1 : 0;
  }
  if (!tmpl.imports.empty() && import_holders != 1) {
    throw ConfigError(
        "build_pe: exactly one section must hold imports when imports are "
        "declared");
  }

  const auto nsections = static_cast<std::uint32_t>(tmpl.sections.size());
  const std::uint32_t headers_size = align_up(
      kPeHeaderOffset + 4 + kCoffHeaderSize + kOptionalHeaderSize +
          nsections * kSectionHeaderSize,
      kFileAlignment);

  // Lay out sections: virtual addresses are section-aligned and raw data
  // is file-aligned, both assigned consecutively.
  struct Layout {
    std::uint32_t virtual_address = 0;
    std::uint32_t virtual_size = 0;
    std::uint32_t raw_offset = 0;
    std::uint32_t raw_size = 0;
    std::vector<std::uint8_t> raw;
  };
  std::vector<Layout> layouts(tmpl.sections.size());

  std::uint32_t rva_cursor = kSectionAlignment;
  std::uint32_t raw_cursor = headers_size;
  std::uint32_t import_dir_rva = 0;
  std::uint32_t import_dir_size = 0;
  std::uint32_t iat_rva = 0;
  std::uint32_t iat_size = 0;

  for (std::size_t i = 0; i < tmpl.sections.size(); ++i) {
    const SectionSpec& spec = tmpl.sections[i];
    Layout& layout = layouts[i];
    layout.raw = spec.content;
    if (spec.holds_imports && !tmpl.imports.empty()) {
      const std::uint32_t imports_rva =
          rva_cursor + static_cast<std::uint32_t>(layout.raw.size());
      ImportBlob blob = build_imports(tmpl.imports, imports_rva);
      import_dir_rva = blob.directory_rva;
      import_dir_size = blob.directory_size;
      // The IAT directory is not strictly needed by our parser; expose
      // the combined thunk area for realism.
      iat_rva = imports_rva;
      iat_size = static_cast<std::uint32_t>(blob.bytes.size());
      layout.raw.insert(layout.raw.end(), blob.bytes.begin(), blob.bytes.end());
    }
    if (i + 1 == tmpl.sections.size() && tmpl.target_file_size.has_value()) {
      // Pad the image to the requested total size through the last
      // section's raw data.
      const std::uint32_t unpadded =
          raw_cursor +
          align_up(static_cast<std::uint32_t>(layout.raw.size()),
                   kFileAlignment);
      const std::uint32_t target = *tmpl.target_file_size;
      if (target < unpadded || target % kFileAlignment != 0) {
        throw ConfigError(
            "build_pe: target_file_size " + std::to_string(target) +
            " unreachable (unpadded size " + std::to_string(unpadded) +
            ", alignment " + std::to_string(kFileAlignment) + ")");
      }
      layout.raw.resize(layout.raw.size() + (target - unpadded), 0);
    }
    layout.virtual_address = rva_cursor;
    layout.virtual_size = static_cast<std::uint32_t>(layout.raw.size());
    layout.raw_offset = raw_cursor;
    layout.raw_size = align_up(layout.virtual_size, kFileAlignment);
    rva_cursor += align_up(std::max(layout.virtual_size, 1u), kSectionAlignment);
    raw_cursor += layout.raw_size;
  }
  const std::uint32_t size_of_image = rva_cursor;

  std::uint32_t size_of_code = 0;
  std::uint32_t size_of_data = 0;
  for (std::size_t i = 0; i < tmpl.sections.size(); ++i) {
    if (tmpl.sections[i].characteristics & kSectionCode) {
      size_of_code += layouts[i].raw_size;
    } else {
      size_of_data += layouts[i].raw_size;
    }
  }

  // Entry point: start of the first executable section, else first section.
  std::uint32_t entry_point = layouts[0].virtual_address;
  std::uint32_t base_of_code = layouts[0].virtual_address;
  for (std::size_t i = 0; i < tmpl.sections.size(); ++i) {
    if (tmpl.sections[i].characteristics & kSectionExecute) {
      entry_point = layouts[i].virtual_address;
      base_of_code = layouts[i].virtual_address;
      break;
    }
  }

  ByteWriter w;
  // --- DOS header ---
  w.text("MZ");
  w.u16(0x0090);  // bytes on last page
  w.u16(0x0003);  // pages
  w.zeros(54);    // remaining legacy fields up to e_lfanew at 0x3c
  w.u32(kPeHeaderOffset);  // e_lfanew at offset 0x3c
  // --- DOS stub ---
  w.fixed_text("This program cannot be run in DOS mode.\r\n$", kDosStubSize);

  // --- PE signature + COFF header ---
  w.text("PE");
  w.u8(0);
  w.u8(0);
  w.u16(tmpl.machine);
  w.u16(static_cast<std::uint16_t>(nsections));
  w.u32(tmpl.timestamp);
  w.u32(0);  // PointerToSymbolTable
  w.u32(0);  // NumberOfSymbols
  w.u16(static_cast<std::uint16_t>(kOptionalHeaderSize));
  w.u16(0x0102);  // Characteristics: EXECUTABLE_IMAGE | 32BIT_MACHINE

  // --- Optional header (PE32) ---
  w.u16(0x010b);  // magic
  w.u8(tmpl.linker_major);
  w.u8(tmpl.linker_minor);
  w.u32(size_of_code);
  w.u32(size_of_data);
  w.u32(0);  // SizeOfUninitializedData
  w.u32(entry_point);
  w.u32(base_of_code);
  w.u32(0);  // BaseOfData (informational)
  w.u32(kImageBase);
  w.u32(kSectionAlignment);
  w.u32(kFileAlignment);
  w.u16(tmpl.os_major);
  w.u16(tmpl.os_minor);
  w.u16(1);  // image version major
  w.u16(0);  // image version minor
  w.u16(tmpl.os_major);  // subsystem version tracks OS version
  w.u16(tmpl.os_minor);
  w.u32(0);  // Win32VersionValue
  w.u32(size_of_image);
  w.u32(headers_size);
  w.u32(0);  // CheckSum
  w.u16(tmpl.subsystem);
  w.u16(0);  // DllCharacteristics
  w.u32(0x0010'0000);  // SizeOfStackReserve
  w.u32(0x0000'1000);  // SizeOfStackCommit
  w.u32(0x0010'0000);  // SizeOfHeapReserve
  w.u32(0x0000'1000);  // SizeOfHeapCommit
  w.u32(0);  // LoaderFlags
  w.u32(16); // NumberOfRvaAndSizes
  for (int dir = 0; dir < 16; ++dir) {
    if (dir == 1) {  // import directory
      w.u32(import_dir_rva);
      w.u32(import_dir_size);
    } else if (dir == 12) {  // IAT directory
      w.u32(iat_rva);
      w.u32(iat_size);
    } else {
      w.u32(0);
      w.u32(0);
    }
  }

  // --- Section table ---
  for (std::size_t i = 0; i < tmpl.sections.size(); ++i) {
    w.fixed_text(tmpl.sections[i].name, 8);
    w.u32(layouts[i].virtual_size);
    w.u32(layouts[i].virtual_address);
    w.u32(layouts[i].raw_size);
    w.u32(layouts[i].raw_offset);
    w.u32(0);  // PointerToRelocations
    w.u32(0);  // PointerToLinenumbers
    w.u16(0);  // NumberOfRelocations
    w.u16(0);  // NumberOfLinenumbers
    w.u32(tmpl.sections[i].characteristics);
  }

  // --- Section raw data ---
  for (const Layout& layout : layouts) {
    w.align(kFileAlignment);
    if (w.size() != layout.raw_offset) {
      // Defensive: layout math and serialization must agree.
      throw ConfigError("build_pe: layout mismatch at section raw data");
    }
    w.bytes(layout.raw);
    w.align(kFileAlignment);
  }

  return w.take();
}

std::uint32_t natural_size(const PeTemplate& tmpl) {
  PeTemplate unpadded = tmpl;
  unpadded.target_file_size.reset();
  return static_cast<std::uint32_t>(build_pe(unpadded).size());
}

}  // namespace repro::pe
