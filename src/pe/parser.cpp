#include "pe/parser.hpp"

#include <algorithm>

#include "util/byteio.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace repro::pe {

namespace {

/// Translate an RVA to a file offset using the section table.
std::size_t rva_to_offset(const std::vector<SectionInfo>& sections,
                          std::uint32_t rva) {
  for (const SectionInfo& s : sections) {
    if (rva >= s.virtual_address && rva < s.virtual_address + s.raw_size) {
      return s.raw_offset + (rva - s.virtual_address);
    }
  }
  throw ParseError("parse_pe: RVA " + std::to_string(rva) +
                   " maps to no section");
}

std::vector<ImportInfo> parse_imports(ByteReader& r,
                                      const std::vector<SectionInfo>& sections,
                                      std::uint32_t import_dir_rva) {
  std::vector<ImportInfo> imports;
  if (import_dir_rva == 0) return imports;
  std::size_t descriptor_offset = rva_to_offset(sections, import_dir_rva);
  while (true) {
    r.seek(descriptor_offset);
    const std::uint32_t original_first_thunk = r.u32();
    r.skip(8);  // TimeDateStamp, ForwarderChain
    const std::uint32_t name_rva = r.u32();
    const std::uint32_t first_thunk = r.u32();
    if (original_first_thunk == 0 && name_rva == 0 && first_thunk == 0) break;

    ImportInfo info;
    info.dll = r.cstring_at(rva_to_offset(sections, name_rva));
    const std::uint32_t thunk_rva =
        original_first_thunk != 0 ? original_first_thunk : first_thunk;
    std::size_t thunk_offset = rva_to_offset(sections, thunk_rva);
    while (true) {
      r.seek(thunk_offset);
      const std::uint32_t entry = r.u32();
      if (entry == 0) break;
      if ((entry & 0x8000'0000u) == 0) {  // import by name
        // Skip the 2-byte hint before the symbol name.
        info.symbols.push_back(
            r.cstring_at(rva_to_offset(sections, entry) + 2));
      } else {  // import by ordinal
        info.symbols.push_back("#" + std::to_string(entry & 0xffff));
      }
      thunk_offset += 4;
    }
    imports.push_back(std::move(info));
    descriptor_offset += 20;
  }
  return imports;
}

}  // namespace

bool looks_like_pe(std::span<const std::uint8_t> image) noexcept {
  if (image.size() < 0x40) return false;
  if (image[0] != 'M' || image[1] != 'Z') return false;
  const std::uint32_t pe_offset = static_cast<std::uint32_t>(image[0x3c]) |
                                  static_cast<std::uint32_t>(image[0x3d]) << 8 |
                                  static_cast<std::uint32_t>(image[0x3e]) << 16 |
                                  static_cast<std::uint32_t>(image[0x3f]) << 24;
  if (pe_offset + 4 > image.size()) return false;
  return image[pe_offset] == 'P' && image[pe_offset + 1] == 'E' &&
         image[pe_offset + 2] == 0 && image[pe_offset + 3] == 0;
}

PeInfo parse_pe(std::span<const std::uint8_t> image) {
  ByteReader r{image};
  if (r.fixed_text(2) != "MZ") {
    throw ParseError("parse_pe: missing MZ signature");
  }
  r.seek(0x3c);
  const std::uint32_t pe_offset = r.u32();
  r.seek(pe_offset);
  if (r.fixed_text(4) != std::string{"PE\0\0", 4}) {
    throw ParseError("parse_pe: missing PE signature");
  }

  PeInfo info;
  info.machine = r.u16();
  const std::uint16_t nsections = r.u16();
  info.timestamp = r.u32();
  r.skip(8);  // symbol table pointer + count
  const std::uint16_t optional_size = r.u16();
  r.skip(2);  // characteristics
  const std::size_t optional_start = r.offset();

  if (r.u16() != 0x010b) {
    throw ParseError("parse_pe: not a PE32 optional header");
  }
  info.linker_major = r.u8();
  info.linker_minor = r.u8();
  r.skip(12);  // code/data sizes
  info.entry_point = r.u32();
  r.skip(8);   // BaseOfCode, BaseOfData
  r.skip(12);  // ImageBase, SectionAlignment, FileAlignment
  info.os_major = r.u16();
  info.os_minor = r.u16();
  r.skip(8);  // image + subsystem versions
  r.skip(4);  // Win32VersionValue
  info.size_of_image = r.u32();
  r.skip(4);  // SizeOfHeaders
  r.skip(4);  // CheckSum
  info.subsystem = r.u16();
  r.skip(2);   // DllCharacteristics
  r.skip(16);  // stack/heap sizes
  r.skip(4);   // LoaderFlags
  const std::uint32_t directory_count = r.u32();
  std::uint32_t import_dir_rva = 0;
  for (std::uint32_t dir = 0; dir < directory_count; ++dir) {
    const std::uint32_t rva = r.u32();
    r.skip(4);  // size
    if (dir == 1) import_dir_rva = rva;
  }

  r.seek(optional_start + optional_size);
  info.sections.reserve(nsections);
  for (std::uint16_t i = 0; i < nsections; ++i) {
    SectionInfo section;
    section.raw_name = r.fixed_text(8);
    section.virtual_size = r.u32();
    section.virtual_address = r.u32();
    section.raw_size = r.u32();
    section.raw_offset = r.u32();
    r.skip(12);  // relocations/line numbers
    section.characteristics = r.u32();
    if (static_cast<std::size_t>(section.raw_offset) + section.raw_size >
        image.size()) {
      throw ParseError("parse_pe: section '" + trim(section.raw_name) +
                       "' raw data extends past end of image");
    }
    info.sections.push_back(std::move(section));
  }

  info.imports = parse_imports(r, info.sections, import_dir_rva);
  return info;
}

std::vector<std::string> PeInfo::kernel32_symbols() const {
  std::vector<std::string> out;
  for (const ImportInfo& import : imports) {
    if (to_lower(import.dll) == "kernel32.dll") {
      out.insert(out.end(), import.symbols.begin(), import.symbols.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace repro::pe
