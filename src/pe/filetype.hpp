// libmagic-style file type detection.
//
// Table 1 lists "File type according to libmagic signatures" as a
// mu-dimension feature (7 invariants in the paper's dataset). This is a
// small signature-based detector producing libmagic-like description
// strings for the file classes that show up in a honeypot malware
// collection: PE executables, plain MZ executables, HTML (Allaple
// infects local HTML files), archives, and corrupted downloads.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace repro::pe {

/// Human-readable type string, e.g.
/// "MS-DOS executable PE for MS Windows (GUI) Intel 80386 32-bit".
[[nodiscard]] std::string detect_file_type(std::span<const std::uint8_t> data);

}  // namespace repro::pe
