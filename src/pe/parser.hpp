// PE32 parser (pefile substitute).
//
// Re-extracts from raw bytes every PE feature EPM clustering uses.
// Truncated or corrupted images (the paper reports Nepenthes download
// failures producing such samples) throw ParseError, which the
// enrichment pipeline records as "not analyzable".
#pragma once

#include <cstdint>
#include <span>

#include "pe/image.hpp"

namespace repro::pe {

/// True if the buffer starts with an MZ header that points at a valid
/// "PE\0\0" signature inside the buffer.
[[nodiscard]] bool looks_like_pe(std::span<const std::uint8_t> image) noexcept;

/// Parses the PE headers, section table and import tables.
/// Throws ParseError on any truncation or structural inconsistency.
[[nodiscard]] PeInfo parse_pe(std::span<const std::uint8_t> image);

}  // namespace repro::pe
