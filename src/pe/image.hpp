// Portable Executable (PE32) structures shared by the builder and parser.
//
// The mu-dimension of EPM clustering keys on PE header characteristics
// (Table 1 of the paper): machine type, number of sections, number of
// imported DLLs, OS version, linker version, section names, imported
// DLLs and referenced Kernel32.dll symbols. The library builds real PE
// byte images for synthetic malware samples and re-extracts all those
// features by parsing the bytes, exactly as the paper does with pefile.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace repro::pe {

/// IMAGE_FILE_MACHINE_I386 — rendered as decimal 332 in the paper's
/// pattern dumps.
constexpr std::uint16_t kMachineI386 = 0x014c;

constexpr std::uint32_t kFileAlignment = 0x200;
constexpr std::uint32_t kSectionAlignment = 0x1000;
constexpr std::uint32_t kImageBase = 0x0040'0000;

/// Section characteristic flags (subset).
constexpr std::uint32_t kSectionCode = 0x0000'0020;
constexpr std::uint32_t kSectionInitializedData = 0x0000'0040;
constexpr std::uint32_t kSectionExecute = 0x2000'0000;
constexpr std::uint32_t kSectionRead = 0x4000'0000;
constexpr std::uint32_t kSectionWrite = 0x8000'0000;

/// Windows subsystems (subset).
constexpr std::uint16_t kSubsystemGui = 2;
constexpr std::uint16_t kSubsystemConsole = 3;

/// One import descriptor: a DLL and the symbols imported from it.
struct ImportSpec {
  std::string dll;
  std::vector<std::string> symbols;
};

/// Input description of one section for the builder.
struct SectionSpec {
  /// Raw 8-byte section name; shorter names are NUL-padded on build.
  std::string name;
  std::uint32_t characteristics = kSectionRead;
  std::vector<std::uint8_t> content;
  /// If set, the builder appends the import tables after `content`
  /// inside this section. Exactly one section must hold imports when
  /// the template declares any.
  bool holds_imports = false;
};

/// Full input description of a PE image.
struct PeTemplate {
  std::uint16_t machine = kMachineI386;
  /// Rendered by the feature extractor as major*10+minor, matching the
  /// paper's "linkerversion=92" style (linker 9.2).
  std::uint8_t linker_major = 9;
  std::uint8_t linker_minor = 2;
  std::uint16_t os_major = 6;
  std::uint16_t os_minor = 4;
  std::uint16_t subsystem = kSubsystemGui;
  std::uint32_t timestamp = 0;
  std::vector<SectionSpec> sections;
  std::vector<ImportSpec> imports;
  /// If set, the last section is zero-padded so the final image has
  /// exactly this size. Must be >= the unpadded size and a multiple of
  /// kFileAlignment. Polymorphic families in the landscape use this to
  /// realize the paper's size-stable mutation behaviour.
  std::optional<std::uint32_t> target_file_size;
};

/// One parsed section.
struct SectionInfo {
  /// Raw 8 bytes of the name field including NUL padding — the paper
  /// prints these verbatim (".text\x00\x00\x00").
  std::string raw_name;
  std::uint32_t virtual_size = 0;
  std::uint32_t virtual_address = 0;
  std::uint32_t raw_size = 0;
  std::uint32_t raw_offset = 0;
  std::uint32_t characteristics = 0;
};

/// One parsed import descriptor.
struct ImportInfo {
  std::string dll;
  std::vector<std::string> symbols;
};

/// Everything the parser extracts from a PE image.
struct PeInfo {
  std::uint16_t machine = 0;
  std::uint16_t subsystem = 0;
  std::uint8_t linker_major = 0;
  std::uint8_t linker_minor = 0;
  std::uint16_t os_major = 0;
  std::uint16_t os_minor = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t entry_point = 0;
  std::uint32_t size_of_image = 0;
  std::vector<SectionInfo> sections;
  std::vector<ImportInfo> imports;

  /// Table-1 derived features.
  [[nodiscard]] int linker_version() const noexcept {
    return linker_major * 10 + linker_minor;
  }
  [[nodiscard]] int os_version() const noexcept {
    return os_major * 10 + os_minor;
  }
  [[nodiscard]] std::size_t dll_count() const noexcept {
    return imports.size();
  }
  /// Symbols imported from KERNEL32.dll (case-insensitive DLL match),
  /// sorted; empty when the DLL is not imported.
  [[nodiscard]] std::vector<std::string> kernel32_symbols() const;
};

}  // namespace repro::pe
