#include "pe/filetype.hpp"

#include "pe/image.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace repro::pe {

namespace {

bool starts_with(std::span<const std::uint8_t> data, std::string_view magic) {
  if (data.size() < magic.size()) return false;
  for (std::size_t i = 0; i < magic.size(); ++i) {
    if (data[i] != static_cast<std::uint8_t>(magic[i])) return false;
  }
  return true;
}

}  // namespace

std::string detect_file_type(std::span<const std::uint8_t> data) {
  if (data.empty()) return "empty";
  if (looks_like_pe(data)) {
    try {
      const PeInfo info = parse_pe(data);
      std::string out = "MS-DOS executable PE for MS Windows";
      out += info.subsystem == kSubsystemGui ? " (GUI)" : " (console)";
      if (info.machine == kMachineI386) out += " Intel 80386 32-bit";
      return out;
    } catch (const ParseError&) {
      // Headers look like PE but the body is truncated/corrupt; fall
      // through to the weaker MZ signature.
    }
  }
  if (starts_with(data, "MZ")) return "MS-DOS executable";
  if (starts_with(data, "\x7f""ELF")) return "ELF 32-bit LSB executable";
  if (starts_with(data, "<html") || starts_with(data, "<HTML")) {
    return "HTML document text";
  }
  if (starts_with(data, "PK\x03\x04")) return "Zip archive data";
  if (starts_with(data, "#!")) return "script text executable";
  return "data";
}

}  // namespace repro::pe
