// PE32 image builder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pe/image.hpp"

namespace repro::pe {

/// Serializes a PeTemplate into a well-formed PE32 byte image: DOS
/// header + stub, COFF header, optional header with data directories,
/// section table, file-aligned section data and import tables.
///
/// Throws ConfigError on inconsistent templates (no sections, more than
/// one import-holding section, unreachable target_file_size, ...).
[[nodiscard]] std::vector<std::uint8_t> build_pe(const PeTemplate& tmpl);

/// Size in bytes that build_pe would produce for the template with
/// target_file_size cleared — useful for choosing reachable targets.
[[nodiscard]] std::uint32_t natural_size(const PeTemplate& tmpl);

}  // namespace repro::pe
