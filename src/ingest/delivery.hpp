// Sensor-to-collector delivery with deterministic retry/backoff.
//
// Each WAL record models one event batch a sensor ships to the
// collector. Delivery can fail (the decision comes from src/fault, so
// chaos sweeps cover it); failures are retried under a capped
// exponential backoff with pure-hash jitter and a simtime deadline.
// Everything is a pure function of (policy, record key, fault plan):
// no wall clock, no shared RNG stream, so a kill-resume run makes the
// exact same delivery decisions as an uninterrupted one. Exhausted
// retries never drop the record — it is spooled and still enters the
// WAL in order (losing it would break the byte-identity guarantee);
// exhaustion is surfaced through the injector's counters instead.
#pragma once

#include <cstdint>

#include "util/simtime.hpp"

namespace repro::fault {
class FaultInjector;
}  // namespace repro::fault

namespace repro::ingest {

struct RetryPolicy {
  /// Total tries per record, first attempt included.
  int max_attempts = 4;
  /// Backoff before retry N doubles from this, capped below.
  std::int64_t base_backoff_seconds = 2;
  std::int64_t max_backoff_seconds = 300;
  /// Retrying stops once the next wait would pass start + timeout.
  std::int64_t timeout_seconds = 3600;
  /// Seed for the pure-hash jitter (±25% around the exponential step).
  std::uint64_t jitter_seed = 0x5347'4e45'5400'2010ULL;

  /// Throws ConfigError on non-positive attempts/backoff/timeout.
  void validate() const;
};

/// Jittered wait before the retry that follows failed attempt
/// `attempt` (1-based). Deterministic in (policy, key, attempt);
/// always at least one second.
[[nodiscard]] std::int64_t backoff_delay(const RetryPolicy& policy,
                                         std::uint64_t key, int attempt);

struct DeliveryOutcome {
  int attempts = 1;
  std::int64_t backoff_seconds = 0;  // total simulated wait
  bool exhausted = false;  // gave up retrying; record spooled, not lost
  SimTime completed;       // when the record was handed onward
};

/// Runs the retry loop for the record keyed `key` whose delivery began
/// at `start`. Failure decisions and retry accounting go through
/// `faults` (site "ingest.delivery").
[[nodiscard]] DeliveryOutcome deliver_record(const RetryPolicy& policy,
                                             std::uint64_t key, SimTime start,
                                             fault::FaultInjector& faults);

}  // namespace repro::ingest
