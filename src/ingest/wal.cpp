#include "ingest/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "snapshot/checkpoint.hpp"
#include "snapshot/crc32.hpp"
#include "util/byteio.hpp"
#include "util/error.hpp"

namespace repro::ingest {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_io(const std::string& action, const std::string& path) {
  throw IoError("wal: cannot " + action + " " + path + ": " +
                std::strerror(errno));
}

void write_fully(int fd, std::span<const std::uint8_t> bytes,
                 const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_io("fsync", path);
}

/// fsyncs the directory so a just-created or just-renamed entry in it
/// survives a crash — same discipline as the snapshot atomic_write.
void fsync_dir(const std::string& directory) {
  const int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("open directory", directory);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("fsync directory", directory);
  }
  ::close(fd);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw IoError("wal: cannot read " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  if (in.bad()) throw IoError("wal: cannot read " + path);
  return bytes;
}

// Raw little-endian field reads; bounds are checked by the callers
// before slicing, never by these.
std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t off) {
  return static_cast<std::uint32_t>(bytes[off]) |
         static_cast<std::uint32_t>(bytes[off + 1]) << 8 |
         static_cast<std::uint32_t>(bytes[off + 2]) << 16 |
         static_cast<std::uint32_t>(bytes[off + 3]) << 24;
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t off) {
  return static_cast<std::uint64_t>(get_u32(bytes, off)) |
         static_cast<std::uint64_t>(get_u32(bytes, off + 4)) << 32;
}

bool parse_segment_name(const std::string& name, std::uint64_t& index,
                        bool& open) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSealed = ".seg";
  constexpr std::string_view kOpen = ".seg.open";
  if (!name.starts_with(kPrefix)) return false;
  std::string_view digits{name};
  digits.remove_prefix(kPrefix.size());
  if (digits.ends_with(kOpen)) {
    open = true;
    digits.remove_suffix(kOpen.size());
  } else if (digits.ends_with(kSealed)) {
    open = false;
    digits.remove_suffix(kSealed.size());
  } else {
    return false;
  }
  if (digits.empty() || digits.size() > 19) return false;
  index = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// What a scan of one segment file found. `records` is the run of
/// frames continuing the expected record sequence; `valid_prefix` is
/// how many leading bytes of the file were structurally sound (header
/// plus every frame processed before damage, including skipped
/// duplicates, which stay on disk harmlessly).
struct SegmentScan {
  std::vector<std::vector<std::uint8_t>> records;
  std::uint64_t duplicates = 0;
  std::size_t valid_prefix = 0;
  bool header_ok = false;
  bool stale = false;  // foreign fingerprint
  bool ahead = false;  // first record index past the contiguous prefix
  bool torn = false;   // file ends mid-write
  bool corrupt = false;  // checksum/structure damage mid-file
};

SegmentScan scan_segment(std::span<const std::uint8_t> bytes,
                         std::uint64_t fingerprint,
                         std::uint64_t filename_index,
                         std::uint64_t expected_record) {
  SegmentScan scan;
  if (bytes.size() < kWalSegmentHeaderBytes) {
    scan.torn = true;
    return scan;
  }
  if (get_u32(bytes, 32) != snapshot::crc32(bytes.first(32)) ||
      get_u32(bytes, 0) != kWalSegmentMagic ||
      get_u32(bytes, 4) != kWalVersion ||
      get_u64(bytes, 16) != filename_index) {
    scan.corrupt = true;
    return scan;
  }
  if (get_u64(bytes, 8) != fingerprint) {
    scan.stale = true;
    return scan;
  }
  scan.header_ok = true;
  if (get_u64(bytes, 24) > expected_record) {
    // Frames before this segment's first record are missing (an earlier
    // segment was lost or quarantined); nothing here can extend the
    // contiguous prefix.
    scan.ahead = true;
    return scan;
  }

  std::size_t off = kWalSegmentHeaderBytes;
  std::uint64_t next = expected_record;
  scan.valid_prefix = off;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    if (remaining < kWalFrameHeaderBytes) {
      scan.torn = true;
      break;
    }
    const std::span<const std::uint8_t> header =
        bytes.subspan(off, kWalFrameHeaderBytes);
    if (get_u32(header, 20) != snapshot::crc32(header.first(20)) ||
        get_u32(header, 0) != kWalFrameMagic) {
      scan.corrupt = true;
      break;
    }
    const std::size_t payload_length = get_u32(header, 4);
    const std::uint64_t record_index = get_u64(header, 8);
    if (remaining - kWalFrameHeaderBytes < payload_length) {
      // Header intact, payload cut off: the write died mid-frame.
      scan.torn = true;
      break;
    }
    const std::span<const std::uint8_t> payload =
        bytes.subspan(off + kWalFrameHeaderBytes, payload_length);
    if (get_u32(header, 16) != snapshot::crc32(payload)) {
      scan.corrupt = true;
      break;
    }
    if (record_index > next) {
      // A gap inside one segment means frames vanished mid-file.
      scan.corrupt = true;
      break;
    }
    if (record_index < next) {
      ++scan.duplicates;
    } else {
      scan.records.emplace_back(payload.begin(), payload.end());
      ++next;
    }
    off += kWalFrameHeaderBytes + payload_length;
    scan.valid_prefix = off;
  }
  return scan;
}

}  // namespace

void WalOptions::validate() const {
  if (directory.empty()) {
    throw ConfigError("wal: directory must not be empty");
  }
  if (segment_bytes == 0) {
    throw ConfigError("wal: segment_bytes must be positive");
  }
}

std::vector<std::uint8_t> encode_segment_header(std::uint64_t fingerprint,
                                                std::uint64_t segment_index,
                                                std::uint64_t first_record) {
  ByteWriter writer;
  writer.u32(kWalSegmentMagic);
  writer.u32(kWalVersion);
  writer.u64(fingerprint);
  writer.u64(segment_index);
  writer.u64(first_record);
  writer.u32(snapshot::crc32(writer.data()));
  return writer.take();
}

std::vector<std::uint8_t> encode_frame(std::uint64_t record_index,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > UINT32_MAX) {
    throw ConfigError("wal: frame payload too large");
  }
  ByteWriter writer;
  writer.u32(kWalFrameMagic);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u64(record_index);
  writer.u32(snapshot::crc32(payload));
  writer.u32(snapshot::crc32(writer.data()));
  writer.bytes(payload);
  return writer.take();
}

std::string segment_filename(std::uint64_t segment_index, bool open) {
  std::string digits = std::to_string(segment_index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  std::string name = "wal-" + digits + ".seg";
  if (open) name += ".open";
  return name;
}

RecoveredWal recover_wal(const WalOptions& options, std::uint64_t fingerprint,
                         IngestReport& report) {
  options.validate();
  fs::create_directories(options.directory);

  struct Entry {
    std::uint64_t index = 0;
    bool open = false;
    std::string path;
  };
  std::vector<Entry> entries;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.directory)) {
    if (!entry.is_regular_file()) continue;
    Entry parsed;
    if (!parse_segment_name(entry.path().filename().string(), parsed.index,
                            parsed.open)) {
      continue;
    }
    parsed.path = entry.path().string();
    entries.push_back(std::move(parsed));
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.index != b.index) return a.index < b.index;
    return !a.open && b.open;  // a sealed twin outranks its open leftover
  });

  const auto quarantine_whole = [&report](const std::string& path) {
    std::error_code ec;
    std::uintmax_t size = fs::file_size(path, ec);
    if (ec) size = 0;
    // Best-effort evidence move, not a durability publish: recovery
    // correctness never depends on the quarantined file surviving a
    // crash — losing it just loses debug evidence, and the fallback is
    // deletion anyway.
    // repro-lint: allow(RL010) quarantine rename is not a durability publish
    fs::rename(path, snapshot::unique_quarantine_path(path), ec);
    if (ec) fs::remove(path, ec);  // last resort: never rescan it
    ++report.quarantined_files;
    report.bytes_dropped += size;
  };

  RecoveredWal result;
  std::uint64_t expected = 0;
  std::uint64_t max_index = 0;
  bool seen_open = false;
  for (const Entry& entry : entries) {
    max_index = std::max(max_index, entry.index);
    ++report.segments_scanned;
    if (seen_open) {
      // Nothing may follow the open tail; a straggler here is a foreign
      // or duplicated file.
      quarantine_whole(entry.path);
      continue;
    }
    if (entry.open) seen_open = true;

    const std::vector<std::uint8_t> bytes = read_file(entry.path);
    const SegmentScan scan =
        scan_segment(bytes, fingerprint, entry.index, expected);
    report.duplicate_frames += scan.duplicates;
    if (scan.stale) {
      ++report.stale_segments;
      quarantine_whole(entry.path);
      continue;
    }
    if (!scan.header_ok) {
      if (scan.torn) {
        ++report.torn_tails;
      } else {
        ++report.corrupt_frames;
      }
      quarantine_whole(entry.path);
      continue;
    }
    if (scan.ahead) {
      quarantine_whole(entry.path);
      continue;
    }

    expected += scan.records.size();
    report.records_recovered += scan.records.size();
    for (const std::vector<std::uint8_t>& record : scan.records) {
      result.records.push_back(record);
    }
    if (scan.torn || scan.corrupt) {
      report.bytes_dropped += bytes.size() - scan.valid_prefix;
      if (scan.torn) ++report.torn_tails;
      if (scan.corrupt) {
        ++report.corrupt_frames;
        // Keep the damaged original as evidence, then cut the live file
        // back to its clean prefix so the stream continues from it.
        std::error_code ec;
        fs::copy_file(entry.path,
                      snapshot::unique_quarantine_path(entry.path), ec);
        if (!ec) ++report.quarantined_files;
      }
      std::error_code ec;
      fs::resize_file(entry.path, scan.valid_prefix, ec);
      if (ec) throw IoError("wal: cannot truncate " + entry.path);
    }
    if (entry.open) {
      result.open_tail = true;
      result.open_tail_index = entry.index;
    }
  }
  result.next_segment_index = std::max<std::uint64_t>(max_index + 1, 1);
  return result;
}

WalWriter::WalWriter(WalOptions options, std::uint64_t fingerprint,
                     const RecoveredWal& recovered, IngestReport* report)
    : options_(std::move(options)), fingerprint_(fingerprint), report_(report) {
  options_.validate();
  fs::create_directories(options_.directory);
  next_record_ = recovered.records.size();
  segment_index_ = recovered.next_segment_index;
  if (recovered.open_tail) {
    segment_index_ = recovered.open_tail_index;
    const std::string path =
        (fs::path{options_.directory} /
         segment_filename(segment_index_, /*open=*/true))
            .string();
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) throw_io("open", path);
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) throw IoError("wal: cannot stat " + path);
    segment_bytes_written_ = size;
  }
}

WalWriter::~WalWriter() { close_fd(); }

void WalWriter::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void WalWriter::open_segment() {
  const std::string path = (fs::path{options_.directory} /
                            segment_filename(segment_index_, /*open=*/true))
                               .string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_io("open", path);
  const std::vector<std::uint8_t> header =
      encode_segment_header(fingerprint_, segment_index_, next_record_);
  write_fully(fd_, header, path);
  if (options_.sync_every_append) fsync_or_throw(fd_, path);
  // The new file's directory entry must be durable before any frame in
  // it is acknowledged.
  fsync_dir(options_.directory);
  segment_bytes_written_ = header.size();
}

void WalWriter::append(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) open_segment();
  const std::string path = (fs::path{options_.directory} /
                            segment_filename(segment_index_, /*open=*/true))
                               .string();
  const std::vector<std::uint8_t> frame = encode_frame(next_record_, payload);
  write_fully(fd_, frame, path);
  if (options_.sync_every_append) fsync_or_throw(fd_, path);
  segment_bytes_written_ += frame.size();
  ++next_record_;
  if (report_ != nullptr) {
    ++report_->records_appended;
    report_->bytes_appended += frame.size();
  }
  if (segment_bytes_written_ >= options_.segment_bytes) seal();
}

void WalWriter::sync() {
  if (fd_ < 0) return;
  fsync_or_throw(fd_, (fs::path{options_.directory} /
                       segment_filename(segment_index_, /*open=*/true))
                          .string());
}

void WalWriter::seal() {
  if (fd_ < 0 || segment_bytes_written_ <= kWalSegmentHeaderBytes) return;
  const std::string open_path =
      (fs::path{options_.directory} /
       segment_filename(segment_index_, /*open=*/true))
          .string();
  const std::string sealed_path =
      (fs::path{options_.directory} /
       segment_filename(segment_index_, /*open=*/false))
          .string();
  fsync_or_throw(fd_, open_path);
  close_fd();
  if (std::rename(open_path.c_str(), sealed_path.c_str()) != 0) {
    throw_io("rename", open_path);
  }
  fsync_dir(options_.directory);
  segment_bytes_written_ = 0;
  ++segment_index_;
  ++seals_done_;
  if (report_ != nullptr) ++report_->segments_sealed;
  if (options_.fail_after_seal != 0 &&
      seals_done_ == options_.fail_after_seal) {
    throw snapshot::CheckpointInterrupted(
        "simulated crash after sealing wal segment " + sealed_path);
  }
}

}  // namespace repro::ingest
