// Crash-safe event write-ahead log.
//
// An append-only log of opaque record payloads, split into segment
// files. Every record travels in a CRC32-framed envelope and every
// segment opens with a checksummed header carrying the producing
// configuration's fingerprint, so the reader can tell torn tails,
// bit flips, duplicated frames and foreign streams apart — and recover
// a clean record prefix from any of them instead of failing.
//
// On-disk layout (all little-endian, CRCs from snapshot/crc32):
//
//   segment header:  [magic u32][version u32][fingerprint u64]
//                    [segment index u64][first record index u64]
//                    [header crc32 u32]
//   frame:           [magic u32][payload length u32][record index u64]
//                    [payload crc32 u32][header crc32 u32][payload...]
//
// The active segment is written as "wal-NNNNNN.seg.open"; sealing a
// segment is fsync + rename to "wal-NNNNNN.seg" + directory fsync, so
// rotation is atomic the same way snapshot writes are (the .open file
// plays the tmp role). A crash can only ever leave a torn tail on the
// newest segment, which recovery truncates back to the last valid
// frame; damage anywhere else is quarantined under a unique name and
// the scan keeps every record before the first corrupt frame.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ingest/report.hpp"

namespace repro::ingest {

inline constexpr std::uint32_t kWalSegmentMagic = 0x47'45'53'57;  // "WSEG"
inline constexpr std::uint32_t kWalFrameMagic = 0x4d'52'46'57;    // "WFRM"
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalSegmentHeaderBytes = 36;
inline constexpr std::size_t kWalFrameHeaderBytes = 24;

struct WalOptions {
  /// Directory the segment files live in; created on first use.
  std::string directory;
  /// Rotation threshold: the open segment is sealed once its size
  /// reaches this many bytes. Small values in tests force rotations.
  std::uint64_t segment_bytes = 1u << 20;
  /// fsync after every appended frame (durability-first default); when
  /// false, only sync()/seal() are durability points and a crash can
  /// cost the frames since the last one — which recovery handles as a
  /// torn tail.
  bool sync_every_append = true;
  /// Test seam: simulate a crash mid-rotation — the Nth seal of this
  /// writer's lifetime (1-based) renames the segment but dies before a
  /// new open segment exists (0 = never).
  std::uint64_t fail_after_seal = 0;

  /// Throws ConfigError on an empty directory or zero segment size.
  void validate() const;
};

/// Serialized segment header for `segment_index` whose first frame will
/// carry `first_record`.
[[nodiscard]] std::vector<std::uint8_t> encode_segment_header(
    std::uint64_t fingerprint, std::uint64_t segment_index,
    std::uint64_t first_record);

/// Serialized frame (header + payload) for record `record_index`.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::uint64_t record_index, std::span<const std::uint8_t> payload);

/// Segment file name, e.g. "wal-000003.seg" (+ ".open" when active).
[[nodiscard]] std::string segment_filename(std::uint64_t segment_index,
                                           bool open);

/// What recovery salvaged from a WAL directory: a contiguous record
/// prefix (records[i] is record index i) plus where the writer should
/// continue.
struct RecoveredWal {
  std::vector<std::vector<std::uint8_t>> records;
  /// Index the next created segment will use.
  std::uint64_t next_segment_index = 1;
  /// True when an undamaged-or-truncated ".open" tail segment survived
  /// and the writer can keep appending to it.
  bool open_tail = false;
  /// Index of the surviving open tail (meaningful when open_tail).
  std::uint64_t open_tail_index = 0;
};

/// Scans every segment of `options.directory` in index order and
/// returns the longest clean record prefix. Stale segments (foreign
/// fingerprint) and damaged files are quarantined under unique names;
/// torn tails are truncated back to the last valid frame in place.
/// Never throws on damaged input — only on I/O errors.
[[nodiscard]] RecoveredWal recover_wal(const WalOptions& options,
                                       std::uint64_t fingerprint,
                                       IngestReport& report);

/// Appender positioned after a recovery. Appends are synchronous and
/// sequential; rotation happens transparently once the open segment
/// crosses the size threshold.
class WalWriter {
 public:
  WalWriter(WalOptions options, std::uint64_t fingerprint,
            const RecoveredWal& recovered, IngestReport* report);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Durably appends the next record (record indices continue from the
  /// recovered prefix).
  void append(std::span<const std::uint8_t> payload);

  /// fsyncs the open segment — the epoch-batch durability point when
  /// sync_every_append is off.
  void sync();

  /// Seals the open segment (fsync + rename + directory fsync) so the
  /// next append starts a fresh one. No-op when the open segment holds
  /// no frames yet.
  void seal();

  [[nodiscard]] std::uint64_t next_record_index() const noexcept {
    return next_record_;
  }

  /// Index of the currently open (or next-to-open) segment. Segments
  /// 1..segment_index()-1 are sealed on disk, which makes this the
  /// kill-invariant "rotations completed" total for the whole stream —
  /// a resumed writer starts past every segment the dead run sealed.
  [[nodiscard]] std::uint64_t segment_index() const noexcept {
    return segment_index_;
  }

 private:
  void open_segment();
  void close_fd() noexcept;

  WalOptions options_;
  std::uint64_t fingerprint_ = 0;
  IngestReport* report_ = nullptr;
  int fd_ = -1;
  std::uint64_t segment_index_ = 1;
  std::uint64_t segment_bytes_written_ = 0;
  std::uint64_t next_record_ = 0;
  std::uint64_t seals_done_ = 0;
};

}  // namespace repro::ingest
