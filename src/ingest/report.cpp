#include "ingest/report.hpp"

#include "obs/metrics.hpp"
#include "util/byteio.hpp"
#include "util/error.hpp"

namespace repro::ingest {

namespace {
constexpr std::uint32_t kTotalsVersion = 1;
}  // namespace

std::vector<std::uint8_t> encode_stream_totals(const IngestReport& report) {
  ByteWriter writer;
  writer.u32(kTotalsVersion);
  writer.u64(report.records_appended);
  writer.u64(report.bytes_appended);
  writer.u64(report.segments_sealed);
  return writer.take();
}

void decode_stream_totals(const std::vector<std::uint8_t>& blob,
                          IngestReport& report) {
  ByteReader reader{blob};
  if (reader.u32() != kTotalsVersion) {
    throw ParseError("ingest: unsupported stream-totals blob version");
  }
  report.records_appended = reader.u64();
  report.bytes_appended = reader.u64();
  report.segments_sealed = reader.u64();
  if (reader.remaining() != 0) {
    throw ParseError("ingest: trailing bytes in stream-totals blob");
  }
}

void publish_ingest_metrics(obs::MetricsRegistry& metrics,
                            const IngestReport& report) {
  const auto set = [&](std::string_view name, std::uint64_t value) {
    metrics.counter(name).add(value);
  };
  set("ingest.wal.records_appended", report.records_appended);
  set("ingest.wal.bytes_appended", report.bytes_appended);
  set("ingest.wal.segments_sealed", report.segments_sealed);
  set("ingest.wal.segments_scanned", report.segments_scanned);
  set("ingest.wal.records_recovered", report.records_recovered);
  set("ingest.wal.torn_tails", report.torn_tails);
  set("ingest.wal.corrupt_frames", report.corrupt_frames);
  set("ingest.wal.duplicate_frames", report.duplicate_frames);
  set("ingest.wal.stale_segments", report.stale_segments);
  set("ingest.wal.quarantined", report.quarantined_files);
  set("ingest.wal.bytes_dropped", report.bytes_dropped);
  set("ingest.queue.pushed", report.queue_pushed);
  set("ingest.queue.shed", report.queue_shed);
  set("ingest.queue.stalls", report.queue_stalls);
  metrics.gauge("ingest.queue.high_water")
      .raise_to(static_cast<std::int64_t>(report.queue_high_water));
  set("ingest.epochs.run", report.epochs_run);
  set("ingest.epochs.restored", report.epochs_restored);
}

}  // namespace repro::ingest
