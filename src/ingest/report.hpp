// Streaming-ingest accounting.
//
// One IngestReport accumulates everything the durable ingest path did:
// WAL appends and segment rotations, recovery salvage work (torn
// tails, corrupt frames, duplicates, quarantines), queue backpressure,
// and the epoch loop's progress. The "stream totals" group is
// cumulative over the stream's whole logical history — it is persisted
// inside every epoch checkpoint and restored on resume — while the
// recovery/queue counters describe the current process run. Every
// field is driven from the serial epoch driver, so the derived obs
// metrics are byte-identical at every pool width.
#pragma once

#include <cstdint>
#include <vector>

namespace repro::obs {
class MetricsRegistry;
}  // namespace repro::obs

namespace repro::ingest {

struct IngestReport {
  // --- Stream totals (cumulative; persisted in epoch checkpoints) ---
  std::uint64_t records_appended = 0;  // frames durably written, ever
  std::uint64_t bytes_appended = 0;    // frame bytes written, ever
  std::uint64_t segments_sealed = 0;   // rotations completed, ever

  // --- Recovery (this process run) ---
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_recovered = 0;
  std::uint64_t torn_tails = 0;       // frame cut off mid-write at EOF
  std::uint64_t corrupt_frames = 0;   // CRC/structure damage mid-file
  std::uint64_t duplicate_frames = 0; // valid frame, already-seen index
  std::uint64_t stale_segments = 0;   // fingerprint from another config
  std::uint64_t quarantined_files = 0;
  std::uint64_t bytes_dropped = 0;    // bytes cut when truncating damage

  // --- Queue backpressure (this process run) ---
  std::uint64_t queue_pushed = 0;
  std::uint64_t queue_shed = 0;     // records dropped by kShedOldest
  std::uint64_t queue_stalls = 0;   // kBlock producer waits
  std::uint64_t queue_high_water = 0;

  // --- Epoch loop (this process run) ---
  std::uint64_t epochs_run = 0;       // epochs computed by this process
  std::uint64_t epochs_restored = 0;  // 1 when a checkpoint was resumed
  /// Epochs whose incremental clustering results were byte-compared
  /// against a full recompute and matched
  /// (StreamOptions::verify_incremental). Deliberately not published as
  /// a metric: it counts this process run's cross-check work, which a
  /// kill/resume run legitimately does less of.
  std::uint64_t epochs_verified = 0;
};

/// The cumulative "stream totals" group as an opaque checkpoint blob.
[[nodiscard]] std::vector<std::uint8_t> encode_stream_totals(
    const IngestReport& report);

/// Restores the stream totals of `blob` into `report` (other fields
/// untouched). Throws ParseError on a malformed blob.
void decode_stream_totals(const std::vector<std::uint8_t>& blob,
                          IngestReport& report);

/// Publishes every counter above under "ingest.*" on the deterministic
/// channel (the driver is serial, so all of them are width-stable).
void publish_ingest_metrics(obs::MetricsRegistry& metrics,
                            const IngestReport& report);

}  // namespace repro::ingest
