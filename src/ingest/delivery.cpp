#include "ingest/delivery.hpp"

#include <algorithm>
#include <cmath>

#include "fault/injector.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::ingest {

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw ConfigError("delivery: max_attempts must be at least 1");
  }
  if (base_backoff_seconds < 1 || max_backoff_seconds < base_backoff_seconds) {
    throw ConfigError("delivery: backoff bounds must satisfy 1 <= base <= max");
  }
  if (timeout_seconds < 1) {
    throw ConfigError("delivery: timeout_seconds must be positive");
  }
}

std::int64_t backoff_delay(const RetryPolicy& policy, std::uint64_t key,
                           int attempt) {
  std::int64_t step = policy.base_backoff_seconds;
  for (int i = 1; i < attempt && step < policy.max_backoff_seconds; ++i) {
    step *= 2;
  }
  step = std::min(step, policy.max_backoff_seconds);
  // ±25% jitter from a pure hash — deterministic, and independent of
  // every other random stream in the simulation.
  const std::uint64_t h =
      mix64(policy.jitter_seed ^ mix64(key) ^
            (0x9e37'79b9'7f4a'7c15ULL * static_cast<std::uint64_t>(attempt)));
  const double fraction =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jittered =
      static_cast<double>(step) * (0.75 + 0.5 * fraction);
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(jittered)));
}

DeliveryOutcome deliver_record(const RetryPolicy& policy, std::uint64_t key,
                               SimTime start, fault::FaultInjector& faults) {
  policy.validate();
  const SimTime deadline = add_seconds(start, policy.timeout_seconds);
  DeliveryOutcome outcome;
  SimTime now = start;
  for (int attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    if (!faults.delivery_fails(key, attempt)) {
      outcome.completed = now;
      return outcome;
    }
    if (attempt >= policy.max_attempts) break;
    const std::int64_t delay = backoff_delay(policy, key, attempt);
    if (add_seconds(now, delay) > deadline) break;  // would blow the deadline
    now = add_seconds(now, delay);
    outcome.backoff_seconds += delay;
    faults.count_delivery_retry(delay);
  }
  faults.count_delivery_exhausted();
  outcome.exhausted = true;
  outcome.completed = now;
  return outcome;
}

}  // namespace repro::ingest
