// Bounded ingest queue with explicit backpressure.
//
// A small thread-safe FIFO of serialized records sitting between the
// sensor delivery layer and the WAL appender. Capacity is a hard bound;
// what happens at the bound is the overflow policy: kBlock makes the
// producer wait (counted as a stall), kShedOldest drops the oldest
// queued record to admit the new one (counted as shed). The serial
// epoch driver uses the non-blocking offer()/try_pop() pair so every
// counter stays deterministic; the blocking push()/pop() pair exists
// for genuinely concurrent producers and is exercised under TSan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace repro::ingest {

enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,      // producer waits for room
  kShedOldest = 1, // oldest queued record is dropped to make room
};

class BoundedRecordQueue {
 public:
  /// Throws ConfigError when `capacity` is zero.
  BoundedRecordQueue(std::size_t capacity, OverflowPolicy policy);

  /// Non-blocking admit. Returns false only under kBlock with a full
  /// queue (counted as a stall; the record is untouched and the caller
  /// must drain before retrying). Under kShedOldest a full queue drops
  /// its oldest record and always admits.
  [[nodiscard]] bool offer(std::vector<std::uint8_t> record);

  /// Blocking admit: waits for room under kBlock (each wait counted as
  /// one stall), sheds under kShedOldest. Returns false only when the
  /// queue was closed.
  bool push(std::vector<std::uint8_t> record);

  /// Non-blocking take.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> try_pop();

  /// Blocking take; empty only when the queue is closed and drained.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> pop();

  /// Wakes all waiters; pushes are rejected from here on, pops drain
  /// what remains.
  void close();

  struct Stats {
    std::uint64_t pushed = 0;   // records admitted
    std::uint64_t popped = 0;   // records taken
    std::uint64_t shed = 0;     // records dropped by kShedOldest
    std::uint64_t stalls = 0;   // kBlock rejections/waits at capacity
    std::uint64_t high_water = 0;  // max depth ever observed
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Callers hold `mutex_`.
  void admit(std::vector<std::uint8_t>&& record);

  std::size_t capacity_;
  OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable room_;
  std::condition_variable ready_;
  std::deque<std::vector<std::uint8_t>> items_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace repro::ingest
