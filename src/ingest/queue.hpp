// Bounded queues with explicit backpressure.
//
// A small thread-safe FIFO sitting between a producer and a consumer
// with a hard capacity bound; what happens at the bound is the overflow
// policy: kBlock makes the producer wait (counted as a stall),
// kShedOldest drops the oldest queued item to admit the new one
// (counted as shed). Two users share the template: the WAL appender
// buffers serialized records (BoundedRecordQueue), and the serve daemon
// admits client connections (its admission queue sheds with an explicit
// BUSY reply instead of stalling ingest). The serial epoch driver uses
// the non-blocking offer()/try_pop() pair so every counter stays
// deterministic; the blocking push()/pop() pair exists for genuinely
// concurrent producers and is exercised under TSan.
//
// Accounting invariant (checked by ingest_test): at any quiescent
// point, pushed == popped + shed + depth. A closed queue never admits
// and never sheds — close() freezes the totals except for the draining
// pops.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace repro::ingest {

enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,      // producer waits for room
  kShedOldest = 1, // oldest queued item is dropped to make room
};

template <typename T>
class BoundedQueue {
 public:
  /// Throws ConfigError when `capacity` is zero.
  BoundedQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity), policy_(policy) {
    if (capacity_ == 0) {
      throw ConfigError("bounded queue: capacity must be positive");
    }
  }

  /// Non-blocking admit. Returns false when the queue is closed, or —
  /// under kBlock — full (counted as a stall; the item is untouched and
  /// the caller must drain or shed before retrying). Under kShedOldest
  /// a full queue drops its oldest item and always admits.
  [[nodiscard]] bool offer(T item) {
    std::optional<T> discarded;
    return offer(std::move(item), discarded);
  }

  /// Like offer(), but hands a displaced item back through `evicted`
  /// (engaged only when a kShedOldest queue actually shed) so the
  /// caller can dispose of it — the serve daemon answers BUSY on the
  /// evicted connection before closing it instead of leaking the fd.
  [[nodiscard]] bool offer(T item, std::optional<T>& evicted) {
    evicted.reset();
    std::lock_guard lock{mutex_};
    if (closed_) return false;
    if (items_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kBlock) {
        ++stats_.stalls;
        return false;
      }
      evicted = std::move(items_.front());
      items_.pop_front();
      ++stats_.shed;
    }
    admit(std::move(item));
    return true;
  }

  /// Blocking admit: waits for room under kBlock (each wait counted as
  /// one stall), sheds under kShedOldest. Returns false only when the
  /// queue was closed — and then without shedding: a closed queue's
  /// remaining items belong to the draining consumer, so rejecting the
  /// new item must never cost a queued one.
  bool push(T item) {
    std::unique_lock lock{mutex_};
    if (policy_ == OverflowPolicy::kBlock) {
      if (items_.size() >= capacity_ && !closed_) ++stats_.stalls;
      room_.wait(lock,
                 [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
    } else {
      if (closed_) return false;
      if (items_.size() >= capacity_) {
        items_.pop_front();
        ++stats_.shed;
      }
    }
    admit(std::move(item));
    return true;
  }

  /// Non-blocking take.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard lock{mutex_};
    return take();
  }

  /// Blocking take; empty only when the queue is closed and drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock{mutex_};
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    return take();
  }

  /// Wakes all waiters; pushes are rejected from here on, pops drain
  /// what remains.
  void close() {
    std::lock_guard lock{mutex_};
    closed_ = true;
    room_.notify_all();
    ready_.notify_all();
  }

  struct Stats {
    std::uint64_t pushed = 0;   // items admitted
    std::uint64_t popped = 0;   // items taken
    std::uint64_t shed = 0;     // items dropped by kShedOldest
    std::uint64_t stalls = 0;   // kBlock rejections/waits at capacity
    std::uint64_t high_water = 0;  // max depth ever observed
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard lock{mutex_};
    return stats_;
  }

  /// Items currently queued (pushed - popped - shed).
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Callers hold `mutex_`.
  void admit(T&& item) {
    items_.push_back(std::move(item));
    ++stats_.pushed;
    stats_.high_water = std::max<std::uint64_t>(stats_.high_water,
                                                items_.size());
    ready_.notify_one();
  }

  // Callers hold `mutex_`.
  [[nodiscard]] std::optional<T> take() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    room_.notify_one();
    return item;
  }

  std::size_t capacity_;
  OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable room_;
  std::condition_variable ready_;
  std::deque<T> items_;
  Stats stats_;
  bool closed_ = false;
};

/// The WAL-side instantiation: serialized records in flight between the
/// sensor delivery layer and the appender.
using BoundedRecordQueue = BoundedQueue<std::vector<std::uint8_t>>;

}  // namespace repro::ingest
