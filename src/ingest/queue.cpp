#include "ingest/queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace repro::ingest {

BoundedRecordQueue::BoundedRecordQueue(std::size_t capacity,
                                       OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0) {
    throw ConfigError("ingest queue: capacity must be positive");
  }
}

void BoundedRecordQueue::admit(std::vector<std::uint8_t>&& record) {
  items_.push_back(std::move(record));
  ++stats_.pushed;
  stats_.high_water = std::max<std::uint64_t>(stats_.high_water,
                                              items_.size());
  ready_.notify_one();
}

bool BoundedRecordQueue::offer(std::vector<std::uint8_t> record) {
  std::lock_guard lock{mutex_};
  if (closed_) return false;
  if (items_.size() >= capacity_) {
    if (policy_ == OverflowPolicy::kBlock) {
      ++stats_.stalls;
      return false;
    }
    items_.pop_front();
    ++stats_.shed;
  }
  admit(std::move(record));
  return true;
}

bool BoundedRecordQueue::push(std::vector<std::uint8_t> record) {
  std::unique_lock lock{mutex_};
  if (policy_ == OverflowPolicy::kBlock) {
    if (items_.size() >= capacity_ && !closed_) ++stats_.stalls;
    room_.wait(lock,
               [this] { return items_.size() < capacity_ || closed_; });
  } else if (items_.size() >= capacity_) {
    items_.pop_front();
    ++stats_.shed;
  }
  if (closed_) return false;
  admit(std::move(record));
  return true;
}

std::optional<std::vector<std::uint8_t>> BoundedRecordQueue::try_pop() {
  std::lock_guard lock{mutex_};
  if (items_.empty()) return std::nullopt;
  std::vector<std::uint8_t> record = std::move(items_.front());
  items_.pop_front();
  ++stats_.popped;
  room_.notify_one();
  return record;
}

std::optional<std::vector<std::uint8_t>> BoundedRecordQueue::pop() {
  std::unique_lock lock{mutex_};
  ready_.wait(lock, [this] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;
  std::vector<std::uint8_t> record = std::move(items_.front());
  items_.pop_front();
  ++stats_.popped;
  room_.notify_one();
  return record;
}

void BoundedRecordQueue::close() {
  std::lock_guard lock{mutex_};
  closed_ = true;
  room_.notify_all();
  ready_.notify_all();
}

BoundedRecordQueue::Stats BoundedRecordQueue::stats() const {
  std::lock_guard lock{mutex_};
  return stats_;
}

}  // namespace repro::ingest
