// Binary codecs for the pipeline's stage-boundary state.
//
// Every structure that crosses a stage boundary of the paper pipeline
// (ground-truth landscape, event database with enrichment, EPM results,
// behavioral view, fault accounting) serializes to the little-endian
// ByteWriter format and restores from a bounds-checked ByteReader.
// Decoders validate enum ranges, optional flags and cross-references
// and throw ParseError on anything malformed — never UB, never a
// logic_error — so a corrupted snapshot that slipped past the container
// CRCs still fails safely. Round-trip is exact: encode(decode(bytes))
// reproduces `bytes`, which is what makes checkpoint resume
// byte-deterministic.
#pragma once

#include <cstdint>

#include "analysis/bview.hpp"
#include "cluster/epm.hpp"
#include "fault/injector.hpp"
#include "honeypot/database.hpp"
#include "honeypot/enrichment.hpp"
#include "malware/landscape.hpp"
#include "util/byteio.hpp"

namespace repro::snapshot {

// --- Ground truth -----------------------------------------------------------

void write_landscape(ByteWriter& writer, const malware::Landscape& landscape);
[[nodiscard]] malware::Landscape read_landscape(ByteReader& reader);

// --- Observed dataset -------------------------------------------------------

void write_database(ByteWriter& writer, const honeypot::EventDatabase& db);
[[nodiscard]] honeypot::EventDatabase read_database(ByteReader& reader);

void write_enrichment_stats(ByteWriter& writer,
                            const honeypot::EnrichmentStats& stats);
[[nodiscard]] honeypot::EnrichmentStats read_enrichment_stats(
    ByteReader& reader);

void write_fault_report(ByteWriter& writer, const fault::FaultReport& report);
[[nodiscard]] fault::FaultReport read_fault_report(ByteReader& reader);

/// Single-event codec, used by the ingest WAL's record format (the
/// database codec above serializes whole databases).
void write_attack_event(ByteWriter& writer, const honeypot::AttackEvent& event);
[[nodiscard]] honeypot::AttackEvent read_attack_event(ByteReader& reader);

// --- Clustering results -----------------------------------------------------

void write_epm_result(ByteWriter& writer, const cluster::EpmResult& result);
[[nodiscard]] cluster::EpmResult read_epm_result(ByteReader& reader);

void write_behavioral_view(ByteWriter& writer,
                           const analysis::BehavioralView& view);
[[nodiscard]] analysis::BehavioralView read_behavioral_view(
    ByteReader& reader);

}  // namespace repro::snapshot
