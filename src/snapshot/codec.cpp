#include "snapshot/codec.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace repro::snapshot {

namespace {

// --- Primitive helpers ------------------------------------------------------

void put_string(ByteWriter& writer, std::string_view s) {
  writer.u32(static_cast<std::uint32_t>(s.size()));
  writer.text(s);
}

std::string get_string(ByteReader& reader) {
  const std::uint32_t length = reader.u32();
  return reader.fixed_text(length);
}

void put_double(ByteWriter& writer, double value) {
  writer.u64(std::bit_cast<std::uint64_t>(value));
}

double get_double(ByteReader& reader) {
  return std::bit_cast<double>(reader.u64());
}

void put_i32(ByteWriter& writer, int value) {
  writer.u32(static_cast<std::uint32_t>(value));
}

int get_i32(ByteReader& reader) { return static_cast<int>(reader.u32()); }

void put_i64(ByteWriter& writer, std::int64_t value) {
  writer.u64(static_cast<std::uint64_t>(value));
}

std::int64_t get_i64(ByteReader& reader) {
  return static_cast<std::int64_t>(reader.u64());
}

bool get_flag(ByteReader& reader) {
  const std::uint8_t value = reader.u8();
  if (value > 1) {
    throw ParseError("snapshot codec: boolean flag is " +
                     std::to_string(value));
  }
  return value != 0;
}

/// Reads an element count and sanity-bounds it against the remaining
/// bytes (every element occupies at least `min_element_bytes`), so a
/// corrupt count fails as ParseError instead of a huge allocation.
std::size_t get_count(ByteReader& reader, std::size_t min_element_bytes = 1) {
  const std::uint64_t count = reader.u64();
  const std::size_t bound =
      reader.remaining() / std::max<std::size_t>(1, min_element_bytes);
  if (count > bound) {
    throw ParseError("snapshot codec: element count " + std::to_string(count) +
                     " exceeds remaining data");
  }
  return static_cast<std::size_t>(count);
}

template <typename Enum>
Enum get_enum(ByteReader& reader, std::uint8_t max_value, const char* what) {
  const std::uint8_t value = reader.u8();
  if (value > max_value) {
    throw ParseError(std::string("snapshot codec: out-of-range ") + what +
                     " value " + std::to_string(value));
  }
  return static_cast<Enum>(value);
}

void put_string_vector(ByteWriter& writer,
                       const std::vector<std::string>& values) {
  writer.u64(values.size());
  for (const std::string& value : values) put_string(writer, value);
}

std::vector<std::string> get_string_vector(ByteReader& reader) {
  const std::size_t count = get_count(reader, 4);
  std::vector<std::string> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) values.push_back(get_string(reader));
  return values;
}

void put_bytes(ByteWriter& writer, const std::vector<std::uint8_t>& bytes) {
  writer.u64(bytes.size());
  writer.bytes(bytes);
}

std::vector<std::uint8_t> get_bytes(ByteReader& reader) {
  return reader.bytes(get_count(reader));
}

// --- Ground-truth landscape -------------------------------------------------

void put_gamma_spec(ByteWriter& writer, const proto::GammaSpec& spec) {
  writer.u8(static_cast<std::uint8_t>(spec.technique));
  writer.u32(spec.trampoline);
  writer.u16(spec.pad_length);
}

proto::GammaSpec get_gamma_spec(ByteReader& reader) {
  proto::GammaSpec spec;
  spec.technique = get_enum<proto::HijackTechnique>(
      reader, static_cast<std::uint8_t>(proto::HijackTechnique::kFuncPointer),
      "HijackTechnique");
  spec.trampoline = reader.u32();
  spec.pad_length = reader.u16();
  return spec;
}

void put_exploit(ByteWriter& writer, const proto::ExploitTemplate& exploit) {
  put_string(writer, exploit.id);
  writer.u8(static_cast<std::uint8_t>(exploit.service));
  writer.u64(exploit.requests.size());
  for (const proto::RequestTemplate& request : exploit.requests) {
    put_string(writer, request.protocol_prefix);
    put_string(writer, request.implementation_token);
    writer.u64(request.random_field_length);
    writer.u8(request.carries_payload ? 1 : 0);
  }
  put_gamma_spec(writer, exploit.gamma);
}

proto::ExploitTemplate get_exploit(ByteReader& reader) {
  proto::ExploitTemplate exploit;
  exploit.id = get_string(reader);
  exploit.service = get_enum<proto::ServiceKind>(
      reader, static_cast<std::uint8_t>(proto::ServiceKind::kDceRpc135),
      "ServiceKind");
  const std::size_t requests = get_count(reader, 17);
  exploit.requests.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    proto::RequestTemplate request;
    request.protocol_prefix = get_string(reader);
    request.implementation_token = get_string(reader);
    request.random_field_length = static_cast<std::size_t>(reader.u64());
    request.carries_payload = get_flag(reader);
    exploit.requests.push_back(std::move(request));
  }
  exploit.gamma = get_gamma_spec(reader);
  return exploit;
}

void put_payload_spec(ByteWriter& writer, const malware::PayloadSpec& spec) {
  writer.u8(static_cast<std::uint8_t>(spec.protocol));
  writer.u16(spec.port);
  put_string(writer, spec.filename);
  writer.u8(spec.random_filename ? 1 : 0);
  writer.u8(static_cast<std::uint8_t>(spec.host_role));
  writer.u8(spec.central_host.has_value() ? 1 : 0);
  if (spec.central_host.has_value()) writer.u32(spec.central_host->value());
  writer.u8(static_cast<std::uint8_t>(spec.encoder.kind));
  writer.u8(spec.encoder.random_key ? 1 : 0);
  writer.u8(spec.encoder.fixed_key);
  writer.u64(spec.encoder.min_sled);
  writer.u64(spec.encoder.max_sled);
}

malware::PayloadSpec get_payload_spec(ByteReader& reader) {
  malware::PayloadSpec spec;
  spec.protocol = get_enum<shellcode::Protocol>(
      reader, static_cast<std::uint8_t>(shellcode::Protocol::kConnectBack),
      "Protocol");
  spec.port = reader.u16();
  spec.filename = get_string(reader);
  spec.random_filename = get_flag(reader);
  spec.host_role = get_enum<shellcode::HostRole>(
      reader, static_cast<std::uint8_t>(shellcode::HostRole::kThirdParty),
      "HostRole");
  if (get_flag(reader)) spec.central_host = net::Ipv4{reader.u32()};
  spec.encoder.kind = get_enum<shellcode::EncoderKind>(
      reader, static_cast<std::uint8_t>(shellcode::EncoderKind::kAlphanumeric),
      "EncoderKind");
  spec.encoder.random_key = get_flag(reader);
  spec.encoder.fixed_key = reader.u8();
  spec.encoder.min_sled = static_cast<std::size_t>(reader.u64());
  spec.encoder.max_sled = static_cast<std::size_t>(reader.u64());
  return spec;
}

void put_pe_template(ByteWriter& writer, const pe::PeTemplate& tmpl) {
  writer.u16(tmpl.machine);
  writer.u8(tmpl.linker_major);
  writer.u8(tmpl.linker_minor);
  writer.u16(tmpl.os_major);
  writer.u16(tmpl.os_minor);
  writer.u16(tmpl.subsystem);
  writer.u32(tmpl.timestamp);
  writer.u64(tmpl.sections.size());
  for (const pe::SectionSpec& section : tmpl.sections) {
    put_string(writer, section.name);
    writer.u32(section.characteristics);
    put_bytes(writer, section.content);
    writer.u8(section.holds_imports ? 1 : 0);
  }
  writer.u64(tmpl.imports.size());
  for (const pe::ImportSpec& import : tmpl.imports) {
    put_string(writer, import.dll);
    put_string_vector(writer, import.symbols);
  }
  writer.u8(tmpl.target_file_size.has_value() ? 1 : 0);
  if (tmpl.target_file_size.has_value()) writer.u32(*tmpl.target_file_size);
}

pe::PeTemplate get_pe_template(ByteReader& reader) {
  pe::PeTemplate tmpl;
  tmpl.machine = reader.u16();
  tmpl.linker_major = reader.u8();
  tmpl.linker_minor = reader.u8();
  tmpl.os_major = reader.u16();
  tmpl.os_minor = reader.u16();
  tmpl.subsystem = reader.u16();
  tmpl.timestamp = reader.u32();
  const std::size_t sections = get_count(reader, 17);
  tmpl.sections.clear();
  tmpl.sections.reserve(sections);
  for (std::size_t i = 0; i < sections; ++i) {
    pe::SectionSpec section;
    section.name = get_string(reader);
    section.characteristics = reader.u32();
    section.content = get_bytes(reader);
    section.holds_imports = get_flag(reader);
    tmpl.sections.push_back(std::move(section));
  }
  const std::size_t imports = get_count(reader, 12);
  tmpl.imports.clear();
  tmpl.imports.reserve(imports);
  for (std::size_t i = 0; i < imports; ++i) {
    pe::ImportSpec import;
    import.dll = get_string(reader);
    import.symbols = get_string_vector(reader);
    tmpl.imports.push_back(std::move(import));
  }
  if (get_flag(reader)) tmpl.target_file_size = reader.u32();
  return tmpl;
}

void put_behavior(ByteWriter& writer, const malware::BehaviorSpec& behavior) {
  writer.u8(static_cast<std::uint8_t>(behavior.kind));
  put_string_vector(writer, behavior.base_features);
  writer.u8(behavior.irc.has_value() ? 1 : 0);
  if (behavior.irc.has_value()) {
    writer.u32(behavior.irc->server.value());
    writer.u16(behavior.irc->port);
    put_string(writer, behavior.irc->room);
  }
  writer.u8(behavior.downloader.has_value() ? 1 : 0);
  if (behavior.downloader.has_value()) {
    put_string(writer, behavior.downloader->domain);
    put_i32(writer, behavior.downloader->component_count);
  }
  put_double(writer, behavior.noise_probability);
  put_i32(writer, behavior.noise_feature_count);
}

malware::BehaviorSpec get_behavior(ByteReader& reader) {
  malware::BehaviorSpec behavior;
  behavior.kind = get_enum<malware::BehaviorKind>(
      reader, static_cast<std::uint8_t>(malware::BehaviorKind::kGenericTrojan),
      "BehaviorKind");
  behavior.base_features = get_string_vector(reader);
  if (get_flag(reader)) {
    malware::IrcCnc irc;
    irc.server = net::Ipv4{reader.u32()};
    irc.port = reader.u16();
    irc.room = get_string(reader);
    behavior.irc = std::move(irc);
  }
  if (get_flag(reader)) {
    malware::DownloaderCnc downloader;
    downloader.domain = get_string(reader);
    downloader.component_count = get_i32(reader);
    behavior.downloader = std::move(downloader);
  }
  behavior.noise_probability = get_double(reader);
  behavior.noise_feature_count = get_i32(reader);
  return behavior;
}

void put_population(ByteWriter& writer, const malware::PopulationSpec& spec) {
  writer.u8(static_cast<std::uint8_t>(spec.spread));
  writer.u64(spec.host_count);
  writer.u64(spec.subnets.size());
  for (const net::Subnet& subnet : spec.subnets) {
    writer.u32(subnet.network().value());
    writer.u8(static_cast<std::uint8_t>(subnet.prefix_length()));
  }
}

malware::PopulationSpec get_population(ByteReader& reader) {
  malware::PopulationSpec spec;
  spec.spread = get_enum<malware::PopulationSpec::Spread>(
      reader,
      static_cast<std::uint8_t>(malware::PopulationSpec::Spread::kConcentrated),
      "PopulationSpec::Spread");
  spec.host_count = static_cast<std::size_t>(reader.u64());
  const std::size_t subnets = get_count(reader, 5);
  spec.subnets.reserve(subnets);
  for (std::size_t i = 0; i < subnets; ++i) {
    const net::Ipv4 base{reader.u32()};
    const std::uint8_t prefix = reader.u8();
    if (prefix > 32) {
      throw ParseError("snapshot codec: subnet prefix " +
                       std::to_string(prefix) + " out of range");
    }
    spec.subnets.emplace_back(base, prefix);
  }
  return spec;
}

void put_schedule(ByteWriter& writer, const malware::ActivitySchedule& s) {
  writer.u8(static_cast<std::uint8_t>(s.kind));
  put_i32(writer, s.start_week);
  put_i32(writer, s.end_week);
  put_double(writer, s.weekly_event_rate);
  put_double(writer, s.burst_week_probability);
  put_i32(writer, s.locations_per_burst);
  writer.u64(s.seed);
}

malware::ActivitySchedule get_schedule(ByteReader& reader) {
  malware::ActivitySchedule s;
  s.kind = get_enum<malware::ActivitySchedule::Kind>(
      reader,
      static_cast<std::uint8_t>(malware::ActivitySchedule::Kind::kBursty),
      "ActivitySchedule::Kind");
  s.start_week = get_i32(reader);
  s.end_week = get_i32(reader);
  s.weekly_event_rate = get_double(reader);
  s.burst_week_probability = get_double(reader);
  s.locations_per_burst = get_i32(reader);
  s.seed = reader.u64();
  return s;
}

void put_variant(ByteWriter& writer, const malware::MalwareVariant& variant) {
  writer.u32(variant.id);
  writer.u32(variant.family);
  put_string(writer, variant.name);
  writer.u8(static_cast<std::uint8_t>(variant.format));
  writer.u32(variant.raw_size);
  put_pe_template(writer, variant.pe_template);
  writer.u64(variant.mutable_sections.size());
  for (const std::size_t index : variant.mutable_sections) writer.u64(index);
  writer.u8(static_cast<std::uint8_t>(variant.polymorphism));
  put_behavior(writer, variant.behavior);
  writer.u64(variant.exploit_index);
  writer.u64(variant.payload_index);
  put_population(writer, variant.population);
  put_schedule(writer, variant.schedule);
  put_string(writer, variant.av_name);
  writer.u64(variant.seed);
}

malware::MalwareVariant get_variant(ByteReader& reader) {
  malware::MalwareVariant variant;
  variant.id = reader.u32();
  variant.family = reader.u32();
  variant.name = get_string(reader);
  variant.format = get_enum<malware::BinaryFormat>(
      reader, static_cast<std::uint8_t>(malware::BinaryFormat::kRawData),
      "BinaryFormat");
  variant.raw_size = reader.u32();
  variant.pe_template = get_pe_template(reader);
  const std::size_t mutable_count = get_count(reader, 8);
  variant.mutable_sections.reserve(mutable_count);
  for (std::size_t i = 0; i < mutable_count; ++i) {
    variant.mutable_sections.push_back(static_cast<std::size_t>(reader.u64()));
  }
  variant.polymorphism = get_enum<malware::PolymorphismMode>(
      reader, static_cast<std::uint8_t>(malware::PolymorphismMode::kPerSource),
      "PolymorphismMode");
  variant.behavior = get_behavior(reader);
  variant.exploit_index = static_cast<std::size_t>(reader.u64());
  variant.payload_index = static_cast<std::size_t>(reader.u64());
  variant.population = get_population(reader);
  variant.schedule = get_schedule(reader);
  variant.av_name = get_string(reader);
  variant.seed = reader.u64();
  return variant;
}

// --- Observed dataset -------------------------------------------------------

void put_event(ByteWriter& writer, const honeypot::AttackEvent& event) {
  writer.u64(event.id);
  put_i64(writer, event.time.seconds);
  writer.u32(event.attacker.value());
  writer.u32(event.honeypot.value());
  put_i32(writer, event.location);
  put_string(writer, event.epsilon.fsm_path);
  writer.u16(event.epsilon.dst_port);
  writer.u8(event.gamma.has_value() ? 1 : 0);
  if (event.gamma.has_value()) {
    put_string(writer, event.gamma->technique);
    writer.u32(event.gamma->trampoline);
    writer.u16(event.gamma->pad_length);
  }
  writer.u8(event.pi.has_value() ? 1 : 0);
  if (event.pi.has_value()) {
    put_string(writer, event.pi->protocol);
    put_string(writer, event.pi->filename);
    writer.u16(event.pi->port);
    put_string(writer, event.pi->interaction);
  }
  writer.u8(event.sample.has_value() ? 1 : 0);
  if (event.sample.has_value()) writer.u32(*event.sample);
  writer.u8(event.download_refused ? 1 : 0);
  writer.u8(event.refinement_failed ? 1 : 0);
  writer.u32(event.truth_variant);
}

honeypot::AttackEvent get_event(ByteReader& reader) {
  honeypot::AttackEvent event;
  event.id = reader.u64();
  event.time.seconds = get_i64(reader);
  event.attacker = net::Ipv4{reader.u32()};
  event.honeypot = net::Ipv4{reader.u32()};
  event.location = get_i32(reader);
  event.epsilon.fsm_path = get_string(reader);
  event.epsilon.dst_port = reader.u16();
  if (get_flag(reader)) {
    proto::GammaObservation gamma;
    gamma.technique = get_string(reader);
    gamma.trampoline = reader.u32();
    gamma.pad_length = reader.u16();
    event.gamma = std::move(gamma);
  }
  if (get_flag(reader)) {
    honeypot::PiObservation pi;
    pi.protocol = get_string(reader);
    pi.filename = get_string(reader);
    pi.port = reader.u16();
    pi.interaction = get_string(reader);
    event.pi = std::move(pi);
  }
  if (get_flag(reader)) event.sample = reader.u32();
  event.download_refused = get_flag(reader);
  event.refinement_failed = get_flag(reader);
  event.truth_variant = reader.u32();
  return event;
}

void put_sample(ByteWriter& writer, const honeypot::MalwareSample& sample) {
  writer.u32(sample.id);
  put_string(writer, sample.md5);
  put_bytes(writer, sample.content);
  put_i64(writer, sample.first_seen.seconds);
  writer.u8(sample.truncated ? 1 : 0);
  writer.u8(sample.corrupted ? 1 : 0);
  writer.u64(sample.event_count);
  writer.u8(sample.profile.has_value() ? 1 : 0);
  if (sample.profile.has_value()) {
    // std::set iterates in sorted order, so the serialization is
    // deterministic.
    const std::set<std::string>& features = sample.profile->features();
    put_string_vector(writer,
                      std::vector<std::string>(features.begin(),
                                               features.end()));
  }
  put_string(writer, sample.av_label);
  writer.u8(sample.label_missing ? 1 : 0);
  writer.u32(sample.truth_variant);
}

honeypot::MalwareSample get_sample(ByteReader& reader) {
  honeypot::MalwareSample sample;
  sample.id = reader.u32();
  sample.md5 = get_string(reader);
  sample.content = get_bytes(reader);
  sample.first_seen.seconds = get_i64(reader);
  sample.truncated = get_flag(reader);
  sample.corrupted = get_flag(reader);
  sample.event_count = static_cast<std::size_t>(reader.u64());
  if (get_flag(reader)) {
    const std::vector<std::string> features = get_string_vector(reader);
    sample.profile = sandbox::BehavioralProfile{
        std::set<std::string>(features.begin(), features.end())};
  }
  sample.av_label = get_string(reader);
  sample.label_missing = get_flag(reader);
  sample.truth_variant = reader.u32();
  return sample;
}

void put_pattern(ByteWriter& writer, const cluster::Pattern& pattern) {
  writer.u64(pattern.fields().size());
  for (const std::optional<std::string>& field : pattern.fields()) {
    writer.u8(field.has_value() ? 1 : 0);
    if (field.has_value()) put_string(writer, *field);
  }
}

cluster::Pattern get_pattern(ByteReader& reader) {
  const std::size_t count = get_count(reader);
  std::vector<std::optional<std::string>> fields;
  fields.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (get_flag(reader)) {
      fields.emplace_back(get_string(reader));
    } else {
      fields.emplace_back(std::nullopt);
    }
  }
  return cluster::Pattern{std::move(fields)};
}

}  // namespace

// --- Private-state access shims ---------------------------------------------

struct EventDatabaseAccess {
  static honeypot::EventDatabase restore(
      std::vector<honeypot::AttackEvent> events,
      std::vector<honeypot::MalwareSample> samples) {
    honeypot::EventDatabase db;
    db.events_ = std::move(events);
    db.samples_ = std::move(samples);
    for (const honeypot::MalwareSample& sample : db.samples_) {
      if (!db.md5_index_.emplace(sample.md5, sample.id).second) {
        throw ParseError("snapshot codec: duplicate sample MD5 " + sample.md5);
      }
    }
    return db;
  }
};

struct EpmResultAccess {
  static cluster::EpmResult restore(
      cluster::FeatureSchema schema, cluster::InvariantTable invariants,
      std::vector<cluster::Pattern> patterns, std::vector<int> assignment,
      std::vector<honeypot::EventId> event_ids) {
    if (assignment.size() != event_ids.size()) {
      throw ParseError("snapshot codec: EPM assignment/event id mismatch");
    }
    cluster::EpmResult result;
    result.schema = std::move(schema);
    result.invariants = std::move(invariants);
    result.patterns = std::move(patterns);
    result.assignment = std::move(assignment);
    result.event_ids = std::move(event_ids);
    result.members.assign(result.patterns.size(), {});
    for (std::size_t row = 0; row < result.assignment.size(); ++row) {
      const int cluster = result.assignment[row];
      if (cluster < 0 ||
          static_cast<std::size_t>(cluster) >= result.patterns.size()) {
        throw ParseError("snapshot codec: EPM row assigned to cluster " +
                         std::to_string(cluster) + " of " +
                         std::to_string(result.patterns.size()));
      }
      result.members[static_cast<std::size_t>(cluster)].push_back(row);
      result.event_index_.emplace(result.event_ids[row], cluster);
    }
    return result;
  }
};

struct BehavioralViewAccess {
  static analysis::BehavioralView restore(
      std::vector<honeypot::SampleId> rows, std::vector<int> assignment,
      std::vector<int> sample_to_cluster) {
    if (rows.size() != assignment.size()) {
      throw ParseError("snapshot codec: behavioral rows/assignment mismatch");
    }
    analysis::BehavioralView view;
    view.rows_ = std::move(rows);
    view.clusters_.assignment = std::move(assignment);
    // Cross-check the stored sample map against what rows+assignment
    // imply; any disagreement means the snapshot is corrupt.
    std::vector<int> expected(sample_to_cluster.size(), -1);
    for (std::size_t row = 0; row < view.rows_.size(); ++row) {
      const int cluster = view.clusters_.assignment[row];
      // Every backend emits dense cluster ids ordered by first member,
      // so a valid id is either an already-seen cluster or exactly the
      // next fresh one. Enforcing that here — instead of sizing the
      // member table from max(assignment) — also keeps a corrupt but
      // CRC-valid snapshot carrying one huge id from demanding an
      // unbounded member-table allocation before the check could fire.
      if (cluster < 0 ||
          static_cast<std::size_t>(cluster) > view.clusters_.members.size()) {
        throw ParseError(
            "snapshot codec: behavioral cluster ids not dense "
            "first-member-ordered at row " +
            std::to_string(row));
      }
      if (static_cast<std::size_t>(cluster) == view.clusters_.members.size()) {
        view.clusters_.members.emplace_back();
      }
      if (view.rows_[row] >= sample_to_cluster.size()) {
        throw ParseError("snapshot codec: behavioral row references sample " +
                         std::to_string(view.rows_[row]) + " of " +
                         std::to_string(sample_to_cluster.size()));
      }
      view.clusters_.members[static_cast<std::size_t>(cluster)].push_back(row);
      expected[view.rows_[row]] = cluster;
    }
    if (expected != sample_to_cluster) {
      throw ParseError(
          "snapshot codec: behavioral sample map disagrees with assignment");
    }
    view.sample_to_cluster_ = std::move(sample_to_cluster);
    return view;
  }
  static const std::vector<int>& sample_map(
      const analysis::BehavioralView& view) {
    return view.sample_to_cluster_;
  }
};

// --- Public entry points ----------------------------------------------------

void write_landscape(ByteWriter& writer, const malware::Landscape& landscape) {
  put_i64(writer, landscape.start_time.seconds);
  put_i32(writer, landscape.weeks);
  writer.u64(landscape.exploits.size());
  for (const proto::ExploitTemplate& exploit : landscape.exploits) {
    put_exploit(writer, exploit);
  }
  writer.u64(landscape.payloads.size());
  for (const malware::PayloadSpec& payload : landscape.payloads) {
    put_payload_spec(writer, payload);
  }
  writer.u64(landscape.families.size());
  for (const malware::MalwareFamily& family : landscape.families) {
    writer.u32(family.id);
    put_string(writer, family.name);
    writer.u64(family.variants.size());
    for (const malware::VariantId id : family.variants) writer.u32(id);
  }
  writer.u64(landscape.variants.size());
  for (const malware::MalwareVariant& variant : landscape.variants) {
    put_variant(writer, variant);
  }
}

malware::Landscape read_landscape(ByteReader& reader) {
  malware::Landscape landscape;
  landscape.start_time.seconds = get_i64(reader);
  landscape.weeks = get_i32(reader);
  const std::size_t exploits = get_count(reader, 12);
  landscape.exploits.reserve(exploits);
  for (std::size_t i = 0; i < exploits; ++i) {
    landscape.exploits.push_back(get_exploit(reader));
  }
  const std::size_t payloads = get_count(reader, 24);
  landscape.payloads.reserve(payloads);
  for (std::size_t i = 0; i < payloads; ++i) {
    landscape.payloads.push_back(get_payload_spec(reader));
  }
  const std::size_t families = get_count(reader, 16);
  landscape.families.reserve(families);
  for (std::size_t i = 0; i < families; ++i) {
    malware::MalwareFamily family;
    family.id = reader.u32();
    family.name = get_string(reader);
    const std::size_t members = get_count(reader, 4);
    family.variants.reserve(members);
    for (std::size_t v = 0; v < members; ++v) {
      family.variants.push_back(reader.u32());
    }
    landscape.families.push_back(std::move(family));
  }
  const std::size_t variants = get_count(reader, 64);
  landscape.variants.reserve(variants);
  for (std::size_t i = 0; i < variants; ++i) {
    landscape.variants.push_back(get_variant(reader));
  }
  return landscape;
}

void write_database(ByteWriter& writer, const honeypot::EventDatabase& db) {
  writer.u64(db.events().size());
  for (const honeypot::AttackEvent& event : db.events()) {
    put_event(writer, event);
  }
  writer.u64(db.samples().size());
  for (const honeypot::MalwareSample& sample : db.samples()) {
    put_sample(writer, sample);
  }
}

honeypot::EventDatabase read_database(ByteReader& reader) {
  const std::size_t event_count = get_count(reader, 32);
  std::vector<honeypot::AttackEvent> events;
  events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    events.push_back(get_event(reader));
    if (events.back().id != i) {
      throw ParseError("snapshot codec: event id " +
                       std::to_string(events.back().id) +
                       " out of order at row " + std::to_string(i));
    }
  }
  const std::size_t sample_count = get_count(reader, 32);
  std::vector<honeypot::MalwareSample> samples;
  samples.reserve(sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) {
    samples.push_back(get_sample(reader));
    if (samples.back().id != i) {
      throw ParseError("snapshot codec: sample id " +
                       std::to_string(samples.back().id) +
                       " out of order at row " + std::to_string(i));
    }
  }
  for (const honeypot::AttackEvent& event : events) {
    if (event.sample.has_value() && *event.sample >= samples.size()) {
      throw ParseError("snapshot codec: event " + std::to_string(event.id) +
                       " references unknown sample " +
                       std::to_string(*event.sample));
    }
  }
  return EventDatabaseAccess::restore(std::move(events), std::move(samples));
}

void write_enrichment_stats(ByteWriter& writer,
                            const honeypot::EnrichmentStats& stats) {
  writer.u64(stats.submitted);
  writer.u64(stats.executed);
  writer.u64(stats.failed);
  writer.u64(stats.parse_failures);
  writer.u64(stats.sandbox_faults);
  writer.u64(stats.label_gaps);
}

honeypot::EnrichmentStats read_enrichment_stats(ByteReader& reader) {
  honeypot::EnrichmentStats stats;
  stats.submitted = reader.u64();
  stats.executed = reader.u64();
  stats.failed = reader.u64();
  stats.parse_failures = reader.u64();
  stats.sandbox_faults = reader.u64();
  stats.label_gaps = reader.u64();
  return stats;
}

void write_fault_report(ByteWriter& writer, const fault::FaultReport& report) {
  writer.u64(report.attacks_lost_to_outage);
  writer.u64(report.proxy_attempts);
  writer.u64(report.proxy_failures);
  writer.u64(report.proxy_retries);
  writer.u64(report.refinements_abandoned);
  put_i64(writer, report.proxy_backoff_seconds);
  writer.u64(report.downloads_refused);
  writer.u64(report.downloads_corrupted);
  writer.u64(report.sandbox_failures);
  writer.u64(report.av_label_gaps);
  // Checked-decision counters (format version 2): on resume the
  // injector is never re-exercised, so fault.<site>.checked metrics
  // are only uniform across fresh and resumed runs if the snapshot
  // carries them.
  writer.u64(report.sensor_checks);
  writer.u64(report.download_checks);
  writer.u64(report.sandbox_checks);
  writer.u64(report.av_label_checks);
  // Ingest delivery counters (format version 3): the epoch loop's
  // kill-resume guarantee extends to fault.delivery.* metrics, so the
  // delivery bookkeeping must survive in the snapshot too.
  writer.u64(report.delivery_checks);
  writer.u64(report.delivery_failures);
  writer.u64(report.delivery_retries);
  writer.u64(report.delivery_retry_exhausted);
  put_i64(writer, report.delivery_backoff_seconds);
}

fault::FaultReport read_fault_report(ByteReader& reader) {
  fault::FaultReport report;
  report.attacks_lost_to_outage = reader.u64();
  report.proxy_attempts = reader.u64();
  report.proxy_failures = reader.u64();
  report.proxy_retries = reader.u64();
  report.refinements_abandoned = reader.u64();
  report.proxy_backoff_seconds = get_i64(reader);
  report.downloads_refused = reader.u64();
  report.downloads_corrupted = reader.u64();
  report.sandbox_failures = reader.u64();
  report.av_label_gaps = reader.u64();
  report.sensor_checks = reader.u64();
  report.download_checks = reader.u64();
  report.sandbox_checks = reader.u64();
  report.av_label_checks = reader.u64();
  report.delivery_checks = reader.u64();
  report.delivery_failures = reader.u64();
  report.delivery_retries = reader.u64();
  report.delivery_retry_exhausted = reader.u64();
  report.delivery_backoff_seconds = get_i64(reader);
  return report;
}

void write_attack_event(ByteWriter& writer,
                        const honeypot::AttackEvent& event) {
  put_event(writer, event);
}

honeypot::AttackEvent read_attack_event(ByteReader& reader) {
  return get_event(reader);
}

void write_epm_result(ByteWriter& writer, const cluster::EpmResult& result) {
  writer.u8(static_cast<std::uint8_t>(result.schema.dimension));
  put_string_vector(writer, result.schema.names);
  writer.u64(result.invariants.feature_count());
  for (std::size_t feature = 0; feature < result.invariants.feature_count();
       ++feature) {
    put_string_vector(writer, result.invariants.sorted_values(feature));
  }
  writer.u64(result.patterns.size());
  for (const cluster::Pattern& pattern : result.patterns) {
    put_pattern(writer, pattern);
  }
  writer.u64(result.assignment.size());
  for (const int cluster : result.assignment) put_i32(writer, cluster);
  writer.u64(result.event_ids.size());
  for (const honeypot::EventId id : result.event_ids) writer.u64(id);
}

cluster::EpmResult read_epm_result(ByteReader& reader) {
  cluster::FeatureSchema schema;
  schema.dimension = get_enum<cluster::Dimension>(
      reader, static_cast<std::uint8_t>(cluster::Dimension::kMu), "Dimension");
  schema.names = get_string_vector(reader);
  const std::size_t features = get_count(reader, 8);
  cluster::InvariantTable invariants{features};
  for (std::size_t feature = 0; feature < features; ++feature) {
    for (std::string& value : get_string_vector(reader)) {
      invariants.add(feature, std::move(value));
    }
  }
  const std::size_t pattern_count = get_count(reader, 8);
  std::vector<cluster::Pattern> patterns;
  patterns.reserve(pattern_count);
  for (std::size_t i = 0; i < pattern_count; ++i) {
    patterns.push_back(get_pattern(reader));
  }
  const std::size_t rows = get_count(reader, 4);
  std::vector<int> assignment;
  assignment.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) assignment.push_back(get_i32(reader));
  const std::size_t ids = get_count(reader, 8);
  std::vector<honeypot::EventId> event_ids;
  event_ids.reserve(ids);
  for (std::size_t i = 0; i < ids; ++i) event_ids.push_back(reader.u64());
  return EpmResultAccess::restore(std::move(schema), std::move(invariants),
                                  std::move(patterns), std::move(assignment),
                                  std::move(event_ids));
}

void write_behavioral_view(ByteWriter& writer,
                           const analysis::BehavioralView& view) {
  writer.u64(view.row_count());
  for (std::size_t row = 0; row < view.row_count(); ++row) {
    writer.u32(view.sample_of_row(row));
  }
  writer.u64(view.clusters().assignment.size());
  for (const int cluster : view.clusters().assignment) {
    put_i32(writer, cluster);
  }
  const std::vector<int>& sample_map = BehavioralViewAccess::sample_map(view);
  writer.u64(sample_map.size());
  for (const int cluster : sample_map) put_i32(writer, cluster);
}

analysis::BehavioralView read_behavioral_view(ByteReader& reader) {
  const std::size_t row_count = get_count(reader, 4);
  std::vector<honeypot::SampleId> rows;
  rows.reserve(row_count);
  for (std::size_t i = 0; i < row_count; ++i) rows.push_back(reader.u32());
  const std::size_t assignment_count = get_count(reader, 4);
  std::vector<int> assignment;
  assignment.reserve(assignment_count);
  for (std::size_t i = 0; i < assignment_count; ++i) {
    assignment.push_back(get_i32(reader));
  }
  const std::size_t map_count = get_count(reader, 4);
  std::vector<int> sample_to_cluster;
  sample_to_cluster.reserve(map_count);
  for (std::size_t i = 0; i < map_count; ++i) {
    sample_to_cluster.push_back(get_i32(reader));
  }
  return BehavioralViewAccess::restore(std::move(rows), std::move(assignment),
                                       std::move(sample_to_cluster));
}

}  // namespace repro::snapshot
