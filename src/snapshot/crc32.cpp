#include "snapshot/crc32.hpp"

#include <array>

namespace repro::snapshot {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xedb8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t crc) noexcept {
  std::uint32_t c = crc ^ 0xffff'ffffu;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffff'ffffu;
}

}  // namespace repro::snapshot
