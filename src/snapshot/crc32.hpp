// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Snapshot files carry one CRC per section plus a whole-file trailer;
// any single-bit flip anywhere in a snapshot is therefore detected
// before a byte of it reaches a decoder.
#pragma once

#include <cstdint>
#include <span>

namespace repro::snapshot {

/// CRC-32 of `data`, continuing from `crc` (pass 0 to start; feeding
/// chunks sequentially equals one call over the concatenation).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t crc = 0) noexcept;

}  // namespace repro::snapshot
