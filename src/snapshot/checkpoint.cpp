#include "snapshot/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "cluster/backend.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/crc32.hpp"
#include "util/byteio.hpp"
#include "util/error.hpp"

namespace repro::snapshot {

namespace {

namespace fs = std::filesystem;

[[noreturn]] void throw_io(const std::string& action, const std::string& path) {
  throw IoError("checkpoint: cannot " + action + " " + path + ": " +
                std::strerror(errno));
}

/// Writes `bytes` to `path` atomically and durably: the data goes to
/// "<path>.tmp" first, is fsynced, renamed over `path`, and the parent
/// directory is fsynced so the rename itself survives a crash. A
/// partial write therefore only ever leaves a ".tmp" file behind —
/// never a half-written snapshot under the final name.
/// `short_write` truncates the temp file halfway and reports false
/// without renaming (the mid-write crash seam).
bool atomic_write(const std::string& path, std::span<const std::uint8_t> bytes,
                  bool short_write) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("open", tmp);
  const std::size_t count = short_write ? bytes.size() / 2 : bytes.size();
  std::size_t written = 0;
  while (written < count) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, count - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (short_write) {
    ::close(fd);  // deliberately no fsync, no rename: simulated crash
    return false;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io("fsync", tmp);
  }
  if (::close(fd) != 0) throw_io("close", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) throw_io("rename", tmp);
  const fs::path dir = fs::path{path}.parent_path();
  const int dir_fd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) throw_io("open directory", dir.string());
  if (::fsync(dir_fd) != 0) {
    ::close(dir_fd);
    throw_io("fsync directory", dir.string());
  }
  ::close(dir_fd);
  return true;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw ParseError("checkpoint: cannot read " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  if (in.bad()) throw ParseError("checkpoint: cannot read " + path);
  return bytes;
}

const Section& find_section(const std::vector<Section>& sections,
                            std::string_view name) {
  for (const Section& section : sections) {
    if (section.name == name) return section;
  }
  throw ParseError("checkpoint: missing section '" + std::string{name} + "'");
}

/// Runs one codec decoder over a section and requires it to consume the
/// payload exactly.
template <typename Fn>
auto decode_section(const std::vector<Section>& sections,
                    std::string_view name, Fn&& decode) {
  const Section& section = find_section(sections, name);
  ByteReader reader{section.payload};
  auto value = decode(reader);
  if (reader.remaining() != 0) {
    throw ParseError("checkpoint: section '" + std::string{name} + "' has " +
                     std::to_string(reader.remaining()) + " trailing bytes");
  }
  return value;
}

Section make_section(std::string name, ByteWriter writer) {
  return Section{std::move(name), writer.take()};
}

}  // namespace

std::string_view stage_name(Stage stage) {
  switch (stage) {
    case Stage::kLandscape:
      return "landscape";
    case Stage::kDatabase:
      return "database";
    case Stage::kEpm:
      return "epm";
    case Stage::kBehavioral:
      return "behavioral";
    case Stage::kEpoch:
      return "epoch";
  }
  return "unknown";
}

std::string stage_filename(Stage stage) {
  return "stage" + std::to_string(static_cast<int>(stage)) + "-" +
         std::string{stage_name(stage)} + ".snap";
}

std::string epoch_filename(std::uint64_t epoch) {
  std::string digits = std::to_string(epoch);
  if (digits.size() < 4) digits.insert(0, 4 - digits.size(), '0');
  return "epoch-" + digits + ".snap";
}

std::vector<std::uint8_t> encode_snapshot(Stage stage,
                                          std::uint64_t fingerprint,
                                          const std::vector<Section>& sections) {
  ByteWriter writer;
  writer.u32(kSnapshotMagic);
  writer.u32(kSnapshotVersion);
  writer.u8(static_cast<std::uint8_t>(stage));
  writer.u64(fingerprint);
  writer.u32(static_cast<std::uint32_t>(sections.size()));
  for (const Section& section : sections) {
    writer.u32(static_cast<std::uint32_t>(section.name.size()));
    writer.text(section.name);
    writer.u64(section.payload.size());
    writer.bytes(section.payload);
    writer.u32(crc32(section.payload));
  }
  writer.u32(crc32(writer.data()));
  writer.u32(kSnapshotEndMagic);
  return writer.take();
}

DecodedSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  // The trailer protects everything before it; verify it first so any
  // single flipped bit anywhere in the file is caught regardless of
  // whether it would also break structural parsing.
  if (bytes.size() < 8) {
    throw ParseError("snapshot: file too short for trailer");
  }
  {
    ByteReader trailer{bytes.subspan(bytes.size() - 8)};
    const std::uint32_t stored_crc = trailer.u32();
    const std::uint32_t end_magic = trailer.u32();
    if (end_magic != kSnapshotEndMagic) {
      throw ParseError("snapshot: missing end marker (truncated file?)");
    }
    if (crc32(bytes.first(bytes.size() - 8)) != stored_crc) {
      throw ParseError("snapshot: file checksum mismatch");
    }
  }

  ByteReader reader{bytes.first(bytes.size() - 8)};
  if (reader.u32() != kSnapshotMagic) {
    throw ParseError("snapshot: bad magic");
  }
  const std::uint32_t version = reader.u32();
  if (version != kSnapshotVersion) {
    throw ParseError("snapshot: unsupported format version " +
                     std::to_string(version));
  }
  DecodedSnapshot decoded;
  const std::uint8_t stage = reader.u8();
  if (stage < static_cast<std::uint8_t>(Stage::kLandscape) ||
      stage > static_cast<std::uint8_t>(Stage::kEpoch)) {
    throw ParseError("snapshot: out-of-range stage " + std::to_string(stage));
  }
  decoded.stage = static_cast<Stage>(stage);
  decoded.fingerprint = reader.u64();
  const std::uint32_t section_count = reader.u32();
  if (section_count > reader.remaining() / 16) {
    throw ParseError("snapshot: implausible section count " +
                     std::to_string(section_count));
  }
  decoded.sections.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section section;
    const std::uint32_t name_length = reader.u32();
    section.name = reader.fixed_text(name_length);
    const std::uint64_t payload_length = reader.u64();
    if (payload_length > reader.remaining()) {
      throw ParseError("snapshot: section '" + section.name +
                       "' length exceeds file size");
    }
    section.payload = reader.bytes(static_cast<std::size_t>(payload_length));
    const std::uint32_t stored_crc = reader.u32();
    if (crc32(section.payload) != stored_crc) {
      throw ParseError("snapshot: section '" + section.name +
                       "' checksum mismatch");
    }
    decoded.sections.push_back(std::move(section));
  }
  if (reader.remaining() != 0) {
    throw ParseError("snapshot: " + std::to_string(reader.remaining()) +
                     " trailing bytes after last section");
  }
  return decoded;
}

CheckpointStore::CheckpointStore(CheckpointOptions options,
                                 std::uint64_t fingerprint)
    : options_(std::move(options)), fingerprint_(fingerprint) {
  if (enabled()) fs::create_directories(options_.directory);
}

void CheckpointStore::save_file(const std::string& filename, Stage stage,
                                const std::vector<Section>& sections,
                                bool short_write,
                                const std::string& crash_label) {
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(stage, fingerprint_, sections);
  const std::string path =
      (fs::path{options_.directory} / filename).string();
  if (!atomic_write(path, bytes, short_write)) {
    throw CheckpointInterrupted("simulated crash mid-write of " + crash_label);
  }
  ++activity_.saved;
  activity_.bytes_written += bytes.size();
}

void CheckpointStore::save_stage(Stage stage,
                                 const std::vector<Section>& sections) {
  if (!enabled()) return;
  save_file(stage_filename(stage), stage, sections,
            options_.short_write_stage == static_cast<int>(stage),
            "stage " + std::string{stage_name(stage)});
  if (options_.stop_after_stage == static_cast<int>(stage)) {
    throw CheckpointInterrupted("simulated crash after stage " +
                                std::string{stage_name(stage)});
  }
}

std::optional<std::vector<Section>> CheckpointStore::load_stage(Stage stage) {
  if (!enabled()) return std::nullopt;
  const std::string path =
      (fs::path{options_.directory} / stage_filename(stage)).string();
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  try {
    DecodedSnapshot decoded = decode_snapshot(read_file(path));
    if (decoded.stage != stage) {
      throw ParseError("snapshot: file contains stage " +
                       std::string{stage_name(decoded.stage)} +
                       " but was named for " + std::string{stage_name(stage)});
    }
    if (decoded.fingerprint != fingerprint_) {
      quarantine(path, /*stale=*/true);
      return std::nullopt;
    }
    ++activity_.restored;
    return std::move(decoded.sections);
  } catch (const ParseError&) {
    quarantine(path, /*stale=*/false);
    return std::nullopt;
  }
}

std::string unique_quarantine_path(const std::string& path) {
  std::string candidate = path + ".quarantined";
  std::error_code ec;
  for (std::uint64_t n = 2; fs::exists(candidate, ec); ++n) {
    candidate = path + ".quarantined-" + std::to_string(n);
  }
  return candidate;
}

void CheckpointStore::quarantine(const std::string& path, bool stale) {
  std::error_code ec;
  // Best-effort evidence move, not a durability publish: resume
  // correctness only requires that the bad checkpoint stop matching the
  // live naming scheme, which the rename achieves even if it is lost in
  // a crash (the next scan simply re-quarantines).
  // repro-lint: allow(RL010) quarantine rename is not a durability publish
  fs::rename(path, unique_quarantine_path(path), ec);
  if (ec) fs::remove(path, ec);  // last resort: never resume from it
  ++activity_.quarantined;
  if (stale) ++activity_.stale;
}

void CheckpointStore::save_landscape(const malware::Landscape& landscape) {
  if (!enabled()) return;
  ByteWriter writer;
  write_landscape(writer, landscape);
  save_stage(Stage::kLandscape,
             {make_section("landscape", std::move(writer))});
}

std::optional<malware::Landscape> CheckpointStore::load_landscape() {
  const auto sections = load_stage(Stage::kLandscape);
  if (!sections.has_value()) return std::nullopt;
  try {
    malware::Landscape landscape =
        decode_section(*sections, "landscape", read_landscape);
    // A decoded landscape must satisfy the same cross-reference
    // invariants as a freshly built one.
    landscape.validate();
    return landscape;
  } catch (const ParseError&) {
  } catch (const ConfigError&) {
  }
  quarantine(
      (fs::path{options_.directory} / stage_filename(Stage::kLandscape))
          .string(),
      /*stale=*/false);
  --activity_.restored;
  return std::nullopt;
}

void CheckpointStore::save_database(const DatabaseStage& stage) {
  if (!enabled()) return;
  ByteWriter db_writer;
  write_database(db_writer, stage.db);
  ByteWriter stats_writer;
  write_enrichment_stats(stats_writer, stage.enrichment);
  ByteWriter fault_writer;
  write_fault_report(fault_writer, stage.fault_report);
  save_stage(Stage::kDatabase,
             {make_section("database", std::move(db_writer)),
              make_section("enrichment", std::move(stats_writer)),
              make_section("fault-report", std::move(fault_writer))});
}

std::optional<DatabaseStage> CheckpointStore::load_database() {
  const auto sections = load_stage(Stage::kDatabase);
  if (!sections.has_value()) return std::nullopt;
  try {
    DatabaseStage stage;
    stage.db = decode_section(*sections, "database", read_database);
    stage.enrichment =
        decode_section(*sections, "enrichment", read_enrichment_stats);
    stage.fault_report =
        decode_section(*sections, "fault-report", read_fault_report);
    stage.db.check_consistency();
    return stage;
  } catch (const ParseError&) {
  } catch (const ConfigError&) {
  }
  quarantine(
      (fs::path{options_.directory} / stage_filename(Stage::kDatabase))
          .string(),
      /*stale=*/false);
  --activity_.restored;
  return std::nullopt;
}

void CheckpointStore::save_epm(const EpmStage& stage) {
  if (!enabled()) return;
  ByteWriter e_writer;
  write_epm_result(e_writer, stage.e);
  ByteWriter p_writer;
  write_epm_result(p_writer, stage.p);
  ByteWriter m_writer;
  write_epm_result(m_writer, stage.m);
  save_stage(Stage::kEpm, {make_section("epsilon", std::move(e_writer)),
                           make_section("pi", std::move(p_writer)),
                           make_section("mu", std::move(m_writer))});
}

std::optional<EpmStage> CheckpointStore::load_epm() {
  const auto sections = load_stage(Stage::kEpm);
  if (!sections.has_value()) return std::nullopt;
  try {
    EpmStage stage;
    stage.e = decode_section(*sections, "epsilon", read_epm_result);
    stage.p = decode_section(*sections, "pi", read_epm_result);
    stage.m = decode_section(*sections, "mu", read_epm_result);
    return stage;
  } catch (const ParseError&) {
  }
  quarantine((fs::path{options_.directory} / stage_filename(Stage::kEpm))
                 .string(),
             /*stale=*/false);
  --activity_.restored;
  return std::nullopt;
}

void CheckpointStore::save_behavioral(const analysis::BehavioralView& view,
                                      cluster::BackendKind backend) {
  if (!enabled()) return;
  ByteWriter meta_writer;
  meta_writer.u8(static_cast<std::uint8_t>(backend));
  ByteWriter writer;
  write_behavioral_view(writer, view);
  save_stage(Stage::kBehavioral,
             {make_section("behavioral-meta", std::move(meta_writer)),
              make_section("behavioral", std::move(writer))});
}

void CheckpointStore::save_epoch(const EpochStage& stage) {
  if (!enabled()) return;
  ByteWriter meta_writer;
  meta_writer.u64(stage.epoch);
  meta_writer.u64(stage.wal_records);
  meta_writer.u8(static_cast<std::uint8_t>(stage.b_backend));
  ByteWriter db_writer;
  write_database(db_writer, stage.database.db);
  ByteWriter stats_writer;
  write_enrichment_stats(stats_writer, stage.database.enrichment);
  ByteWriter fault_writer;
  write_fault_report(fault_writer, stage.database.fault_report);
  ByteWriter e_writer;
  write_epm_result(e_writer, stage.epm.e);
  ByteWriter p_writer;
  write_epm_result(p_writer, stage.epm.p);
  ByteWriter m_writer;
  write_epm_result(m_writer, stage.epm.m);
  ByteWriter b_writer;
  write_behavioral_view(b_writer, stage.behavioral);
  const int ordinal = static_cast<int>(stage.epoch) + 1;
  save_file(epoch_filename(stage.epoch), Stage::kEpoch,
            {make_section("epoch-meta", std::move(meta_writer)),
             make_section("database", std::move(db_writer)),
             make_section("enrichment", std::move(stats_writer)),
             make_section("fault-report", std::move(fault_writer)),
             make_section("epsilon", std::move(e_writer)),
             make_section("pi", std::move(p_writer)),
             make_section("mu", std::move(m_writer)),
             make_section("behavioral", std::move(b_writer)),
             Section{"ingest", stage.ingest_blob},
             Section{"epsilon-counts", stage.e_counts},
             Section{"pi-counts", stage.p_counts},
             Section{"mu-counts", stage.m_counts},
             Section{"signatures", stage.signature_blob}},
            options_.short_write_epoch == ordinal,
            "epoch " + std::to_string(stage.epoch));
  if (options_.stop_after_epoch == ordinal) {
    throw CheckpointInterrupted("simulated crash after epoch " +
                                std::to_string(stage.epoch));
  }
}

std::optional<EpochStage> CheckpointStore::load_latest_epoch() {
  if (!enabled()) return std::nullopt;
  // Collect every "epoch-NNNN.snap" present, newest first.
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options_.directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("epoch-") || !name.ends_with(".snap")) continue;
    const std::string digits =
        name.substr(6, name.size() - 6 - std::string_view{".snap"}.size());
    if (digits.empty() || digits.size() > 19) continue;
    std::uint64_t index = 0;
    bool numeric = true;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      index = index * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) continue;
    candidates.emplace_back(index, entry.path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [index, path] : candidates) {
    try {
      DecodedSnapshot decoded = decode_snapshot(read_file(path));
      if (decoded.stage != Stage::kEpoch) {
        throw ParseError("snapshot: epoch file contains stage " +
                         std::string{stage_name(decoded.stage)});
      }
      if (decoded.fingerprint != fingerprint_) {
        quarantine(path, /*stale=*/true);
        continue;
      }
      EpochStage stage;
      decode_section(decoded.sections, "epoch-meta", [&](ByteReader& reader) {
        stage.epoch = reader.u64();
        stage.wal_records = reader.u64();
        stage.b_backend = cluster::backend_kind_from_tag(reader.u8());
        return 0;
      });
      if (stage.epoch != index) {
        throw ParseError("snapshot: epoch file " + path +
                         " holds epoch " + std::to_string(stage.epoch));
      }
      stage.database.db =
          decode_section(decoded.sections, "database", read_database);
      stage.database.enrichment = decode_section(decoded.sections, "enrichment",
                                                 read_enrichment_stats);
      stage.database.fault_report = decode_section(
          decoded.sections, "fault-report", read_fault_report);
      stage.epm.e = decode_section(decoded.sections, "epsilon", read_epm_result);
      stage.epm.p = decode_section(decoded.sections, "pi", read_epm_result);
      stage.epm.m = decode_section(decoded.sections, "mu", read_epm_result);
      stage.behavioral =
          decode_section(decoded.sections, "behavioral", read_behavioral_view);
      stage.ingest_blob = find_section(decoded.sections, "ingest").payload;
      stage.e_counts = find_section(decoded.sections, "epsilon-counts").payload;
      stage.p_counts = find_section(decoded.sections, "pi-counts").payload;
      stage.m_counts = find_section(decoded.sections, "mu-counts").payload;
      stage.signature_blob =
          find_section(decoded.sections, "signatures").payload;
      stage.database.db.check_consistency();
      ++activity_.restored;
      return stage;
    } catch (const ParseError&) {
    } catch (const ConfigError&) {
    }
    quarantine(path, /*stale=*/false);
  }
  return std::nullopt;
}

std::optional<analysis::BehavioralView> CheckpointStore::load_behavioral(
    cluster::BackendKind expected) {
  const auto sections = load_stage(Stage::kBehavioral);
  if (!sections.has_value()) return std::nullopt;
  const std::string path =
      (fs::path{options_.directory} / stage_filename(Stage::kBehavioral))
          .string();
  try {
    const cluster::BackendKind backend =
        decode_section(*sections, "behavioral-meta", [](ByteReader& reader) {
          return cluster::backend_kind_from_tag(reader.u8());
        });
    if (backend != expected) {
      // Produced by another backend: stale by configuration, exactly
      // like a fingerprint mismatch — quarantine and recompute.
      quarantine(path, /*stale=*/true);
      --activity_.restored;
      return std::nullopt;
    }
    return decode_section(*sections, "behavioral", read_behavioral_view);
  } catch (const ParseError&) {
  }
  quarantine(path, /*stale=*/false);
  --activity_.restored;
  return std::nullopt;
}

}  // namespace repro::snapshot
