// Crash-safe pipeline checkpoints.
//
// A CheckpointStore persists the state crossing each stage boundary of
// the paper pipeline as one snapshot file per stage. The container
// format is versioned and checksummed end to end (per-section CRC-32
// plus a whole-file CRC trailer), writes are atomic (temp file, fsync,
// rename, directory fsync), and every snapshot embeds a fingerprint of
// the producing ScenarioOptions so checkpoints of a *different*
// configuration are rejected as stale instead of silently reused. A
// load never fails the caller: corrupt, truncated or stale files are
// quarantined (renamed aside) and the stage is simply recomputed, so a
// run killed at any point — including mid-write — resumes to output
// byte-identical to an uninterrupted run.
//
// File layout (all little-endian, via util/byteio):
//   [magic u32][format version u32][stage u8][fingerprint u64]
//   [section count u32]
//   per section: [name len u32][name][payload len u64][payload]
//                [payload crc32 u32]
//   [file crc32 u32]  — over everything before it
//   [end magic u32]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/bview.hpp"
#include "cluster/behavioral.hpp"
#include "cluster/epm.hpp"
#include "fault/injector.hpp"
#include "honeypot/database.hpp"
#include "honeypot/enrichment.hpp"
#include "malware/landscape.hpp"

namespace repro::snapshot {

inline constexpr std::uint32_t kSnapshotMagic = 0x53'47'4e'53;  // "SNGS"
inline constexpr std::uint32_t kSnapshotEndMagic = 0x44'4e'45'53;  // "SEND"
// Version 2: FaultReport gained the four checked-decision counters.
// Version 3: FaultReport gained the five ingest-delivery counters and
// the epoch stage was added for the streaming ingest loop.
// Version 4: the epoch stage gained the incremental-clustering state
// sections (per-dimension EPM counting blobs + the MinHash signature
// store).
// Version 5: the behavioral stage and the epoch meta stamp the
// producing cluster backend, so a partition computed by one backend
// can never silently seed another.
// Older files are quarantined as unreadable and their stages
// recomputed — the normal graceful-degradation path, not an error.
inline constexpr std::uint32_t kSnapshotVersion = 5;

/// The pipeline's checkpointable stage boundaries, in execution order.
enum class Stage : std::uint8_t {
  kLandscape = 1,   // ground truth built
  kDatabase = 2,    // deployment run + enrichment done
  kEpm = 3,         // E/P/M clustering done
  kBehavioral = 4,  // behavioral clustering done
  kEpoch = 5,       // streaming ingest epoch cut (full pipeline state)
};

[[nodiscard]] std::string_view stage_name(Stage stage);
/// Snapshot file name for a stage, e.g. "stage2-database.snap".
[[nodiscard]] std::string stage_filename(Stage stage);
/// Snapshot file name for a streaming epoch cut, e.g. "epoch-0003.snap".
[[nodiscard]] std::string epoch_filename(std::uint64_t epoch);

/// One named payload inside a snapshot file.
struct Section {
  std::string name;
  std::vector<std::uint8_t> payload;
};

/// Serializes sections into the container format described above.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    Stage stage, std::uint64_t fingerprint,
    const std::vector<Section>& sections);

/// Parsed container header + sections.
struct DecodedSnapshot {
  Stage stage = Stage::kLandscape;
  std::uint64_t fingerprint = 0;
  std::vector<Section> sections;
};

/// Validates magic, version, stage range, section structure and every
/// CRC. Throws ParseError on any deviation — a truncated file or a
/// single flipped bit never decodes.
[[nodiscard]] DecodedSnapshot decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// First unused quarantine name for `path`: "<path>.quarantined", then
/// "<path>.quarantined-2", "-3", ... — so repeated corruptions of the
/// same file keep every piece of quarantined evidence instead of
/// overwriting the previous one. Shared with the ingest WAL.
[[nodiscard]] std::string unique_quarantine_path(const std::string& path);

/// Thrown by the test seams below to simulate the process dying.
class CheckpointInterrupted : public std::runtime_error {
 public:
  explicit CheckpointInterrupted(const std::string& what)
      : std::runtime_error(what) {}
};

struct CheckpointOptions {
  /// Directory the snapshots live in; empty disables checkpointing.
  /// Created on first use.
  std::string directory;
  /// Test seam: throw CheckpointInterrupted right after the stage with
  /// this number has been durably saved (0 = never). Simulates a crash
  /// between stages.
  int stop_after_stage = 0;
  /// Test seam: abandon the temp file halfway through writing stage N
  /// and throw CheckpointInterrupted (0 = never). Simulates a crash
  /// mid-write; the partial ".tmp" must never be mistaken for a
  /// snapshot on resume.
  int short_write_stage = 0;
  /// Same two seams for the streaming epoch loop, keyed by 1-based
  /// epoch ordinal (epoch index + 1; 0 = never).
  int stop_after_epoch = 0;
  int short_write_epoch = 0;
};

/// Post-deployment state bundled into the stage-2 snapshot. The fault
/// report must travel with the database: on resume the injector is
/// never re-exercised, so the counters can only come from the snapshot.
struct DatabaseStage {
  honeypot::EventDatabase db;
  honeypot::EnrichmentStats enrichment;
  fault::FaultReport fault_report;
};

/// The three clustering results of the stage-3 snapshot.
struct EpmStage {
  cluster::EpmResult e;
  cluster::EpmResult p;
  cluster::EpmResult m;
};

/// One streaming epoch cut: the complete pipeline state after the
/// first `wal_records` WAL records were replayed and re-clustered.
/// `wal_records` — not the epoch index — is what resume keys on, so a
/// cut stays usable even if the run is restarted with a different
/// `--epochs` split.
struct EpochStage {
  std::uint64_t epoch = 0;        // 0-based epoch index that was cut
  std::uint64_t wal_records = 0;  // records covered by this state
  /// Backend that produced `behavioral`. The scenario fingerprint
  /// deliberately excludes the backend (everything else in a cut is
  /// backend-independent), so this tag is what stops an incremental
  /// resume from seeding one backend with another's partition.
  cluster::BackendKind b_backend = cluster::BackendKind::kLsh;
  DatabaseStage database;
  EpmStage epm;
  analysis::BehavioralView behavioral;
  /// Opaque ingest stream totals (ingest::encode_stream_totals).
  std::vector<std::uint8_t> ingest_blob;
  /// Opaque incremental-clustering state: per-dimension EPM counting
  /// blobs (cluster::IncrementalEpm::encode_counts) and the MinHash
  /// signature store (cluster::encode_signature_store). Empty when the
  /// cut was written by the full-recompute path — the engines then
  /// re-derive the state from the restored rows.
  std::vector<std::uint8_t> e_counts;
  std::vector<std::uint8_t> p_counts;
  std::vector<std::uint8_t> m_counts;
  std::vector<std::uint8_t> signature_blob;
};

class CheckpointStore {
 public:
  /// `fingerprint` identifies the producing configuration; snapshots
  /// carrying a different fingerprint are quarantined as stale.
  CheckpointStore(CheckpointOptions options, std::uint64_t fingerprint);

  [[nodiscard]] bool enabled() const noexcept {
    return !options_.directory.empty();
  }

  void save_landscape(const malware::Landscape& landscape);
  [[nodiscard]] std::optional<malware::Landscape> load_landscape();

  void save_database(const DatabaseStage& stage);
  [[nodiscard]] std::optional<DatabaseStage> load_database();

  void save_epm(const EpmStage& stage);
  [[nodiscard]] std::optional<EpmStage> load_epm();

  /// The behavioral stage travels with the backend that produced it.
  void save_behavioral(const analysis::BehavioralView& view,
                       cluster::BackendKind backend);
  /// Loads the behavioral stage iff it was produced by `expected`; a
  /// tag mismatch quarantines the file as stale (like a fingerprint
  /// mismatch) so the caller recomputes instead of silently reusing a
  /// partition from another backend.
  [[nodiscard]] std::optional<analysis::BehavioralView> load_behavioral(
      cluster::BackendKind expected);

  /// Durably writes one epoch cut to its own "epoch-NNNN.snap" file.
  void save_epoch(const EpochStage& stage);
  /// Newest valid epoch cut, scanning epoch files in descending index
  /// order; corrupt/stale files are quarantined and skipped, exactly
  /// like the stage loads above.
  [[nodiscard]] std::optional<EpochStage> load_latest_epoch();

  /// What the store did this run — lets callers (and tests) see whether
  /// a stage was restored or recomputed, and whether files were thrown
  /// out.
  struct Activity {
    std::size_t saved = 0;          // snapshots durably written
    std::size_t restored = 0;       // stages loaded from disk
    std::size_t quarantined = 0;    // corrupt/truncated files set aside
    std::size_t stale = 0;          // of quarantined: fingerprint mismatch
    std::size_t bytes_written = 0;  // encoded snapshot bytes persisted
  };
  [[nodiscard]] const Activity& activity() const noexcept {
    return activity_;
  }

 private:
  void save_file(const std::string& filename, Stage stage,
                 const std::vector<Section>& sections, bool short_write,
                 const std::string& crash_label);
  void save_stage(Stage stage, const std::vector<Section>& sections);
  [[nodiscard]] std::optional<std::vector<Section>> load_stage(Stage stage);
  void quarantine(const std::string& path, bool stale);

  CheckpointOptions options_;
  std::uint64_t fingerprint_ = 0;
  Activity activity_;
};

}  // namespace repro::snapshot
