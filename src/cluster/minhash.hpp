// MinHash signatures and LSH banding.
//
// Bayer et al. (NDSS'09) make behavioral clustering scale by avoiding
// the O(n^2) distance matrix: locality-sensitive hashing over MinHash
// signatures proposes only the pairs likely to exceed the Jaccard
// threshold. This is a faithful reimplementation: k = bands x rows
// min-wise hashes per profile; two profiles are candidates if any band
// of their signatures collides.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace repro::cluster {

class MinHasher {
 public:
  /// `hash_count` independent min-wise hash functions derived from the
  /// seed.
  MinHasher(std::size_t hash_count, std::uint64_t seed);

  /// Signature of a feature-id set (ids need not be sorted).
  [[nodiscard]] std::vector<std::uint64_t> signature(
      std::span<const std::uint64_t> feature_ids) const;

  [[nodiscard]] std::size_t hash_count() const noexcept {
    return salts_.size();
  }

  /// Fraction of equal components — an unbiased Jaccard estimate.
  [[nodiscard]] static double estimate_similarity(
      std::span<const std::uint64_t> a, std::span<const std::uint64_t> b);

 private:
  std::vector<std::uint64_t> salts_;
};

/// Banded LSH index over MinHash signatures.
class LshIndex {
 public:
  /// Signatures must have exactly bands*rows components.
  LshIndex(std::size_t bands, std::size_t rows);

  void insert(std::size_t item, std::span<const std::uint64_t> signature);

  /// All distinct candidate pairs (i < j) sharing at least one band
  /// bucket. Materializing the pair set costs O(sum of bucket sizes
  /// squared); prefer multi_item_buckets() for clustering, where the
  /// union-find short-circuits most of that work.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
  candidate_pairs() const;

  /// The distinct item lists of every bucket holding 2+ items, across
  /// all bands, in deterministic order (lexicographic — i.e. by
  /// smallest member, with a stable tie-break): identical member lists
  /// arising in several bands are returned once. A pair of similar
  /// items can still appear in multiple *distinct* buckets; the
  /// consumer deduplicates those cheaply, e.g. via union-find.
  [[nodiscard]] std::vector<std::vector<std::size_t>> multi_item_buckets()
      const;

  [[nodiscard]] std::size_t bands() const noexcept { return bands_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  std::size_t bands_;
  std::size_t rows_;
  /// Per band: bucket hash -> items.
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::size_t>>>
      buckets_;
};

/// Cross-epoch MinHash signature cache. A signature is a pure function
/// of one item's feature-id set, so when the item list only grows
/// between clustering passes (the streaming epoch loop appends
/// profiles, never mutates them) the cached prefix can be reused
/// verbatim and only new items need hashing. Items are identified
/// positionally; `config` pins the (bands, rows, seed) the signatures
/// were computed under — any mismatch or a shrunk item list resets the
/// cache. `reused`/`computed` are cumulative over the store's whole
/// history and survive kill/resume via the codec below.
struct SignatureStore {
  std::uint64_t config = 0;  // 0 = unconfigured
  std::vector<std::vector<std::uint64_t>> signatures;
  std::uint64_t reused = 0;
  std::uint64_t computed = 0;
  /// Positional cache of the per-item sorted feature-id sets the
  /// signatures are derived from, under the same append-only identity.
  /// Pure derived data: never serialized — a restored store starts
  /// empty and the next clustering pass recomputes it once.
  std::vector<std::vector<std::uint64_t>> id_sets;
};

/// Mixes (bands, rows, seed) into a non-zero configuration id.
[[nodiscard]] std::uint64_t signature_config(std::size_t bands,
                                             std::size_t rows,
                                             std::uint64_t seed);

/// Durable form of a signature store, in deterministic byte order.
[[nodiscard]] std::vector<std::uint8_t> encode_signature_store(
    const SignatureStore& store);
/// Inverse of encode_signature_store; throws ParseError on malformed
/// bytes.
[[nodiscard]] SignatureStore decode_signature_store(
    std::span<const std::uint8_t> blob);

}  // namespace repro::cluster
