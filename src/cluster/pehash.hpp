// peHash-style structural hashing (Wicherski, LEET'09) — the related-
// work baseline.
//
// peHash buckets PE binaries by hashing the header portions polymorphic
// packers do not mutate: two samples with equal hashes form one
// cluster. This reimplementation hashes the same structural signals
// (machine, subsystem, section count, per-section name /
// characteristics / log2-compressed sizes, import shape) and serves as
// the comparison baseline for the EPM mu-dimension clustering (ABL-3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace repro::cluster {

/// Structural hash of a PE image; nullopt for unparsable inputs.
[[nodiscard]] std::optional<std::string> pehash(
    std::span<const std::uint8_t> image);

/// Clusters items by equal hash; unparsable items become singletons.
struct PehashClusters {
  std::vector<int> assignment;                    // item -> cluster id
  std::vector<std::vector<std::size_t>> members;  // cluster id -> items

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return members.size();
  }
};

[[nodiscard]] PehashClusters pehash_cluster(
    const std::vector<std::span<const std::uint8_t>>& images);

}  // namespace repro::cluster
