// Patterns (Phases 3-4 of EPM clustering).
//
// A pattern is a tuple over a dimension's features where each field is
// either an invariant value or a "do not care" wildcard (Figure 2 of
// the paper). Instances are classified to the most specific matching
// pattern; all instances sharing a pattern form one EPM cluster.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/feature.hpp"
#include "cluster/invariants.hpp"

namespace repro::cluster {

class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<std::optional<std::string>> fields)
      : fields_(std::move(fields)) {}

  /// Generalizes an instance against the invariant table: invariant
  /// values are kept, everything else becomes a wildcard.
  [[nodiscard]] static Pattern generalize(const FeatureVector& instance,
                                          const InvariantTable& invariants);

  [[nodiscard]] bool matches(const FeatureVector& instance) const;

  /// Number of non-wildcard fields.
  [[nodiscard]] std::size_t specificity() const noexcept;

  /// True if every instance matching `other` also matches this pattern
  /// (this is equal or more general).
  [[nodiscard]] bool subsumes(const Pattern& other) const;

  /// Canonical key, e.g. "*|445" — stable across runs, injective over
  /// pattern content (literal '|', '*', and '\' are backslash-escaped;
  /// a wildcard is a bare '*'), usable for deduplication and as a
  /// cluster label.
  [[nodiscard]] std::string key() const;

  /// Pretty multi-field rendering with feature names, in the style of
  /// the paper's Section 4.2 pattern dump.
  [[nodiscard]] std::string describe(const FeatureSchema& schema) const;

  [[nodiscard]] const std::vector<std::optional<std::string>>& fields()
      const noexcept {
    return fields_;
  }

  friend bool operator==(const Pattern&, const Pattern&) = default;

 private:
  std::vector<std::optional<std::string>> fields_;
};

}  // namespace repro::cluster
