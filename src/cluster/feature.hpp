// EPM feature definition and extraction (Phase 1 of EPM clustering).
//
// Table 1 of the paper defines the features characterizing each
// dimension of the epsilon-pi-mu space. Feature values are canonical
// strings; every mu value is re-derived from the sample's bytes with
// the PE parser and libmagic-style detector (never from ground truth).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "honeypot/database.hpp"
#include "honeypot/event.hpp"

namespace repro::cluster {

/// The classified dimensions. The paper classifies epsilon, pi and mu;
/// gamma "carries no host-side information in SGNET" (footnote 1) and is
/// implemented here as an extension over the proxied-event subset, where
/// the sample factory's taint oracle does observe the hijack.
enum class Dimension : std::uint8_t { kEpsilon, kGamma, kPi, kMu };

[[nodiscard]] std::string dimension_name(Dimension dimension);

/// Ordered feature names of one dimension.
struct FeatureSchema {
  Dimension dimension = Dimension::kEpsilon;
  std::vector<std::string> names;

  [[nodiscard]] std::size_t size() const noexcept { return names.size(); }
};

/// Values aligned with a schema; "(n/a)" marks an unobservable value
/// (e.g. PE header fields of a truncated download).
struct FeatureVector {
  std::vector<std::string> values;
};

/// Sentinel for unobservable values.
inline constexpr const char* kNotAvailable = "(n/a)";

/// Epsilon: FSM path identifier, destination port.
[[nodiscard]] FeatureSchema epsilon_schema();
/// Gamma (extension): hijack technique, trampoline address, pad length.
[[nodiscard]] FeatureSchema gamma_schema();
/// Pi: download protocol, filename, protocol port, interaction type.
[[nodiscard]] FeatureSchema pi_schema();
/// Mu: MD5, size, libmagic type, machine, #sections, #DLLs, OS version,
/// linker version, section names, imported DLLs, Kernel32 symbols.
[[nodiscard]] FeatureSchema mu_schema();

[[nodiscard]] FeatureVector extract_epsilon(const honeypot::AttackEvent& event);
[[nodiscard]] FeatureVector extract_gamma(const honeypot::AttackEvent& event);
[[nodiscard]] FeatureVector extract_pi(const honeypot::AttackEvent& event);
/// Parses the sample bytes; unparsable images yield "(n/a)" PE fields
/// but still expose md5/size/file type.
[[nodiscard]] FeatureVector extract_mu(const honeypot::MalwareSample& sample);

/// Attack-instance context needed by invariant discovery: which
/// attacker used the value and which honeypot observed it.
struct InstanceContext {
  net::Ipv4 source;
  net::Ipv4 destination;
};

/// Feature matrix of one dimension over a set of attack events.
struct DimensionData {
  FeatureSchema schema;
  std::vector<FeatureVector> instances;
  std::vector<InstanceContext> contexts;
  /// Event id behind each row.
  std::vector<honeypot::EventId> event_ids;
  /// Events that carry no observation for this dimension and were
  /// skipped (e.g. refused downloads, unproxied conversations). The
  /// clustering degrades gracefully over what remains; this counter
  /// keeps the gap visible instead of silent.
  std::size_t skipped_events = 0;
};

/// Builds the per-dimension matrices for all events in the database
/// that carry the needed observation (mu rows require a collected
/// sample; mu features are computed once per sample and shared).
[[nodiscard]] DimensionData build_epsilon_data(const honeypot::EventDatabase& db);
/// Gamma rows exist only for events the sample factory proxied.
[[nodiscard]] DimensionData build_gamma_data(const honeypot::EventDatabase& db);
[[nodiscard]] DimensionData build_pi_data(const honeypot::EventDatabase& db);
[[nodiscard]] DimensionData build_mu_data(const honeypot::EventDatabase& db);

}  // namespace repro::cluster
