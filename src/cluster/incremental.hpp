// Incremental EPM clustering over a growing event stream.
//
// epm_cluster() recomputes all four phases from scratch; on the
// streaming path that full recompute runs every epoch and dominates the
// epoch wall time (ROADMAP item 1). IncrementalEpm keeps the Phase-2
// counting state — per-(feature,value) instance, source and destination
// statistics — alive across epochs and absorbs each epoch's event delta
// instead:
//
//   1. New rows update the counts and a postings list (value -> rows).
//   2. The invariant table is advanced from the updated counts. Counts
//      only grow and the relevance constraints are lower bounds, so a
//      value's invariant status can only flip non-invariant ->
//      invariant, and only for values the delta touched.
//   3. Only rows containing a flipped value can change their
//      generalization; exactly those rows (plus the new ones) are
//      re-generalized. All other pattern assignments are reused.
//   4. Patterns are interned by their (injective) key into a stable
//      pool; cluster ids are densified in first-seen row order, so the
//      result is byte-identical to epm_cluster() over the whole
//      database.
//
// The counting state serializes to an opaque blob carried inside the
// epoch snapshot, making the engine crash-tolerant: restore() re-primes
// it from the checkpointed database + clustering result, and the blob
// contributes the counts plus the cumulative reclassification total
// (the deterministic `epm.instances_reclassified` counter). A cut
// written by the full-recompute path has no blob; restore() then
// recounts from the restored rows, which yields the same state.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/epm.hpp"
#include "cluster/feature.hpp"
#include "cluster/invariants.hpp"
#include "honeypot/database.hpp"

namespace repro::cluster {

class IncrementalEpm {
 public:
  explicit IncrementalEpm(Dimension dimension);

  /// Absorbs events [events_seen(), db.events().size()) and returns the
  /// clustering of every row seen so far — byte-identical (through the
  /// snapshot codec) to epm_cluster(build_<dim>_data(db), thresholds).
  /// The thresholds must not change across updates of one engine.
  [[nodiscard]] EpmResult update(const honeypot::EventDatabase& db,
                                 const InvariantThresholds& thresholds = {});

  /// Re-primes the engine from a restored checkpoint: the database, the
  /// clustering result of the cut, and the counting-state blob written
  /// by encode_counts() (empty when the cut came from the full-recompute
  /// path — the counts are then rebuilt from the rows). Throws
  /// ConfigError when the pieces are mutually inconsistent.
  void restore(const honeypot::EventDatabase& db, const EpmResult& result,
               std::span<const std::uint8_t> counts_blob);

  /// Durable counting state: the per-(feature,value) statistics plus
  /// the cumulative reclassification total, in deterministic byte
  /// order.
  [[nodiscard]] std::vector<std::uint8_t> encode_counts() const;

  /// Cumulative number of previously classified rows whose pattern was
  /// recomputed because a value's invariant status flipped. Survives
  /// kill/resume via the counting-state blob.
  [[nodiscard]] std::uint64_t instances_reclassified() const noexcept {
    return reclassified_;
  }

  [[nodiscard]] std::size_t events_seen() const noexcept {
    return events_seen_;
  }
  [[nodiscard]] Dimension dimension() const noexcept {
    return schema_.dimension;
  }

 private:
  struct ValueStats {
    std::uint64_t instances = 0;
    std::unordered_set<std::uint32_t> sources;
    std::unordered_set<std::uint32_t> destinations;
    /// Rows containing this value, ascending — the reclassification
    /// trigger set of an invariant flip. Rebuilt on restore, never
    /// serialized.
    std::vector<std::size_t> rows;
  };

  /// Cached per-sample mu row: the shared feature vector plus the
  /// resolved per-feature counting slots (unordered_map nodes are
  /// pointer-stable), so repeat events of one sample neither copy the
  /// mu strings nor re-hash them into the counting maps.
  struct MuEntry {
    std::shared_ptr<const FeatureVector> row;
    std::vector<ValueStats*> slots;
  };
  /// One event's row under this dimension: a shared feature vector
  /// (null when the event carries no observation) plus, for mu, the
  /// sample's slot cache.
  struct RowRef {
    std::shared_ptr<const FeatureVector> row;
    std::vector<ValueStats*>* slots = nullptr;
  };

  void reset();
  /// Row of one event under this dimension. Mu vectors are cached per
  /// sample (they are a pure function of the binary).
  [[nodiscard]] RowRef extract_row(const honeypot::AttackEvent& event,
                                   const honeypot::EventDatabase& db);
  /// Appends one row; updates postings always, counts only when
  /// `count` (restore-with-blob already has them).
  void add_row(RowRef ref, const honeypot::AttackEvent& event, bool count);
  [[nodiscard]] bool meets(const ValueStats& stats,
                           const InvariantThresholds& thresholds) const;
  /// Interns a pattern by key into the stable pool.
  [[nodiscard]] int intern(Pattern pattern);
  /// Densifies the per-row pattern handles into an EpmResult in
  /// first-seen row order — the exact shape epm_cluster() produces.
  [[nodiscard]] EpmResult materialize() const;
  void decode_counts(std::span<const std::uint8_t> blob);

  FeatureSchema schema_;
  std::size_t events_seen_ = 0;
  std::vector<std::shared_ptr<const FeatureVector>> rows_;
  std::vector<honeypot::EventId> event_ids_;
  /// Per feature: value -> statistics + postings.
  std::vector<std::unordered_map<std::string, ValueStats>> stats_;
  InvariantTable invariants_{0};
  /// Interned pattern pool in first-intern order; may contain stale
  /// patterns no row generalizes to anymore (harmless — densification
  /// drops them).
  std::vector<Pattern> pool_;
  std::unordered_map<std::string, int> pool_index_;
  /// Row -> pool handle.
  std::vector<int> handles_;
  std::uint64_t reclassified_ = 0;
  std::unordered_map<honeypot::SampleId, MuEntry> mu_cache_;
};

}  // namespace repro::cluster
