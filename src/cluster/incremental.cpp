#include "cluster/incremental.hpp"

#include <algorithm>
#include <utility>

#include "util/byteio.hpp"
#include "util/error.hpp"
#include "util/sorted.hpp"

namespace repro::cluster {

namespace {

/// Counting-state blob format version (independent of the snapshot
/// container version — the blob travels inside a container section).
constexpr std::uint32_t kCountsVersion = 1;

FeatureSchema schema_of(Dimension dimension) {
  switch (dimension) {
    case Dimension::kEpsilon: return epsilon_schema();
    case Dimension::kGamma: return gamma_schema();
    case Dimension::kPi: return pi_schema();
    case Dimension::kMu: return mu_schema();
  }
  throw ConfigError("IncrementalEpm: unknown dimension");
}

}  // namespace

IncrementalEpm::IncrementalEpm(Dimension dimension)
    : schema_(schema_of(dimension)),
      stats_(schema_.size()),
      invariants_(schema_.size()) {}

void IncrementalEpm::reset() {
  events_seen_ = 0;
  rows_.clear();
  event_ids_.clear();
  stats_.assign(schema_.size(), {});
  invariants_ = InvariantTable{schema_.size()};
  pool_.clear();
  pool_index_.clear();
  handles_.clear();
  reclassified_ = 0;
  mu_cache_.clear();
}

IncrementalEpm::RowRef IncrementalEpm::extract_row(
    const honeypot::AttackEvent& event, const honeypot::EventDatabase& db) {
  switch (schema_.dimension) {
    case Dimension::kEpsilon:
      return {std::make_shared<const FeatureVector>(extract_epsilon(event))};
    case Dimension::kGamma:
      if (!event.gamma.has_value()) return {};
      return {std::make_shared<const FeatureVector>(extract_gamma(event))};
    case Dimension::kPi:
      if (!event.pi.has_value()) return {};
      return {std::make_shared<const FeatureVector>(extract_pi(event))};
    case Dimension::kMu: {
      if (!event.sample.has_value()) return {};
      auto it = mu_cache_.find(*event.sample);
      if (it == mu_cache_.end()) {
        it = mu_cache_
                 .emplace(*event.sample,
                          MuEntry{std::make_shared<const FeatureVector>(
                                      extract_mu(db.sample(*event.sample))),
                                  {}})
                 .first;
      }
      return {it->second.row, &it->second.slots};
    }
  }
  throw ConfigError("IncrementalEpm: unknown dimension");
}

void IncrementalEpm::add_row(RowRef ref, const honeypot::AttackEvent& event,
                             bool count) {
  const FeatureVector& row = *ref.row;
  if (row.values.size() != schema_.size()) {
    throw ConfigError("IncrementalEpm: instance arity mismatch with schema");
  }
  const std::size_t index = rows_.size();
  std::vector<ValueStats*>* slots = ref.slots;
  if (slots != nullptr && !slots->empty()) {
    // This sample's counting slots were resolved by an earlier event —
    // update them directly, no value re-hashing.
    for (std::size_t f = 0; f < schema_.size(); ++f) {
      ValueStats& stats = *(*slots)[f];
      if (count) {
        ++stats.instances;
        stats.sources.insert(event.attacker.value());
        stats.destinations.insert(event.honeypot.value());
      }
      stats.rows.push_back(index);
    }
  } else {
    for (std::size_t f = 0; f < schema_.size(); ++f) {
      const std::string& value = row.values[f];
      ValueStats* stats = nullptr;
      if (count) {
        stats = &stats_[f][value];
        ++stats->instances;
        stats->sources.insert(event.attacker.value());
        stats->destinations.insert(event.honeypot.value());
      } else {
        const auto it = stats_[f].find(value);
        if (it == stats_[f].end()) {
          throw ConfigError(
              "IncrementalEpm::restore: counting state lacks a restored "
              "row's value");
        }
        stats = &it->second;
      }
      stats->rows.push_back(index);
      if (slots != nullptr) slots->push_back(stats);
    }
  }
  event_ids_.push_back(event.id);
  rows_.push_back(std::move(ref.row));
}

bool IncrementalEpm::meets(const ValueStats& stats,
                           const InvariantThresholds& thresholds) const {
  return stats.instances >= thresholds.min_instances &&
         stats.sources.size() >= thresholds.min_sources &&
         stats.destinations.size() >= thresholds.min_destinations;
}

int IncrementalEpm::intern(Pattern pattern) {
  std::string key = pattern.key();
  const auto it = pool_index_.find(key);
  if (it != pool_index_.end()) return it->second;
  const int handle = static_cast<int>(pool_.size());
  pool_.push_back(std::move(pattern));
  pool_index_.emplace(std::move(key), handle);
  return handle;
}

EpmResult IncrementalEpm::materialize() const {
  EpmResult result;
  result.schema = schema_;
  result.invariants = invariants_;
  result.event_ids = event_ids_;
  result.assignment.reserve(rows_.size());
  // Densify pool handles into cluster ids in first-seen row order —
  // exactly the dedup-by-key walk epm_cluster() performs, so ids (and
  // therefore every serialized byte) coincide with the full recompute.
  std::vector<int> dense(pool_.size(), -1);
  for (std::size_t row = 0; row < rows_.size(); ++row) {
    const int handle = handles_[row];
    if (dense[static_cast<std::size_t>(handle)] < 0) {
      dense[static_cast<std::size_t>(handle)] =
          static_cast<int>(result.patterns.size());
      result.patterns.push_back(pool_[static_cast<std::size_t>(handle)]);
      result.members.emplace_back();
    }
    const int cluster = dense[static_cast<std::size_t>(handle)];
    result.assignment.push_back(cluster);
    result.members[static_cast<std::size_t>(cluster)].push_back(row);
    result.event_index_.emplace(event_ids_[row], cluster);
  }
  return result;
}

EpmResult IncrementalEpm::update(const honeypot::EventDatabase& db,
                                 const InvariantThresholds& thresholds) {
  const std::vector<honeypot::AttackEvent>& events = db.events();
  if (events.size() < events_seen_) {
    throw ConfigError(
        "IncrementalEpm::update: database shrank below the absorbed prefix");
  }
  const std::size_t old_rows = rows_.size();
  for (std::size_t i = events_seen_; i < events.size(); ++i) {
    RowRef ref = extract_row(events[i], db);
    if (ref.row == nullptr) continue;
    add_row(std::move(ref), events[i], /*count=*/true);
  }
  events_seen_ = events.size();

  // Advance the invariant table. Counts only grow and the relevance
  // constraints are lower bounds, so a status flip is always
  // non-invariant -> invariant and can only happen to a value the delta
  // touched — checking each new row's values covers every candidate.
  // Rows holding a flipped value are the reclassification trigger set.
  std::vector<std::size_t> affected;
  for (std::size_t row = old_rows; row < rows_.size(); ++row) {
    for (std::size_t f = 0; f < schema_.size(); ++f) {
      const std::string& value = rows_[row]->values[f];
      // A missing observation is not a value: it must never become an
      // invariant (mirrors discover_invariants).
      if (value == kNotAvailable) continue;
      if (invariants_.is_invariant(f, value)) continue;
      const ValueStats& stats = stats_[f].at(value);
      if (!meets(stats, thresholds)) continue;
      invariants_.add(f, value);
      for (const std::size_t holder : stats.rows) {
        if (holder < old_rows) affected.push_back(holder);
      }
    }
  }
  sorted_unique(affected);
  reclassified_ += affected.size();

  // Re-generalize exactly the affected prefix rows, then every new row,
  // against the advanced table.
  for (const std::size_t row : affected) {
    handles_[row] = intern(Pattern::generalize(*rows_[row], invariants_));
  }
  handles_.reserve(rows_.size());
  for (std::size_t row = old_rows; row < rows_.size(); ++row) {
    handles_.push_back(intern(Pattern::generalize(*rows_[row], invariants_)));
  }
  return materialize();
}

void IncrementalEpm::restore(const honeypot::EventDatabase& db,
                             const EpmResult& result,
                             std::span<const std::uint8_t> counts_blob) {
  reset();
  if (result.schema.dimension != schema_.dimension) {
    throw ConfigError("IncrementalEpm::restore: dimension mismatch");
  }
  if (result.invariants.feature_count() != schema_.size()) {
    throw ConfigError(
        "IncrementalEpm::restore: invariant table arity mismatch");
  }
  events_seen_ = db.events().size();
  const bool have_counts = !counts_blob.empty();
  if (have_counts) decode_counts(counts_blob);

  for (const honeypot::AttackEvent& event : db.events()) {
    RowRef ref = extract_row(event, db);
    if (ref.row == nullptr) continue;
    add_row(std::move(ref), event, /*count=*/!have_counts);
  }
  if (rows_.size() != result.assignment.size()) {
    throw ConfigError(
        "IncrementalEpm::restore: row count disagrees with the restored "
        "clustering");
  }
  if (event_ids_ != result.event_ids) {
    throw ConfigError(
        "IncrementalEpm::restore: event ids disagree with the restored "
        "clustering");
  }
  if (have_counts) {
    // Every value's persisted instance count must equal the number of
    // restored rows holding it — the cheap full cross-check that the
    // blob and the database describe the same prefix.
    for (std::size_t f = 0; f < schema_.size(); ++f) {
      for (const std::string& value : sorted_keys(stats_[f])) {
        const ValueStats& stats = stats_[f].at(value);
        if (stats.instances != stats.rows.size()) {
          throw ConfigError(
              "IncrementalEpm::restore: counting state disagrees with the "
              "restored rows");
        }
      }
    }
  }

  // The restored pattern list is dense in first-seen order, i.e. it is
  // exactly the intern pool in creation order (stale pool entries of
  // the pre-kill process are gone, which is harmless: handles are
  // internal and densification re-derives the same ids either way).
  invariants_ = result.invariants;
  pool_ = result.patterns;
  for (std::size_t handle = 0; handle < pool_.size(); ++handle) {
    if (!pool_index_.emplace(pool_[handle].key(), static_cast<int>(handle))
             .second) {
      throw ConfigError(
          "IncrementalEpm::restore: duplicate pattern key in the restored "
          "clustering");
    }
  }
  handles_.reserve(result.assignment.size());
  for (const int cluster : result.assignment) {
    if (cluster < 0 || static_cast<std::size_t>(cluster) >= pool_.size()) {
      throw ConfigError(
          "IncrementalEpm::restore: assignment references a missing "
          "pattern");
    }
    handles_.push_back(cluster);
  }
}

std::vector<std::uint8_t> IncrementalEpm::encode_counts() const {
  ByteWriter writer;
  writer.u32(kCountsVersion);
  writer.u8(static_cast<std::uint8_t>(schema_.dimension));
  writer.u64(reclassified_);
  writer.u64(events_seen_);
  writer.u64(schema_.size());
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const std::vector<std::string> values = sorted_keys(stats_[f]);
    writer.u64(values.size());
    for (const std::string& value : values) {
      const ValueStats& stats = stats_[f].at(value);
      writer.u32(static_cast<std::uint32_t>(value.size()));
      writer.text(value);
      writer.u64(stats.instances);
      const std::vector<std::uint32_t> sources = sorted_keys(stats.sources);
      writer.u64(sources.size());
      for (const std::uint32_t source : sources) writer.u32(source);
      const std::vector<std::uint32_t> destinations =
          sorted_keys(stats.destinations);
      writer.u64(destinations.size());
      for (const std::uint32_t destination : destinations) {
        writer.u32(destination);
      }
    }
  }
  return writer.take();
}

void IncrementalEpm::decode_counts(std::span<const std::uint8_t> blob) {
  ByteReader reader{blob};
  const std::uint32_t version = reader.u32();
  if (version != kCountsVersion) {
    throw ParseError("IncrementalEpm counting state: unsupported version " +
                     std::to_string(version));
  }
  const auto dimension = static_cast<Dimension>(reader.u8());
  if (dimension != schema_.dimension) {
    throw ParseError("IncrementalEpm counting state: dimension mismatch");
  }
  reclassified_ = reader.u64();
  const std::uint64_t events_recorded = reader.u64();
  if (events_recorded != events_seen_) {
    throw ParseError(
        "IncrementalEpm counting state: event count disagrees with the "
        "restored database");
  }
  const std::uint64_t feature_count = reader.u64();
  if (feature_count != schema_.size()) {
    throw ParseError("IncrementalEpm counting state: feature count mismatch");
  }
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const std::uint64_t value_count = reader.u64();
    for (std::uint64_t v = 0; v < value_count; ++v) {
      const std::uint32_t length = reader.u32();
      std::string value = reader.fixed_text(length);
      ValueStats stats;
      stats.instances = reader.u64();
      const std::uint64_t source_count = reader.u64();
      for (std::uint64_t s = 0; s < source_count; ++s) {
        stats.sources.insert(reader.u32());
      }
      const std::uint64_t destination_count = reader.u64();
      for (std::uint64_t d = 0; d < destination_count; ++d) {
        stats.destinations.insert(reader.u32());
      }
      if (!stats_[f].emplace(std::move(value), std::move(stats)).second) {
        throw ParseError("IncrementalEpm counting state: duplicate value");
      }
    }
  }
  if (reader.remaining() != 0) {
    throw ParseError("IncrementalEpm counting state: trailing bytes");
  }
}

}  // namespace repro::cluster
