// Behavior-based clustering (Anubis / Bayer et al. NDSS'09 substitute).
//
// Groups behavioral profiles by Jaccard similarity under single
// linkage: with a threshold cut, single-linkage clusters are exactly
// the connected components of the "similarity >= t" graph, so the
// implementation unions every qualifying pair. Pair enumeration is
// either exact (all O(n^2) pairs — the baseline the paper's related
// work criticizes) or LSH-accelerated (the scalable variant Anubis
// uses); both yield the same clusters whenever LSH proposes every
// qualifying pair.
#pragma once

#include <cstdint>
#include <vector>

#include "sandbox/profile.hpp"

namespace repro::cluster {

struct BehavioralOptions {
  /// Jaccard similarity threshold for merging.
  double threshold = 0.70;
  /// Pair-enumeration strategy.
  bool use_lsh = true;
  std::size_t lsh_bands = 20;
  std::size_t lsh_rows = 5;
  std::uint64_t seed = 0x6c5b'0001;
};

struct BehavioralClusters {
  /// Profile index -> cluster id (0-based, dense, ordered by first
  /// member).
  std::vector<int> assignment;
  /// Cluster id -> member profile indices (ascending).
  std::vector<std::vector<std::size_t>> members;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return members.size();
  }
  [[nodiscard]] std::size_t singleton_count() const noexcept;
};

/// Clusters the given profiles. Profile order defines index identity.
[[nodiscard]] BehavioralClusters cluster_profiles(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

/// Number of similarity evaluations the last call would perform under
/// each strategy — exposed for the scalability ablation bench.
struct PairStats {
  std::size_t exact_pairs = 0;
  std::size_t lsh_candidate_pairs = 0;
};
[[nodiscard]] PairStats pair_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

}  // namespace repro::cluster
