// Behavior-based clustering (Anubis / Bayer et al. NDSS'09 substitute).
//
// Groups behavioral profiles by Jaccard similarity under single
// linkage: with a threshold cut, single-linkage clusters are exactly
// the connected components of the "similarity >= t" graph, so the
// implementation unions every qualifying pair. Pair enumeration is
// either exact (all O(n^2) pairs — the baseline the paper's related
// work criticizes) or LSH-accelerated (the scalable variant Anubis
// uses); both yield the same clusters whenever LSH proposes every
// qualifying pair.
//
// Parallelism: when `BehavioralOptions::pool` is set, signature
// computation and bucket evaluation are distributed over the pool.
// Because the result is a connected-component partition, evaluation
// order never changes it — output is byte-identical at every pool
// width, including the serial pool == nullptr path.
#pragma once

#include <cstdint>
#include <vector>

#include "sandbox/profile.hpp"

namespace repro {
class ThreadPool;
}  // namespace repro

namespace repro::obs {
class MetricsRegistry;
}  // namespace repro::obs

namespace repro::cluster {

struct SignatureStore;

/// Which clustering algorithm produces the B partition. The enumerator
/// values are a durable wire tag (checkpoints stamp them) — never
/// renumber, only append.
enum class BackendKind : std::uint8_t {
  /// LSH-accelerated single linkage (Bayer et al.) — the default and
  /// the paper-faithful path.
  kLsh = 0,
  /// Exact O(n^2) single linkage — the oracle the LSH path
  /// approximates; identical output whenever LSH proposes every
  /// qualifying pair.
  kExact = 1,
  /// K-means over MinHash-signature coordinates (Basole & Stamp
  /// style hash-derived feature vectors); deterministic seeded init,
  /// fixed iteration cap.
  kKmeans = 2,
};

struct BehavioralOptions {
  /// Jaccard similarity threshold for merging (single-linkage
  /// backends; K-means ignores it).
  double threshold = 0.70;
  /// Clustering algorithm; see cluster/backend.hpp for the registry.
  BackendKind backend = BackendKind::kLsh;
  std::size_t lsh_bands = 20;
  std::size_t lsh_rows = 5;
  std::uint64_t seed = 0x6c5b'0001;
  /// K-means: cluster count; 0 derives floor(sqrt(n)) from the
  /// profile count.
  std::size_t kmeans_k = 0;
  /// K-means: Lloyd iteration cap (stops earlier when the integer
  /// assignment reaches a fixed point).
  std::size_t kmeans_iterations = 16;
  /// Optional worker pool (non-owning). Parallelizes the MinHash
  /// signature pass and the per-bucket Jaccard evaluation; clusters
  /// are identical at any width.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (non-owning). Work counts that are pure
  /// functions of the input (signatures, bucket pairs, union
  /// operations) land on the deterministic channel; the number of
  /// Jaccard evaluations actually performed depends on how the
  /// task-local union-find short-circuited, i.e. on pool width, so it
  /// lands on the runtime channel.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional cross-call signature cache (non-owning). The streaming
  /// epoch loop sets this so only profiles appended since the previous
  /// epoch are hashed; signatures of the unchanged prefix are reused.
  /// The cache never changes the produced clusters — buckets and the
  /// union-find are rebuilt from the (identical) signatures either way.
  SignatureStore* signature_cache = nullptr;
  /// Optional prior partition (non-owning): the `assignment` produced
  /// by an earlier call over a strict prefix of this profile list with
  /// identical options (threshold, LSH geometry, seed). Because
  /// profiles are immutable and appended-only, two old items land in a
  /// common bucket this call iff they did in the prior one and their
  /// Jaccard outcome is unchanged — so every old/old edge is already
  /// reflected in the prior partition. The union-find is seeded from
  /// it and only pairs touching an appended item are evaluated. The
  /// produced partition is identical to a from-scratch run; callers
  /// that cannot guarantee the prefix/options contract must leave this
  /// null. Ignored when its size exceeds the profile count.
  ///
  /// Soundness is a single-linkage property (old/old edges survive
  /// appends only under connected-component semantics) — attaching a
  /// prior partition to a non-single-linkage backend (kmeans) throws
  /// ConfigError instead of silently reusing a stale partition.
  const std::vector<int>* prior_assignment = nullptr;
};

struct BehavioralClusters {
  /// Profile index -> cluster id (0-based, dense, ordered by first
  /// member).
  std::vector<int> assignment;
  /// Cluster id -> member profile indices (ascending).
  std::vector<std::vector<std::size_t>> members;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return members.size();
  }
  [[nodiscard]] std::size_t singleton_count() const noexcept;
};

/// Clusters the given profiles with the backend selected by
/// `options.backend` (dispatched through the cluster/backend.hpp
/// registry). Profile order defines index identity.
[[nodiscard]] BehavioralClusters cluster_profiles(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

/// Direct entry points of the two single-linkage backends —
/// `cluster_profiles` with `options.backend` forced; exposed so the
/// oracle comparison in benches/tests does not depend on the registry.
[[nodiscard]] BehavioralClusters lsh_single_linkage(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});
[[nodiscard]] BehavioralClusters exact_single_linkage(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

namespace detail {
/// Internal seam shared by the backends (cluster/kmeans.cpp reuses the
/// same cache-honoring passes): the sorted feature-id sets of
/// `profiles`, and their MinHash signatures. With an attached
/// signature cache the store is the backing storage and only appended
/// items are (re)computed; otherwise `scratch` holds the result. Not a
/// stable API outside src/cluster.
[[nodiscard]] const std::vector<std::vector<std::uint64_t>>& profile_id_sets(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options,
    std::vector<std::vector<std::uint64_t>>& scratch);
[[nodiscard]] const std::vector<std::vector<std::uint64_t>>&
minhash_signatures(const std::vector<std::vector<std::uint64_t>>& ids,
                   const BehavioralOptions& options,
                   std::vector<std::vector<std::uint64_t>>& scratch);
}  // namespace detail

/// Number of similarity evaluations a run would perform under each
/// strategy — exposed for the scalability ablation bench.
struct PairStats {
  std::size_t exact_pairs = 0;
  std::size_t lsh_candidate_pairs = 0;
};
[[nodiscard]] PairStats pair_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

/// Clusters and pair statistics from one shared MinHash signature
/// pass. Calling cluster_profiles + pair_stats separately computes
/// every signature twice; this computes them once and derives both
/// artifacts from the same index.
struct ClusteringRun {
  BehavioralClusters clusters;
  PairStats stats;
};
[[nodiscard]] ClusteringRun cluster_profiles_with_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

}  // namespace repro::cluster
