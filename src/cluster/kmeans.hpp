// K-means over hash-derived feature vectors.
//
// Basole & Stamp (and the hash-based K-means line of work in
// PAPERS.md) cluster malware on fixed-width numeric vectors instead of
// set similarity. This backend derives those vectors from the same
// MinHash signatures the LSH backend computes: each of the
// bands x rows signature components, normalized into [0, 1), is one
// coordinate. Identical profiles get identical coordinates, similar
// id sets get componentwise-close ones (each component is a min-wise
// hash), so Euclidean proximity tracks Jaccard similarity — while
// exercising a genuinely different algorithm family (centroid
// re-assignment instead of connected components).
//
// Determinism: centroid seeding is greedy farthest-point from one
// Rng{options.seed} draw; Lloyd iterations are capped by
// `kmeans_iterations` and stop early when the integer assignment
// reaches a fixed point (no floating-point convergence test). The
// assignment step fans out over the pool into disjoint per-item slots
// and the centroid update is a serial reduction in index order, so the
// output is byte-identical at every pool width.
#pragma once

#include <vector>

#include "cluster/behavioral.hpp"

namespace repro::cluster {

/// Clusters profiles with seeded K-means over MinHash coordinates.
/// `options.kmeans_k` of 0 derives k = floor(sqrt(n)); k is clamped to
/// n. Throws ConfigError when `options.prior_assignment` is set —
/// prefix seeding is only sound for single-linkage backends.
[[nodiscard]] BehavioralClusters kmeans_cluster(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options = {});

}  // namespace repro::cluster
