#include "cluster/epm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace repro::cluster {

int EpmResult::cluster_of_event(honeypot::EventId event) const {
  const auto it = event_index_.find(event);
  return it == event_index_.end() ? -1 : it->second;
}

std::optional<int> EpmResult::classify(const FeatureVector& instance) const {
  int best = -1;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    if (!patterns[p].matches(instance)) continue;
    if (best < 0) {
      best = static_cast<int>(p);
      continue;
    }
    const Pattern& current = patterns[static_cast<std::size_t>(best)];
    const Pattern& candidate = patterns[p];
    if (candidate.specificity() > current.specificity() ||
        (candidate.specificity() == current.specificity() &&
         candidate.key() < current.key())) {
      best = static_cast<int>(p);
    }
  }
  if (best < 0) return std::nullopt;
  return best;
}

EpmResult epm_cluster(const DimensionData& data,
                      const InvariantThresholds& thresholds) {
  EpmResult result;
  result.schema = data.schema;
  result.event_ids = data.event_ids;

  // Phase 2: invariant discovery.
  result.invariants = discover_invariants(data, thresholds);

  // Phase 3: pattern discovery — the distinct generalizations of the
  // observed instances, in first-seen order (stable cluster ids).
  // Phase 4: classification. An instance's own generalization keeps
  // every invariant field it has, so it is by construction the most
  // specific pattern in the discovered set that matches the instance;
  // assignment therefore coincides with generalization, and the general
  // subsumption-based classifier (EpmResult::classify) is exercised for
  // unseen instances.
  std::unordered_map<std::string, int> pattern_index;
  result.assignment.reserve(data.instances.size());
  for (std::size_t row = 0; row < data.instances.size(); ++row) {
    Pattern pattern = Pattern::generalize(data.instances[row],
                                          result.invariants);
    const std::string key = pattern.key();
    const auto [it, inserted] = pattern_index.emplace(
        key, static_cast<int>(result.patterns.size()));
    if (inserted) {
      result.patterns.push_back(std::move(pattern));
      result.members.emplace_back();
    }
    const int cluster = it->second;
    result.assignment.push_back(cluster);
    result.members[static_cast<std::size_t>(cluster)].push_back(row);
    result.event_index_.emplace(data.event_ids[row], cluster);
  }
  return result;
}

}  // namespace repro::cluster
