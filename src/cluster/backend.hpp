// Pluggable B-clustering backends.
//
// The paper's behavioral dimension is one specific algorithm — LSH
// single linkage over MinHash signatures — but validating it (against
// the exact oracle) and exploring the design space the related work
// maps out (hash-derived K-means, Basole & Stamp) require swapping the
// algorithm without touching its consumers. Every backend implements
// `partition(profiles, options) -> BehavioralClusters` with the same
// output contract: dense cluster ids ordered by first member,
// byte-identical at every pool width, deterministic work counters
// reported through src/obs. Consumers (scenario build, streaming epoch
// loop, serve views, report exports) stay backend-agnostic.
//
// The registry is a closed set keyed by BackendKind (declared in
// behavioral.hpp so options can name a backend without this header).
// Checkpoints stamp the kind as a wire tag: a behavioral snapshot or
// epoch stage produced by one backend must never silently seed another
// (see DESIGN.md §15 for the soundness argument).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/behavioral.hpp"

namespace repro::cluster {

/// One clustering algorithm. Implementations are stateless const
/// singletons owned by the registry; all run state lives in the
/// options and return value.
class ClusterBackend {
 public:
  virtual ~ClusterBackend() = default;

  /// Stable CLI / wire name ("lsh", "exact", "kmeans").
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
  /// True for backends with connected-component (single-linkage)
  /// semantics. Only these may be seeded from a prior prefix
  /// partition (BehavioralOptions::prior_assignment) — appending
  /// items never invalidates an old/old edge under single linkage,
  /// but re-centering algorithms (K-means) can move old items between
  /// clusters on every run.
  [[nodiscard]] virtual bool single_linkage() const noexcept = 0;

  /// Clusters the profiles; same contract as cluster_profiles.
  [[nodiscard]] virtual BehavioralClusters partition(
      const std::vector<const sandbox::BehavioralProfile*>& profiles,
      const BehavioralOptions& options) const = 0;
};

/// The registered backend for a kind. Throws ConfigError on an
/// unregistered enumerator (only possible via a cast).
[[nodiscard]] const ClusterBackend& cluster_backend(BackendKind kind);

/// Lookup by CLI name; throws ConfigError listing the valid names.
[[nodiscard]] const ClusterBackend& backend_from_name(std::string_view name);

/// Stable display / wire name of a kind.
[[nodiscard]] std::string_view backend_name(BackendKind kind);

/// Checkpoint tag -> kind; throws ParseError on an unknown tag (a
/// snapshot written by a future revision).
[[nodiscard]] BackendKind backend_kind_from_tag(std::uint8_t tag);

/// Every registered kind, in BackendKind enumerator order.
[[nodiscard]] std::span<const BackendKind> all_backends();

}  // namespace repro::cluster
