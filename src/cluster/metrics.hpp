// Cluster-quality metrics.
//
// The synthetic landscape gives us what the paper lacked: ground truth.
// Precision/recall follow Bayer et al. (NDSS'09): precision rewards
// clusters whose members share a reference label, recall rewards
// reference classes kept together. Pairwise F1 is reported as a
// second, order-free index.
#pragma once

#include <cstdint>
#include <vector>

namespace repro::cluster {

struct QualityMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  double pairwise_precision = 0.0;
  double pairwise_recall = 0.0;
  double pairwise_f1 = 0.0;
  std::size_t cluster_count = 0;
  std::size_t reference_count = 0;
};

/// `assignment[i]` is the produced cluster of item i; `truth[i]` its
/// reference class. Both must have the same length; ids need not be
/// dense. Throws ConfigError on size mismatch or empty input.
[[nodiscard]] QualityMetrics evaluate_clustering(
    const std::vector<int>& assignment, const std::vector<int>& truth);

}  // namespace repro::cluster
