#include "cluster/minhash.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "util/byteio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace repro::cluster {

MinHasher::MinHasher(std::size_t hash_count, std::uint64_t seed) {
  if (hash_count == 0) {
    throw ConfigError("MinHasher: hash_count must be positive");
  }
  Rng rng{mix64(seed ^ 0x3147'4a54'0000'0000ULL)};
  salts_.reserve(hash_count);
  for (std::size_t i = 0; i < hash_count; ++i) salts_.push_back(rng.next());
}

std::vector<std::uint64_t> MinHasher::signature(
    std::span<const std::uint64_t> feature_ids) const {
  std::vector<std::uint64_t> out(salts_.size(), ~std::uint64_t{0});
  for (const std::uint64_t id : feature_ids) {
    for (std::size_t h = 0; h < salts_.size(); ++h) {
      const std::uint64_t hashed = mix64(id ^ salts_[h]);
      out[h] = std::min(out[h], hashed);
    }
  }
  return out;
}

double MinHasher::estimate_similarity(std::span<const std::uint64_t> a,
                                      std::span<const std::uint64_t> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  std::size_t equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i] ? 1 : 0;
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

LshIndex::LshIndex(std::size_t bands, std::size_t rows)
    : bands_(bands), rows_(rows), buckets_(bands) {
  if (bands == 0 || rows == 0) {
    throw ConfigError("LshIndex: bands and rows must be positive");
  }
}

void LshIndex::insert(std::size_t item,
                      std::span<const std::uint64_t> signature) {
  if (signature.size() != bands_ * rows_) {
    throw ConfigError("LshIndex::insert: signature size mismatch");
  }
  for (std::size_t band = 0; band < bands_; ++band) {
    std::uint64_t bucket = 0xcbf29ce484222325ULL ^ band;
    for (std::size_t r = 0; r < rows_; ++r) {
      bucket = mix64(bucket ^ signature[band * rows_ + r]);
    }
    buckets_[band][bucket].push_back(item);
  }
}

std::vector<std::vector<std::size_t>> LshIndex::multi_item_buckets() const {
  std::vector<std::vector<std::size_t>> out;
  for (const auto& band : buckets_) {
    for (const auto& [bucket, items] : band) {
      if (items.size() >= 2) out.push_back(items);
    }
  }
  // The maps above yield buckets in hash-seed iteration order — stable
  // within one binary but not across stdlib implementations, and a
  // nondeterministic work partition once buckets are chunked across
  // pool workers. Each bucket's item list is already ascending (items
  // are inserted in index order), so lexicographic order sorts by
  // smallest member with a deterministic tie-break, independent of the
  // maps' internals. Near-duplicate profiles collide in many bands and
  // produce identical member lists; adjacent duplicates are dropped so
  // the consumer evaluates each distinct bucket once.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> LshIndex::candidate_pairs()
    const {
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& band : buckets_) {
    for (const auto& [bucket, items] : band) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        for (std::size_t j = i + 1; j < items.size(); ++j) {
          const std::size_t a = std::min(items[i], items[j]);
          const std::size_t b = std::max(items[i], items[j]);
          if (a != b) pairs.emplace(a, b);
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

namespace {

/// Signature-store blob format version (travels inside a snapshot
/// section, so it versions independently of the container).
constexpr std::uint32_t kSignatureStoreVersion = 1;

}  // namespace

std::uint64_t signature_config(std::size_t bands, std::size_t rows,
                               std::uint64_t seed) {
  std::uint64_t config = mix64(0x5349474eULL ^ bands);
  config = mix64(config ^ rows);
  config = mix64(config ^ seed);
  return config == 0 ? 1 : config;
}

std::vector<std::uint8_t> encode_signature_store(const SignatureStore& store) {
  ByteWriter writer;
  writer.u32(kSignatureStoreVersion);
  writer.u64(store.config);
  writer.u64(store.reused);
  writer.u64(store.computed);
  writer.u64(store.signatures.size());
  for (const std::vector<std::uint64_t>& signature : store.signatures) {
    writer.u64(signature.size());
    for (const std::uint64_t component : signature) writer.u64(component);
  }
  return writer.take();
}

SignatureStore decode_signature_store(std::span<const std::uint8_t> blob) {
  ByteReader reader{blob};
  const std::uint32_t version = reader.u32();
  if (version != kSignatureStoreVersion) {
    throw ParseError("signature store: unsupported version " +
                     std::to_string(version));
  }
  SignatureStore store;
  store.config = reader.u64();
  store.reused = reader.u64();
  store.computed = reader.u64();
  const std::uint64_t item_count = reader.u64();
  if (item_count > reader.remaining() / 8) {
    throw ParseError("signature store: item count exceeds payload");
  }
  store.signatures.reserve(item_count);
  for (std::uint64_t i = 0; i < item_count; ++i) {
    const std::uint64_t component_count = reader.u64();
    if (component_count > reader.remaining() / 8) {
      throw ParseError("signature store: signature size exceeds payload");
    }
    std::vector<std::uint64_t> signature;
    signature.reserve(component_count);
    for (std::uint64_t c = 0; c < component_count; ++c) {
      signature.push_back(reader.u64());
    }
    store.signatures.push_back(std::move(signature));
  }
  if (reader.remaining() != 0) {
    throw ParseError("signature store: trailing bytes");
  }
  return store;
}

}  // namespace repro::cluster
