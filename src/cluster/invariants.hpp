// Invariant discovery (Phase 2 of EPM clustering).
//
// An invariant value is one that is not specific to an attack instance,
// an attacker, or a destination: per the paper it must be seen in at
// least 10 attack instances, used by at least 3 distinct attackers and
// witnessed by at least 3 distinct honeypot IPs. Values failing the
// test (polymorphic MD5s, random filenames) become "do not care" fields
// in pattern discovery.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/feature.hpp"

namespace repro::cluster {

/// The paper's (10, 3, 3) relevance constraints.
struct InvariantThresholds {
  std::size_t min_instances = 10;
  std::size_t min_sources = 3;
  std::size_t min_destinations = 3;
};

/// Invariant values per feature of one dimension.
class InvariantTable {
 public:
  explicit InvariantTable(std::size_t feature_count)
      : per_feature_(feature_count) {}

  void add(std::size_t feature, std::string value);

  [[nodiscard]] bool is_invariant(std::size_t feature,
                                  const std::string& value) const;
  /// Number of invariant values discovered for one feature — the
  /// "# invariants" column of Table 1.
  [[nodiscard]] std::size_t count(std::size_t feature) const;
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return per_feature_.size();
  }
  /// Invariant values of one feature, ascending. The only enumeration
  /// the table offers: handing out the raw unordered_set would let a
  /// consumer wire hash-iteration order into an export path.
  [[nodiscard]] std::vector<std::string> sorted_values(
      std::size_t feature) const;

 private:
  std::vector<std::unordered_set<std::string>> per_feature_;
};

/// Runs invariant discovery over a dimension's instances.
[[nodiscard]] InvariantTable discover_invariants(
    const DimensionData& data, const InvariantThresholds& thresholds = {});

}  // namespace repro::cluster
