#include "cluster/pehash.hpp"

#include <bit>
#include <unordered_map>

#include "pe/parser.hpp"
#include "util/error.hpp"
#include "util/md5.hpp"
#include "util/strings.hpp"

namespace repro::cluster {

std::optional<std::string> pehash(std::span<const std::uint8_t> image) {
  pe::PeInfo info;
  try {
    info = pe::parse_pe(image);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  // Concatenate the packer-stable structural signals, then digest.
  std::string material;
  material += "m" + std::to_string(info.machine);
  material += "s" + std::to_string(info.subsystem);
  material += "n" + std::to_string(info.sections.size());
  for (const pe::SectionInfo& section : info.sections) {
    material += "|" + escape_bytes(section.raw_name);
    material += "c" + std::to_string(section.characteristics);
    // log2 compression of sizes, as peHash does, so padding-level
    // variation does not split buckets.
    material += "v" + std::to_string(std::bit_width(
                          static_cast<std::uint64_t>(section.virtual_size)));
    material += "r" + std::to_string(std::bit_width(
                          static_cast<std::uint64_t>(section.raw_size)));
  }
  for (const pe::ImportInfo& import : info.imports) {
    material += "+" + import.dll + ":" + std::to_string(import.symbols.size());
  }
  const std::vector<std::uint8_t> bytes{material.begin(), material.end()};
  return Md5::hex_digest(bytes);
}

PehashClusters pehash_cluster(
    const std::vector<std::span<const std::uint8_t>>& images) {
  PehashClusters result;
  result.assignment.assign(images.size(), -1);
  std::unordered_map<std::string, int> hash_to_cluster;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const auto hash = pehash(images[i]);
    int cluster = -1;
    if (hash.has_value()) {
      const auto [it, inserted] = hash_to_cluster.emplace(
          *hash, static_cast<int>(result.members.size()));
      if (inserted) result.members.emplace_back();
      cluster = it->second;
    } else {
      cluster = static_cast<int>(result.members.size());
      result.members.emplace_back();
    }
    result.assignment[i] = cluster;
    result.members[static_cast<std::size_t>(cluster)].push_back(i);
  }
  return result;
}

}  // namespace repro::cluster
