// EPM clustering — the paper's core contribution.
//
// Runs the four phases end to end for one dimension: the schema defines
// the features (Phase 1), invariant discovery applies the relevance
// constraints (Phase 2), each instance is generalized into a pattern of
// invariants and wildcards and the distinct patterns are collected
// (Phase 3), and every instance is assigned to the most specific
// matching pattern (Phase 4). Instances sharing a pattern form one
// E-/P-/M-cluster.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/feature.hpp"
#include "cluster/invariants.hpp"
#include "cluster/pattern.hpp"

namespace repro::snapshot {
struct EpmResultAccess;
}  // namespace repro::snapshot

namespace repro::cluster {

struct EpmResult {
  FeatureSchema schema;
  InvariantTable invariants{0};
  /// Discovered patterns; index = cluster id.
  std::vector<Pattern> patterns;
  /// Row -> cluster id (index into patterns).
  std::vector<int> assignment;
  /// Cluster id -> member rows.
  std::vector<std::vector<std::size_t>> members;
  /// Event ids per row (copied from the input data).
  std::vector<honeypot::EventId> event_ids;

  [[nodiscard]] std::size_t cluster_count() const noexcept {
    return patterns.size();
  }
  /// Cluster id for an event id, or -1 when the event has no row in
  /// this dimension.
  [[nodiscard]] int cluster_of_event(honeypot::EventId event) const;

  /// Classifies a new, unseen instance against the frozen pattern set:
  /// most specific matching pattern, ties broken by lexicographic key.
  /// Returns nullopt when no pattern matches.
  [[nodiscard]] std::optional<int> classify(const FeatureVector& instance) const;

 private:
  friend EpmResult epm_cluster(const DimensionData&,
                               const InvariantThresholds&);
  /// Snapshot codec: rebuilds the event index on restore.
  friend struct repro::snapshot::EpmResultAccess;
  /// Streaming engine: materializes results with the same index.
  friend class IncrementalEpm;
  std::unordered_map<honeypot::EventId, int> event_index_;
};

/// Runs phases 2-4 on one dimension.
[[nodiscard]] EpmResult epm_cluster(const DimensionData& data,
                                    const InvariantThresholds& thresholds = {});

}  // namespace repro::cluster
