#include "cluster/backend.hpp"

#include <array>
#include <string>

#include "cluster/kmeans.hpp"
#include "util/error.hpp"

namespace repro::cluster {

namespace {

class LshBackend final : public ClusterBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lsh";
  }
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kLsh;
  }
  [[nodiscard]] bool single_linkage() const noexcept override { return true; }
  [[nodiscard]] BehavioralClusters partition(
      const std::vector<const sandbox::BehavioralProfile*>& profiles,
      const BehavioralOptions& options) const override {
    return lsh_single_linkage(profiles, options);
  }
};

class ExactBackend final : public ClusterBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "exact";
  }
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kExact;
  }
  [[nodiscard]] bool single_linkage() const noexcept override { return true; }
  [[nodiscard]] BehavioralClusters partition(
      const std::vector<const sandbox::BehavioralProfile*>& profiles,
      const BehavioralOptions& options) const override {
    return exact_single_linkage(profiles, options);
  }
};

class KmeansBackend final : public ClusterBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "kmeans";
  }
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kKmeans;
  }
  [[nodiscard]] bool single_linkage() const noexcept override {
    return false;
  }
  [[nodiscard]] BehavioralClusters partition(
      const std::vector<const sandbox::BehavioralProfile*>& profiles,
      const BehavioralOptions& options) const override {
    return kmeans_cluster(profiles, options);
  }
};

const LshBackend kLshBackend{};
const ExactBackend kExactBackend{};
const KmeansBackend kKmeansBackend{};

const std::array<const ClusterBackend*, 3> kRegistry{
    &kLshBackend, &kExactBackend, &kKmeansBackend};
constexpr std::array<BackendKind, 3> kKinds{
    BackendKind::kLsh, BackendKind::kExact, BackendKind::kKmeans};

}  // namespace

const ClusterBackend& cluster_backend(BackendKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= kRegistry.size()) {
    throw ConfigError("cluster_backend: unregistered backend kind " +
                      std::to_string(index));
  }
  return *kRegistry[index];
}

const ClusterBackend& backend_from_name(std::string_view name) {
  for (const ClusterBackend* backend : kRegistry) {
    if (backend->name() == name) return *backend;
  }
  throw ConfigError("unknown cluster backend '" + std::string(name) +
                    "' (expected lsh, exact, or kmeans)");
}

std::string_view backend_name(BackendKind kind) {
  return cluster_backend(kind).name();
}

BackendKind backend_kind_from_tag(std::uint8_t tag) {
  if (tag >= kRegistry.size()) {
    throw ParseError("unknown cluster backend tag " + std::to_string(tag));
  }
  return static_cast<BackendKind>(tag);
}

std::span<const BackendKind> all_backends() { return kKinds; }

}  // namespace repro::cluster
