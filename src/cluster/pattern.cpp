#include "cluster/pattern.hpp"

#include "util/error.hpp"

namespace repro::cluster {

Pattern Pattern::generalize(const FeatureVector& instance,
                            const InvariantTable& invariants) {
  std::vector<std::optional<std::string>> fields;
  fields.reserve(instance.values.size());
  for (std::size_t f = 0; f < instance.values.size(); ++f) {
    if (invariants.is_invariant(f, instance.values[f])) {
      fields.emplace_back(instance.values[f]);
    } else {
      fields.emplace_back(std::nullopt);
    }
  }
  return Pattern{std::move(fields)};
}

bool Pattern::matches(const FeatureVector& instance) const {
  if (instance.values.size() != fields_.size()) return false;
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (fields_[f].has_value() && *fields_[f] != instance.values[f]) {
      return false;
    }
  }
  return true;
}

std::size_t Pattern::specificity() const noexcept {
  std::size_t count = 0;
  for (const auto& field : fields_) count += field.has_value() ? 1 : 0;
  return count;
}

bool Pattern::subsumes(const Pattern& other) const {
  if (other.fields_.size() != fields_.size()) return false;
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (!fields_[f].has_value()) continue;  // wildcard subsumes anything
    if (!other.fields_[f].has_value() || *other.fields_[f] != *fields_[f]) {
      return false;
    }
  }
  return true;
}

std::string Pattern::key() const {
  // The key must be injective over pattern content: epm_cluster dedups
  // patterns by key, so two distinct patterns sharing a key silently
  // merge clusters. A wildcard renders as a bare '*'; inside literal
  // fields the separator, the wildcard marker, and the escape itself
  // are backslash-escaped so "a|b" cannot read as two fields and a
  // literal "*" cannot read as a wildcard. Values free of the three
  // special bytes render exactly as before.
  std::string out;
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (f > 0) out += "|";
    if (!fields_[f].has_value()) {
      out += "*";
      continue;
    }
    for (const char c : *fields_[f]) {
      if (c == '\\' || c == '|' || c == '*') out += '\\';
      out += c;
    }
  }
  return out;
}

std::string Pattern::describe(const FeatureSchema& schema) const {
  if (schema.size() != fields_.size()) {
    throw ConfigError("Pattern::describe: schema arity mismatch");
  }
  std::string out = "{\n";
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    out += "  " + schema.names[f] + " = " +
           (fields_[f].has_value() ? "'" + *fields_[f] + "'" : "*") + "\n";
  }
  out += "}";
  return out;
}

}  // namespace repro::cluster
