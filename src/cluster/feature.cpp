#include "cluster/feature.hpp"

#include <unordered_map>

#include <cstdio>

#include "pe/filetype.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace repro::cluster {

std::string dimension_name(Dimension dimension) {
  switch (dimension) {
    case Dimension::kEpsilon: return "Epsilon";
    case Dimension::kGamma: return "Gamma";
    case Dimension::kPi: return "Pi";
    case Dimension::kMu: return "Mu";
  }
  return "unknown";
}

FeatureSchema epsilon_schema() {
  return FeatureSchema{Dimension::kEpsilon,
                       {"FSM path identifier", "Destination port"}};
}

FeatureSchema gamma_schema() {
  return FeatureSchema{Dimension::kGamma,
                       {"Hijack technique", "Trampoline address",
                        "Pad length"}};
}

FeatureSchema pi_schema() {
  return FeatureSchema{Dimension::kPi,
                       {"Download protocol", "Filename in protocol interaction",
                        "Port involved in protocol interaction",
                        "Interaction type"}};
}

FeatureSchema mu_schema() {
  return FeatureSchema{
      Dimension::kMu,
      {"File MD5", "File size in bytes", "File type (libmagic)",
       "(PE) Machine type", "(PE) Number of sections",
       "(PE) Number of imported DLLs", "(PE) OS version",
       "(PE) Linker version", "(PE) Names of the sections",
       "(PE) Imported DLLs", "(PE) Referenced Kernel32.dll symbols"}};
}

FeatureVector extract_epsilon(const honeypot::AttackEvent& event) {
  return FeatureVector{
      {event.epsilon.fsm_path, std::to_string(event.epsilon.dst_port)}};
}

FeatureVector extract_gamma(const honeypot::AttackEvent& event) {
  if (!event.gamma.has_value()) {
    return FeatureVector{{kNotAvailable, kNotAvailable, kNotAvailable}};
  }
  char trampoline[16];
  std::snprintf(trampoline, sizeof(trampoline), "0x%08x",
                event.gamma->trampoline);
  return FeatureVector{{event.gamma->technique, trampoline,
                        std::to_string(event.gamma->pad_length)}};
}

FeatureVector extract_pi(const honeypot::AttackEvent& event) {
  if (!event.pi.has_value()) {
    return FeatureVector{
        {kNotAvailable, kNotAvailable, kNotAvailable, kNotAvailable}};
  }
  return FeatureVector{{event.pi->protocol,
                        event.pi->filename.empty() ? "(none)"
                                                   : event.pi->filename,
                        std::to_string(event.pi->port), event.pi->interaction}};
}

FeatureVector extract_mu(const honeypot::MalwareSample& sample) {
  FeatureVector out;
  out.values.reserve(11);
  out.values.push_back(sample.md5);
  out.values.push_back(std::to_string(sample.content.size()));
  out.values.push_back(pe::detect_file_type(sample.content));
  try {
    const pe::PeInfo info = pe::parse_pe(sample.content);
    out.values.push_back(std::to_string(info.machine));
    out.values.push_back(std::to_string(info.sections.size()));
    out.values.push_back(std::to_string(info.dll_count()));
    out.values.push_back(std::to_string(info.os_version()));
    out.values.push_back(std::to_string(info.linker_version()));
    std::vector<std::string> section_names;
    section_names.reserve(info.sections.size());
    for (const pe::SectionInfo& section : info.sections) {
      section_names.push_back(escape_bytes(section.raw_name));
    }
    out.values.push_back(join(section_names, ","));
    std::vector<std::string> dlls;
    dlls.reserve(info.imports.size());
    for (const pe::ImportInfo& import : info.imports) {
      dlls.push_back(import.dll);
    }
    out.values.push_back(join(dlls, ","));
    out.values.push_back(join(info.kernel32_symbols(), ","));
  } catch (const ParseError&) {
    // Truncated/corrupted image: PE fields are unobservable.
    while (out.values.size() < 11) out.values.emplace_back(kNotAvailable);
  }
  return out;
}

DimensionData build_epsilon_data(const honeypot::EventDatabase& db) {
  DimensionData data;
  data.schema = epsilon_schema();
  data.instances.reserve(db.events().size());
  data.contexts.reserve(db.events().size());
  for (const honeypot::AttackEvent& event : db.events()) {
    data.instances.push_back(extract_epsilon(event));
    data.contexts.push_back(InstanceContext{event.attacker, event.honeypot});
    data.event_ids.push_back(event.id);
  }
  return data;
}

DimensionData build_gamma_data(const honeypot::EventDatabase& db) {
  DimensionData data;
  data.schema = gamma_schema();
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.gamma.has_value()) {
      ++data.skipped_events;
      continue;
    }
    data.instances.push_back(extract_gamma(event));
    data.contexts.push_back(InstanceContext{event.attacker, event.honeypot});
    data.event_ids.push_back(event.id);
  }
  return data;
}

DimensionData build_pi_data(const honeypot::EventDatabase& db) {
  DimensionData data;
  data.schema = pi_schema();
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.pi.has_value()) {
      ++data.skipped_events;
      continue;
    }
    data.instances.push_back(extract_pi(event));
    data.contexts.push_back(InstanceContext{event.attacker, event.honeypot});
    data.event_ids.push_back(event.id);
  }
  return data;
}

DimensionData build_mu_data(const honeypot::EventDatabase& db) {
  DimensionData data;
  data.schema = mu_schema();
  // Mu features are a function of the binary: compute once per sample.
  std::unordered_map<honeypot::SampleId, FeatureVector> cache;
  cache.reserve(db.samples().size());
  for (const honeypot::MalwareSample& sample : db.samples()) {
    cache.emplace(sample.id, extract_mu(sample));
  }
  for (const honeypot::AttackEvent& event : db.events()) {
    if (!event.sample.has_value()) {
      ++data.skipped_events;
      continue;
    }
    data.instances.push_back(cache.at(*event.sample));
    data.contexts.push_back(InstanceContext{event.attacker, event.honeypot});
    data.event_ids.push_back(event.id);
  }
  return data;
}

}  // namespace repro::cluster
