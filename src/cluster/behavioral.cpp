#include "cluster/behavioral.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cluster/backend.hpp"
#include "cluster/minhash.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace repro::cluster {

namespace {

/// Jaccard over sorted unique id vectors.
double jaccard_ids(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++intersection;
      ++i;
      ++j;
    }
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Union by size: the larger tree's root absorbs the smaller, so
  /// find paths stay near-constant even on adversarial unite orders
  /// (a chain of buckets each attaching one new member used to build a
  /// linear parent chain). Which root represents a component is an
  /// internal detail — cluster ids are densified by first member, so
  /// the output partition is unaffected.
  void unite(std::size_t a, std::size_t b) {
    std::size_t root_a = find(a);
    std::size_t root_b = find(b);
    if (root_a == root_b) return;
    if (size_[root_a] < size_[root_b]) std::swap(root_a, root_b);
    parent_[root_b] = root_a;
    size_[root_a] += size_[root_b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

/// Fills ids[base..] with the feature-id sets of profiles[base..],
/// fanned out over the pool when one is attached.
void fill_id_sets(const std::vector<const sandbox::BehavioralProfile*>& profiles,
                  std::vector<std::vector<std::uint64_t>>& ids,
                  std::size_t base, ThreadPool* pool) {
  const auto fill = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = base + begin; i < base + end; ++i) {
      if (profiles[i] == nullptr) {
        throw ConfigError("cluster_profiles: null profile pointer");
      }
      ids[i] = profiles[i]->feature_ids();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(profiles.size() - base, 64, fill);
  } else {
    fill(0, profiles.size() - base);
  }
}

/// One MinHash signature pass over every id set, banded into an LSH
/// index. The bucket-map inserts stay serial so every bucket's item
/// list is built in ascending index order.
LshIndex build_lsh_index(const std::vector<std::vector<std::uint64_t>>& ids,
                         const BehavioralOptions& options) {
  std::vector<std::vector<std::uint64_t>> scratch;
  const auto& signatures = detail::minhash_signatures(ids, options, scratch);
  LshIndex index{options.lsh_bands, options.lsh_rows};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    index.insert(i, signatures[i]);
  }
  return index;
}

/// Exact-duplicate representative of every item: rep[i] is the first
/// index whose id set equals ids[i]. Behavioral corpora are heavily
/// duplicated (one malware family, thousands of identical profiles),
/// so mapping Jaccard work onto representatives collapses each
/// duplicate class to one evaluation.
std::vector<std::size_t> duplicate_reps(
    const std::vector<std::vector<std::uint64_t>>& ids) {
  std::vector<std::size_t> rep(ids.size());
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
  index.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::uint64_t hash = 0x84222325cbf29ce4ULL ^ ids[i].size();
    for (const std::uint64_t id : ids[i]) hash = mix64(hash ^ id);
    std::vector<std::size_t>& candidates = index[hash];
    rep[i] = i;
    for (const std::size_t candidate : candidates) {
      if (ids[candidate] == ids[i]) {
        rep[i] = candidate;
        break;
      }
    }
    if (rep[i] == i) candidates.push_back(i);
  }
  return rep;
}

/// Replays a prior partition into the union-find: items that shared a
/// cluster are reconnected through their cluster's first member.
void seed_partition(UnionFind& groups, const std::vector<int>& assignment) {
  constexpr std::size_t kNone = ~std::size_t{0};
  std::vector<std::size_t> first;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0) continue;
    const auto cluster = static_cast<std::size_t>(assignment[i]);
    if (cluster >= first.size()) first.resize(cluster + 1, kNone);
    if (first[cluster] == kNone) {
      first[cluster] = i;
    } else {
      groups.unite(first[cluster], i);
    }
  }
}

/// Evaluates within-bucket pairs and unions those whose Jaccard
/// similarity passes the threshold. Skipping a pair whose endpoints
/// are already connected (globally in the serial path, task-locally in
/// the parallel path) only suppresses edges that are redundant for the
/// connected components, so both paths — at any pool width — produce
/// the same partition. Within a bucket most items are near duplicates,
/// so after the first successful unite the union-find short-circuits
/// the remaining pairs in O(alpha) each — this is what keeps LSH
/// clustering below the O(n^2) distance matrix.
///
/// `groups` arrives pre-seeded with the caller's prior partition over
/// the first `old_n` items; pairs wholly inside that prefix are
/// skipped because their edges are already present (see
/// BehavioralOptions::prior_assignment for why that is sound).
void unite_bucket_pairs(UnionFind& groups,
                        const std::vector<std::vector<std::uint64_t>>& ids,
                        const std::vector<std::vector<std::size_t>>& buckets,
                        const BehavioralOptions& options, std::size_t old_n,
                        const std::vector<std::size_t>& reps) {
  const double threshold = options.threshold;
  ThreadPool* pool = options.pool;
  // Jaccard is a function of the two id sets alone, so a pair of
  // duplicate classes scores the same wherever its members co-occur.
  // Each sweep memoizes failed representative pairs (passing pairs
  // already short-circuit through the union-find) to evaluate every
  // class pair at most once instead of once per shared bucket. The
  // packed key needs both indices to fit 32 bits.
  const bool memoize = ids.size() < (std::size_t{1} << 32);
  if (options.metrics != nullptr) {
    // Worst-case pair count is a property of the bucket contents, not
    // of the schedule — deterministic. The *performed* evaluation
    // count below is not: the union-find short-circuit depends on the
    // order (and task-locality) of earlier unions.
    std::size_t bucket_pairs = 0;
    for (const auto& bucket : buckets) {
      bucket_pairs += bucket.size() * (bucket.size() - 1) / 2;
    }
    obs::add_counter(options.metrics, "cluster.b.bucket_pairs", bucket_pairs);
  }
  obs::Counter* evaluations =
      options.metrics == nullptr
          ? nullptr
          : &options.metrics->counter("cluster.b.jaccard_evaluations",
                                      obs::Channel::kRuntime);

  using Edge = std::pair<std::size_t, std::size_t>;
  const auto process = [&](const std::vector<std::size_t>& bucket,
                           UnionFind& uf, std::vector<Edge>* edges,
                           std::uint64_t& evaluated,
                           std::unordered_set<std::uint64_t>* failed) {
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      // Bucket items ascend, so bucket[i] < old_n puts every partner
      // bucket[j < i] inside the seeded prefix too.
      if (bucket[i] < old_n) continue;
      for (std::size_t j = 0; j < i; ++j) {
        const std::size_t a = bucket[j];
        const std::size_t b = bucket[i];
        if (uf.find(a) == uf.find(b)) continue;
        std::uint64_t key = 0;
        if (failed != nullptr) {
          const std::uint64_t low = std::min(reps[a], reps[b]);
          const std::uint64_t high = std::max(reps[a], reps[b]);
          key = (low << 32) | high;
          if (failed->contains(key)) continue;
        }
        ++evaluated;
        if (jaccard_ids(ids[a], ids[b]) >= threshold) {
          uf.unite(a, b);
          if (edges != nullptr) edges->emplace_back(a, b);
        } else if (failed != nullptr) {
          failed->insert(key);
        }
      }
    }
  };

  if (pool == nullptr || pool->width() == 1 || buckets.size() < 2) {
    std::uint64_t evaluated = 0;
    std::unordered_set<std::uint64_t> failed;
    for (const auto& bucket : buckets) {
      process(bucket, groups, nullptr, evaluated, memoize ? &failed : nullptr);
    }
    if (evaluations != nullptr) evaluations->add(evaluated);
    return;
  }

  // Contiguous ranges of the (deterministically ordered) bucket list,
  // weighted by worst-case pair count so one giant bucket lands in its
  // own range instead of serializing everything behind it. Each range
  // runs with a task-local union-find and records its passing pairs;
  // the ranges' edge lists are then merged in range order.
  std::size_t total_weight = 0;
  for (const auto& bucket : buckets) {
    total_weight += bucket.size() * (bucket.size() - 1) / 2;
  }
  const std::size_t target_tasks = pool->width() * 4;
  const std::size_t per_task = std::max<std::size_t>(
      1, (total_weight + target_tasks - 1) / target_tasks);
  std::vector<std::size_t> bounds{0};
  std::size_t accumulated = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    accumulated += buckets[i].size() * (buckets[i].size() - 1) / 2;
    if (accumulated >= per_task && i + 1 < buckets.size()) {
      bounds.push_back(i + 1);
      accumulated = 0;
    }
  }
  bounds.push_back(buckets.size());

  const std::size_t tasks = bounds.size() - 1;
  std::vector<std::vector<Edge>> edges(tasks);
  // Task-local union-finds start as copies of the seeded global one so
  // the prior partition short-circuits old/new pairs inside each task.
  const UnionFind seeded = groups;
  pool->parallel_for(tasks, 1, [&](std::size_t task, std::size_t) {
    UnionFind local = seeded;
    std::uint64_t evaluated = 0;
    std::unordered_set<std::uint64_t> failed;
    for (std::size_t i = bounds[task]; i < bounds[task + 1]; ++i) {
      process(buckets[i], local, &edges[task], evaluated,
              memoize ? &failed : nullptr);
    }
    if (evaluations != nullptr) evaluations->add(evaluated);
  });
  for (const std::vector<Edge>& task_edges : edges) {
    for (const auto& [a, b] : task_edges) groups.unite(a, b);
  }
}

/// Shared core: unions qualifying pairs (from the index's buckets, or
/// all pairs when exact) and densifies cluster ids in first-member
/// order.
BehavioralClusters cluster_from_ids(
    const std::vector<std::vector<std::uint64_t>>& ids,
    const BehavioralOptions& options, const LshIndex* index) {
  const std::size_t n = ids.size();
  BehavioralClusters result;
  if (n == 0) return result;

  UnionFind groups{n};
  std::size_t old_n = 0;
  if (options.prior_assignment != nullptr &&
      options.prior_assignment->size() <= n) {
    old_n = options.prior_assignment->size();
    seed_partition(groups, *options.prior_assignment);
  }
  const std::vector<std::size_t> reps = duplicate_reps(ids);
  if (options.threshold <= 1.0) {
    // Duplicates share every band bucket (identical signatures) and
    // score Jaccard 1.0, so uniting each class up front only adds
    // edges the pair sweep would add anyway — it just spares the sweep
    // from discovering them pair by pair.
    for (std::size_t i = 0; i < n; ++i) {
      if (reps[i] != i) groups.unite(reps[i], i);
    }
  }
  if (index != nullptr) {
    unite_bucket_pairs(groups, ids, index->multi_item_buckets(), options,
                       old_n, reps);
  } else {
    std::uint64_t evaluated = 0;
    for (std::size_t i = 0; i < n; ++i) {
      // Pairs wholly inside the seeded prefix were already decided by
      // the prior partition; resume at its edge.
      for (std::size_t j = i < old_n ? old_n : i + 1; j < n; ++j) {
        if (groups.find(i) == groups.find(j)) continue;
        ++evaluated;
        if (jaccard_ids(ids[i], ids[j]) >= options.threshold) {
          groups.unite(i, j);
        }
      }
    }
    obs::add_counter(options.metrics, "cluster.b.exact_pairs",
                     n * (n - 1) / 2);
    if (options.metrics != nullptr) {
      options.metrics
          ->counter("cluster.b.jaccard_evaluations", obs::Channel::kRuntime)
          .add(evaluated);
    }
  }

  // Densify cluster ids in first-member order.
  result.assignment.assign(n, -1);
  std::vector<int> root_to_cluster(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = groups.find(i);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<int>(result.members.size());
      result.members.emplace_back();
    }
    const int cluster = root_to_cluster[root];
    result.assignment[i] = cluster;
    result.members[static_cast<std::size_t>(cluster)].push_back(i);
  }
  // A partition of n items into k components took exactly n - k
  // effective unions regardless of which redundant edges were skipped —
  // deterministic even though the edge set explored is not.
  obs::add_counter(options.metrics, "cluster.b.union_ops",
                   n - result.members.size());
  return result;
}

}  // namespace

namespace detail {

/// Feature-id sets of every profile. With an attached signature cache
/// the store's id-set cache is the backing storage: only ids of items
/// appended since the previous pass are recomputed (profiles are
/// immutable, so the cached prefix is bit-identical to a fresh
/// extraction). Without one, `scratch` holds a freshly computed set.
const std::vector<std::vector<std::uint64_t>>& profile_id_sets(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options,
    std::vector<std::vector<std::uint64_t>>& scratch) {
  SignatureStore* cache = options.signature_cache;
  if (cache == nullptr) {
    scratch.assign(profiles.size(), {});
    fill_id_sets(profiles, scratch, 0, options.pool);
    return scratch;
  }
  if (cache->id_sets.size() > profiles.size()) cache->id_sets.clear();
  const std::size_t have = cache->id_sets.size();
  cache->id_sets.resize(profiles.size());
  fill_id_sets(profiles, cache->id_sets, have, options.pool);
  return cache->id_sets;
}

/// MinHash signatures of every id set. The computation (the expensive
/// part of both the LSH and K-means backends) fans out over the pool
/// into disjoint slots. An attached signature cache supplies the
/// unchanged prefix (items are positional and the streaming caller
/// only ever appends) and is the backing storage for this pass — new
/// signatures are computed straight into it, nothing is copied. A
/// configuration change or a shrunk item list invalidates it.
const std::vector<std::vector<std::uint64_t>>& minhash_signatures(
    const std::vector<std::vector<std::uint64_t>>& ids,
    const BehavioralOptions& options,
    std::vector<std::vector<std::uint64_t>>& scratch) {
  const MinHasher hasher{options.lsh_bands * options.lsh_rows, options.seed};
  SignatureStore* cache = options.signature_cache;
  const std::uint64_t config =
      signature_config(options.lsh_bands, options.lsh_rows, options.seed);
  if (cache != nullptr &&
      (cache->config != config || cache->signatures.size() > ids.size())) {
    cache->config = config;
    cache->signatures.clear();
  }
  std::vector<std::vector<std::uint64_t>>& signatures =
      cache != nullptr ? cache->signatures : scratch;
  const std::size_t cached = signatures.size();
  signatures.resize(ids.size());
  const auto compute = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      signatures[cached + i] = hasher.signature(ids[cached + i]);
    }
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(ids.size() - cached, 64, compute);
  } else {
    compute(0, ids.size() - cached);
  }
  if (cache != nullptr) {
    cache->reused += cached;
    cache->computed += ids.size() - cached;
  }
  obs::add_counter(options.metrics, "cluster.b.signatures", ids.size());
  return signatures;
}

}  // namespace detail

std::size_t BehavioralClusters::singleton_count() const noexcept {
  std::size_t count = 0;
  for (const auto& cluster : members) count += cluster.size() == 1 ? 1 : 0;
  return count;
}

BehavioralClusters cluster_profiles(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  return cluster_backend(options.backend).partition(profiles, options);
}

BehavioralClusters lsh_single_linkage(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  std::vector<std::vector<std::uint64_t>> scratch;
  const auto& ids = detail::profile_id_sets(profiles, options, scratch);
  if (ids.empty()) return {};
  const LshIndex index = build_lsh_index(ids, options);
  return cluster_from_ids(ids, options, &index);
}

BehavioralClusters exact_single_linkage(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  std::vector<std::vector<std::uint64_t>> scratch;
  const auto& ids = detail::profile_id_sets(profiles, options, scratch);
  if (ids.empty()) return {};
  return cluster_from_ids(ids, options, nullptr);
}

PairStats pair_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  PairStats stats;
  const std::size_t n = profiles.size();
  stats.exact_pairs = n * (n - 1) / 2;
  std::vector<std::vector<std::uint64_t>> scratch;
  const auto& ids = detail::profile_id_sets(profiles, options, scratch);
  stats.lsh_candidate_pairs = build_lsh_index(ids, options)
                                  .candidate_pairs()
                                  .size();
  return stats;
}

ClusteringRun cluster_profiles_with_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  ClusteringRun run;
  const std::size_t n = profiles.size();
  run.stats.exact_pairs = n * (n - 1) / 2;
  std::vector<std::vector<std::uint64_t>> scratch;
  const auto& ids = detail::profile_id_sets(profiles, options, scratch);
  if (ids.empty()) return run;
  // One signature pass feeds both artifacts.
  const LshIndex index = build_lsh_index(ids, options);
  run.stats.lsh_candidate_pairs = index.candidate_pairs().size();
  if (options.backend == BackendKind::kLsh) {
    run.clusters = cluster_from_ids(ids, options, &index);
  } else if (options.backend == BackendKind::kExact) {
    run.clusters = cluster_from_ids(ids, options, nullptr);
  } else {
    run.clusters = cluster_profiles(profiles, options);
  }
  return run;
}

}  // namespace repro::cluster
