#include "cluster/behavioral.hpp"

#include <numeric>

#include "cluster/minhash.hpp"
#include "util/error.hpp"

namespace repro::cluster {

namespace {

/// Jaccard over sorted unique id vectors.
double jaccard_ids(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++intersection;
      ++i;
      ++j;
    }
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return unions == 0 ? 1.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::vector<std::vector<std::uint64_t>> id_sets(
    const std::vector<const sandbox::BehavioralProfile*>& profiles) {
  std::vector<std::vector<std::uint64_t>> ids;
  ids.reserve(profiles.size());
  for (const sandbox::BehavioralProfile* profile : profiles) {
    if (profile == nullptr) {
      throw ConfigError("cluster_profiles: null profile pointer");
    }
    ids.push_back(profile->feature_ids());
  }
  return ids;
}

}  // namespace

std::size_t BehavioralClusters::singleton_count() const noexcept {
  std::size_t count = 0;
  for (const auto& cluster : members) count += cluster.size() == 1 ? 1 : 0;
  return count;
}

BehavioralClusters cluster_profiles(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  const std::size_t n = profiles.size();
  BehavioralClusters result;
  if (n == 0) return result;

  const auto ids = id_sets(profiles);
  UnionFind groups{n};

  if (options.use_lsh) {
    const MinHasher hasher{options.lsh_bands * options.lsh_rows, options.seed};
    LshIndex index{options.lsh_bands, options.lsh_rows};
    std::vector<std::vector<std::uint64_t>> signatures;
    signatures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      signatures.push_back(hasher.signature(ids[i]));
      index.insert(i, signatures.back());
    }
    // Process buckets directly: within a bucket most items are near
    // duplicates, so after the first successful unite the union-find
    // short-circuits the remaining pairs in O(alpha) each — this is
    // what keeps LSH clustering below the O(n^2) distance matrix.
    for (const auto& bucket : index.multi_item_buckets()) {
      for (std::size_t i = 1; i < bucket.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
          const std::size_t a = bucket[j];
          const std::size_t b = bucket[i];
          if (groups.find(a) == groups.find(b)) continue;
          if (jaccard_ids(ids[a], ids[b]) >= options.threshold) {
            groups.unite(a, b);
          }
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (groups.find(i) == groups.find(j)) continue;
        if (jaccard_ids(ids[i], ids[j]) >= options.threshold) {
          groups.unite(i, j);
        }
      }
    }
  }

  // Densify cluster ids in first-member order.
  result.assignment.assign(n, -1);
  std::vector<int> root_to_cluster(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = groups.find(i);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = static_cast<int>(result.members.size());
      result.members.emplace_back();
    }
    const int cluster = root_to_cluster[root];
    result.assignment[i] = cluster;
    result.members[static_cast<std::size_t>(cluster)].push_back(i);
  }
  return result;
}

PairStats pair_stats(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  PairStats stats;
  const std::size_t n = profiles.size();
  stats.exact_pairs = n * (n - 1) / 2;
  const auto ids = id_sets(profiles);
  const MinHasher hasher{options.lsh_bands * options.lsh_rows, options.seed};
  LshIndex index{options.lsh_bands, options.lsh_rows};
  for (std::size_t i = 0; i < n; ++i) {
    index.insert(i, hasher.signature(ids[i]));
  }
  stats.lsh_candidate_pairs = index.candidate_pairs().size();
  return stats;
}

}  // namespace repro::cluster
