#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace repro::cluster {

namespace {

/// Squared Euclidean distance between one point and one centroid, both
/// `dims` doubles long. Serial accumulation in component order — the
/// same order at every pool width.
double squared_distance(const double* point, const double* centroid,
                        std::size_t dims) {
  double sum = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double delta = point[d] - centroid[d];
    sum += delta * delta;
  }
  return sum;
}

/// floor(sqrt(n)) without touching floating point.
std::size_t integer_sqrt(std::size_t n) {
  std::size_t root = 0;
  while ((root + 1) * (root + 1) <= n) ++root;
  return root;
}

}  // namespace

BehavioralClusters kmeans_cluster(
    const std::vector<const sandbox::BehavioralProfile*>& profiles,
    const BehavioralOptions& options) {
  if (options.prior_assignment != nullptr) {
    throw ConfigError(
        "kmeans_cluster: prior_assignment seeding is only sound for "
        "single-linkage backends");
  }
  std::vector<std::vector<std::uint64_t>> id_scratch;
  const auto& ids = detail::profile_id_sets(profiles, options, id_scratch);
  const std::size_t n = ids.size();
  BehavioralClusters result;
  if (n == 0) return result;

  std::vector<std::vector<std::uint64_t>> sig_scratch;
  const auto& signatures =
      detail::minhash_signatures(ids, options, sig_scratch);
  const std::size_t dims = options.lsh_bands * options.lsh_rows;

  // Each signature component, mapped into [0, 1), is one coordinate.
  // The top 53 bits feed the mantissa so the mapping is exact and
  // platform-independent.
  std::vector<double> coords(n * dims);
  const auto materialize = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t d = 0; d < dims; ++d) {
        coords[i * dims + d] =
            static_cast<double>(signatures[i][d] >> 11) * 0x1.0p-53;
      }
    }
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(n, 64, materialize);
  } else {
    materialize(0, n);
  }

  const std::size_t requested =
      options.kmeans_k != 0 ? options.kmeans_k : integer_sqrt(n);
  const std::size_t k_max = std::min(std::max<std::size_t>(1, requested), n);
  std::size_t distance_evals = 0;

  // Greedy farthest-point seeding: one Rng draw picks the first
  // centroid, each next centroid is the point farthest from the chosen
  // set (strict > with lowest-index tie-break — deterministic). When
  // the farthest remaining point coincides with a chosen centroid the
  // corpus has fewer than k_max distinct points and seeding stops.
  Rng rng{options.seed};
  std::vector<double> centroids;
  centroids.reserve(k_max * dims);
  std::vector<double> nearest(n);
  const std::size_t first = rng.index(n);
  centroids.insert(centroids.end(), coords.begin() + first * dims,
                   coords.begin() + (first + 1) * dims);
  for (std::size_t i = 0; i < n; ++i) {
    nearest[i] = squared_distance(&coords[i * dims], centroids.data(), dims);
  }
  distance_evals += n;
  std::size_t k = 1;
  while (k < k_max) {
    std::size_t farthest = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (nearest[i] > nearest[farthest]) farthest = i;
    }
    if (nearest[farthest] <= 0.0) break;
    centroids.insert(centroids.end(), coords.begin() + farthest * dims,
                     coords.begin() + (farthest + 1) * dims);
    ++k;
    const double* added = &centroids[(k - 1) * dims];
    for (std::size_t i = 0; i < n; ++i) {
      const double distance = squared_distance(&coords[i * dims], added, dims);
      if (distance < nearest[i]) nearest[i] = distance;
    }
    distance_evals += n;
  }

  // Lloyd iterations, capped. The assignment step reads the previous
  // iteration's centroids and writes disjoint per-item slots (pool
  // fan-out is width-invariant); the centroid update is a serial
  // reduction in index order. Convergence is an integer fixed point —
  // no floating-point equality anywhere.
  std::vector<int> assign(n, 0);
  std::vector<int> previous(n, -1);
  const std::size_t cap = std::max<std::size_t>(1, options.kmeans_iterations);
  std::size_t iterations = 0;
  while (iterations < cap) {
    const auto assign_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::size_t best = 0;
        double best_distance =
            squared_distance(&coords[i * dims], &centroids[0], dims);
        for (std::size_t c = 1; c < k; ++c) {
          const double distance =
              squared_distance(&coords[i * dims], &centroids[c * dims], dims);
          if (distance < best_distance) {
            best_distance = distance;
            best = c;
          }
        }
        assign[i] = static_cast<int>(best);
      }
    };
    if (options.pool != nullptr) {
      options.pool->parallel_for(n, 64, assign_range);
    } else {
      assign_range(0, n);
    }
    distance_evals += n * k;
    ++iterations;
    if (assign == previous) break;
    previous = assign;

    std::vector<double> sums(k * dims, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) {
        sums[c * dims + d] += coords[i * dims + d];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      // A cluster nobody chose keeps its centroid; densification drops
      // it from the output if it stays empty.
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d) {
        centroids[c * dims + d] =
            sums[c * dims + d] / static_cast<double>(counts[c]);
      }
    }
  }

  // Densify centroid indices into cluster ids in first-member order —
  // the same output contract as the single-linkage backends.
  result.assignment.assign(n, -1);
  std::vector<int> dense(k, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(assign[i]);
    if (dense[c] < 0) {
      dense[c] = static_cast<int>(result.members.size());
      result.members.emplace_back();
    }
    result.assignment[i] = dense[c];
    result.members[static_cast<std::size_t>(dense[c])].push_back(i);
  }

  obs::add_counter(options.metrics, "cluster.b.kmeans_k", k);
  obs::add_counter(options.metrics, "cluster.b.kmeans_iterations", iterations);
  obs::add_counter(options.metrics, "cluster.b.kmeans_distance_evals",
                   distance_evals);
  return result;
}

}  // namespace repro::cluster
