#include "cluster/metrics.hpp"

#include <map>
#include <unordered_map>

#include "util/error.hpp"
#include "util/sorted.hpp"

namespace repro::cluster {

QualityMetrics evaluate_clustering(const std::vector<int>& assignment,
                                   const std::vector<int>& truth) {
  if (assignment.size() != truth.size()) {
    throw ConfigError("evaluate_clustering: size mismatch");
  }
  if (assignment.empty()) {
    throw ConfigError("evaluate_clustering: empty input");
  }
  const double n = static_cast<double>(assignment.size());

  // Contingency: (cluster, truth) -> count, plus marginals.
  std::map<std::pair<int, int>, std::size_t> joint;
  std::unordered_map<int, std::size_t> cluster_size;
  std::unordered_map<int, std::size_t> truth_size;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    ++joint[{assignment[i], truth[i]}];
    ++cluster_size[assignment[i]];
    ++truth_size[truth[i]];
  }

  // Bayer-style precision: sum over clusters of their dominant-label
  // count, normalized by n. Recall: symmetric over reference classes.
  std::unordered_map<int, std::size_t> best_in_cluster;
  std::unordered_map<int, std::size_t> best_in_truth;
  for (const auto& [key, count] : joint) {
    const auto& [cluster, label] = key;
    best_in_cluster[cluster] = std::max(best_in_cluster[cluster], count);
    best_in_truth[label] = std::max(best_in_truth[label], count);
  }
  // The marginal maps are iterated in sorted order below: the integer
  // sums are order-independent, but the floating-point pairwise sums
  // are not associative — hash-seed iteration order would make the
  // metrics differ across stdlib implementations.
  const auto cluster_marginals = sorted_items(cluster_size);
  const auto truth_marginals = sorted_items(truth_size);
  const auto cluster_best = sorted_items(best_in_cluster);
  const auto truth_best = sorted_items(best_in_truth);

  QualityMetrics metrics;
  std::size_t precision_sum = 0;
  for (const auto& [cluster, best] : cluster_best) precision_sum += best;
  std::size_t recall_sum = 0;
  for (const auto& [label, best] : truth_best) recall_sum += best;
  metrics.precision = static_cast<double>(precision_sum) / n;
  metrics.recall = static_cast<double>(recall_sum) / n;
  metrics.f_measure =
      metrics.precision + metrics.recall > 0.0
          ? 2.0 * metrics.precision * metrics.recall /
                (metrics.precision + metrics.recall)
          : 0.0;
  metrics.cluster_count = cluster_size.size();
  metrics.reference_count = truth_size.size();

  // Pairwise: same-cluster pairs vs same-truth pairs.
  const auto pairs = [](std::size_t k) -> double {
    return static_cast<double>(k) * static_cast<double>(k - 1) / 2.0;
  };
  double together_both = 0.0;
  for (const auto& [key, count] : joint) together_both += pairs(count);
  double together_cluster = 0.0;
  for (const auto& [cluster, size] : cluster_marginals) {
    together_cluster += pairs(size);
  }
  double together_truth = 0.0;
  for (const auto& [label, size] : truth_marginals) {
    together_truth += pairs(size);
  }
  metrics.pairwise_precision =
      together_cluster > 0.0 ? together_both / together_cluster : 1.0;
  metrics.pairwise_recall =
      together_truth > 0.0 ? together_both / together_truth : 1.0;
  metrics.pairwise_f1 =
      metrics.pairwise_precision + metrics.pairwise_recall > 0.0
          ? 2.0 * metrics.pairwise_precision * metrics.pairwise_recall /
                (metrics.pairwise_precision + metrics.pairwise_recall)
          : 0.0;
  return metrics;
}

}  // namespace repro::cluster
