#include "cluster/invariants.hpp"

#include "util/error.hpp"
#include "util/sorted.hpp"

namespace repro::cluster {

void InvariantTable::add(std::size_t feature, std::string value) {
  if (feature >= per_feature_.size()) {
    throw ConfigError("InvariantTable::add: feature index out of range");
  }
  per_feature_[feature].insert(std::move(value));
}

bool InvariantTable::is_invariant(std::size_t feature,
                                  const std::string& value) const {
  if (feature >= per_feature_.size()) return false;
  return per_feature_[feature].count(value) > 0;
}

std::size_t InvariantTable::count(std::size_t feature) const {
  if (feature >= per_feature_.size()) {
    throw ConfigError("InvariantTable::count: feature index out of range");
  }
  return per_feature_[feature].size();
}

std::vector<std::string> InvariantTable::sorted_values(
    std::size_t feature) const {
  if (feature >= per_feature_.size()) {
    throw ConfigError(
        "InvariantTable::sorted_values: feature index out of range");
  }
  return sorted_keys(per_feature_[feature]);
}

InvariantTable discover_invariants(const DimensionData& data,
                                   const InvariantThresholds& thresholds) {
  struct ValueStats {
    std::size_t instances = 0;
    std::unordered_set<std::uint32_t> sources;
    std::unordered_set<std::uint32_t> destinations;
  };

  const std::size_t feature_count = data.schema.size();
  std::vector<std::unordered_map<std::string, ValueStats>> stats(feature_count);

  for (std::size_t row = 0; row < data.instances.size(); ++row) {
    const FeatureVector& instance = data.instances[row];
    const InstanceContext& context = data.contexts[row];
    if (instance.values.size() != feature_count) {
      throw ConfigError(
          "discover_invariants: instance arity mismatch with schema");
    }
    for (std::size_t f = 0; f < feature_count; ++f) {
      ValueStats& value_stats = stats[f][instance.values[f]];
      ++value_stats.instances;
      value_stats.sources.insert(context.source.value());
      value_stats.destinations.insert(context.destination.value());
    }
  }

  InvariantTable table{feature_count};
  for (std::size_t f = 0; f < feature_count; ++f) {
    // Sorted keys: the table content is order-independent, but walking
    // the hash map directly would wire its iteration order into any
    // consumer that enumerates the table — keep the whole path
    // deterministic instead.
    const std::vector<std::string> values = sorted_keys(stats[f]);
    for (const std::string& value : values) {
      // A missing observation is not a value: it must never become an
      // invariant (truncated samples would otherwise cluster on their
      // unobservable PE fields).
      if (value == kNotAvailable) continue;
      const ValueStats& value_stats = stats[f].at(value);
      if (value_stats.instances >= thresholds.min_instances &&
          value_stats.sources.size() >= thresholds.min_sources &&
          value_stats.destinations.size() >= thresholds.min_destinations) {
        table.add(f, value);
      }
    }
  }
  return table;
}

}  // namespace repro::cluster
