# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/shellcode_test[1]_include.cmake")
include("/root/repo/build/tests/malware_test[1]_include.cmake")
include("/root/repo/build/tests/sandbox_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/honeypot_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
