# Empty compiler generated dependencies file for shellcode_test.
# This may be replaced when dependencies are built.
