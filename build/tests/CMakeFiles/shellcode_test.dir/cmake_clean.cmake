file(REMOVE_RECURSE
  "CMakeFiles/shellcode_test.dir/shellcode_test.cpp.o"
  "CMakeFiles/shellcode_test.dir/shellcode_test.cpp.o.d"
  "shellcode_test"
  "shellcode_test.pdb"
  "shellcode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shellcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
