# Empty dependencies file for shellcode_test.
# This may be replaced when dependencies are built.
