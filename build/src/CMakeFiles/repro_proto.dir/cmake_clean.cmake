file(REMOVE_RECURSE
  "CMakeFiles/repro_proto.dir/proto/fsm.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/fsm.cpp.o.d"
  "CMakeFiles/repro_proto.dir/proto/gamma.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/gamma.cpp.o.d"
  "CMakeFiles/repro_proto.dir/proto/incremental.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/incremental.cpp.o.d"
  "CMakeFiles/repro_proto.dir/proto/message.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/message.cpp.o.d"
  "CMakeFiles/repro_proto.dir/proto/region.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/region.cpp.o.d"
  "CMakeFiles/repro_proto.dir/proto/services.cpp.o"
  "CMakeFiles/repro_proto.dir/proto/services.cpp.o.d"
  "librepro_proto.a"
  "librepro_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
