
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/fsm.cpp" "src/CMakeFiles/repro_proto.dir/proto/fsm.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/fsm.cpp.o.d"
  "/root/repo/src/proto/gamma.cpp" "src/CMakeFiles/repro_proto.dir/proto/gamma.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/gamma.cpp.o.d"
  "/root/repo/src/proto/incremental.cpp" "src/CMakeFiles/repro_proto.dir/proto/incremental.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/incremental.cpp.o.d"
  "/root/repo/src/proto/message.cpp" "src/CMakeFiles/repro_proto.dir/proto/message.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/message.cpp.o.d"
  "/root/repo/src/proto/region.cpp" "src/CMakeFiles/repro_proto.dir/proto/region.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/region.cpp.o.d"
  "/root/repo/src/proto/services.cpp" "src/CMakeFiles/repro_proto.dir/proto/services.cpp.o" "gcc" "src/CMakeFiles/repro_proto.dir/proto/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
