
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/honeypot/avlabels.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/avlabels.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/avlabels.cpp.o.d"
  "/root/repo/src/honeypot/database.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/database.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/database.cpp.o.d"
  "/root/repo/src/honeypot/deployment.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/deployment.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/deployment.cpp.o.d"
  "/root/repo/src/honeypot/download.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/download.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/download.cpp.o.d"
  "/root/repo/src/honeypot/enrichment.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/enrichment.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/enrichment.cpp.o.d"
  "/root/repo/src/honeypot/gateway.cpp" "src/CMakeFiles/repro_honeypot.dir/honeypot/gateway.cpp.o" "gcc" "src/CMakeFiles/repro_honeypot.dir/honeypot/gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_shellcode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sandbox.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
