file(REMOVE_RECURSE
  "librepro_honeypot.a"
)
