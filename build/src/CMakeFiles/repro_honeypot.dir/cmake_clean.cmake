file(REMOVE_RECURSE
  "CMakeFiles/repro_honeypot.dir/honeypot/avlabels.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/avlabels.cpp.o.d"
  "CMakeFiles/repro_honeypot.dir/honeypot/database.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/database.cpp.o.d"
  "CMakeFiles/repro_honeypot.dir/honeypot/deployment.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/deployment.cpp.o.d"
  "CMakeFiles/repro_honeypot.dir/honeypot/download.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/download.cpp.o.d"
  "CMakeFiles/repro_honeypot.dir/honeypot/enrichment.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/enrichment.cpp.o.d"
  "CMakeFiles/repro_honeypot.dir/honeypot/gateway.cpp.o"
  "CMakeFiles/repro_honeypot.dir/honeypot/gateway.cpp.o.d"
  "librepro_honeypot.a"
  "librepro_honeypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_honeypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
