# Empty dependencies file for repro_honeypot.
# This may be replaced when dependencies are built.
