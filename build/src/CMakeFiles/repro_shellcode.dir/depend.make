# Empty dependencies file for repro_shellcode.
# This may be replaced when dependencies are built.
