file(REMOVE_RECURSE
  "CMakeFiles/repro_shellcode.dir/shellcode/analyzer.cpp.o"
  "CMakeFiles/repro_shellcode.dir/shellcode/analyzer.cpp.o.d"
  "CMakeFiles/repro_shellcode.dir/shellcode/builder.cpp.o"
  "CMakeFiles/repro_shellcode.dir/shellcode/builder.cpp.o.d"
  "CMakeFiles/repro_shellcode.dir/shellcode/intent.cpp.o"
  "CMakeFiles/repro_shellcode.dir/shellcode/intent.cpp.o.d"
  "librepro_shellcode.a"
  "librepro_shellcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_shellcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
