
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shellcode/analyzer.cpp" "src/CMakeFiles/repro_shellcode.dir/shellcode/analyzer.cpp.o" "gcc" "src/CMakeFiles/repro_shellcode.dir/shellcode/analyzer.cpp.o.d"
  "/root/repo/src/shellcode/builder.cpp" "src/CMakeFiles/repro_shellcode.dir/shellcode/builder.cpp.o" "gcc" "src/CMakeFiles/repro_shellcode.dir/shellcode/builder.cpp.o.d"
  "/root/repo/src/shellcode/intent.cpp" "src/CMakeFiles/repro_shellcode.dir/shellcode/intent.cpp.o" "gcc" "src/CMakeFiles/repro_shellcode.dir/shellcode/intent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
