file(REMOVE_RECURSE
  "librepro_shellcode.a"
)
