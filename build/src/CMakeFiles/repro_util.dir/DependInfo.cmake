
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byteio.cpp" "src/CMakeFiles/repro_util.dir/util/byteio.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/byteio.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/repro_util.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/repro_util.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/md5.cpp" "src/CMakeFiles/repro_util.dir/util/md5.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/md5.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/repro_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/simtime.cpp" "src/CMakeFiles/repro_util.dir/util/simtime.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/simtime.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/repro_util.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/repro_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/repro_util.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
