file(REMOVE_RECURSE
  "CMakeFiles/repro_util.dir/util/byteio.cpp.o"
  "CMakeFiles/repro_util.dir/util/byteio.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/hex.cpp.o"
  "CMakeFiles/repro_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/histogram.cpp.o"
  "CMakeFiles/repro_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/md5.cpp.o"
  "CMakeFiles/repro_util.dir/util/md5.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/rng.cpp.o"
  "CMakeFiles/repro_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/simtime.cpp.o"
  "CMakeFiles/repro_util.dir/util/simtime.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/strings.cpp.o"
  "CMakeFiles/repro_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/repro_util.dir/util/table.cpp.o"
  "CMakeFiles/repro_util.dir/util/table.cpp.o.d"
  "librepro_util.a"
  "librepro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
