file(REMOVE_RECURSE
  "CMakeFiles/repro_io.dir/io/csv_export.cpp.o"
  "CMakeFiles/repro_io.dir/io/csv_export.cpp.o.d"
  "CMakeFiles/repro_io.dir/io/csv_import.cpp.o"
  "CMakeFiles/repro_io.dir/io/csv_import.cpp.o.d"
  "librepro_io.a"
  "librepro_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
