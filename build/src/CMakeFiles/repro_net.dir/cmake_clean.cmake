file(REMOVE_RECURSE
  "CMakeFiles/repro_net.dir/net/address_space.cpp.o"
  "CMakeFiles/repro_net.dir/net/address_space.cpp.o.d"
  "CMakeFiles/repro_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/repro_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/repro_net.dir/net/subnet.cpp.o"
  "CMakeFiles/repro_net.dir/net/subnet.cpp.o.d"
  "librepro_net.a"
  "librepro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
