file(REMOVE_RECURSE
  "CMakeFiles/repro_report.dir/report/landscape_report.cpp.o"
  "CMakeFiles/repro_report.dir/report/landscape_report.cpp.o.d"
  "CMakeFiles/repro_report.dir/report/reports.cpp.o"
  "CMakeFiles/repro_report.dir/report/reports.cpp.o.d"
  "librepro_report.a"
  "librepro_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
