file(REMOVE_RECURSE
  "librepro_report.a"
)
