
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/anomaly.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/anomaly.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/anomaly.cpp.o.d"
  "/root/repo/src/analysis/bview.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/bview.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/bview.cpp.o.d"
  "/root/repo/src/analysis/c2.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/c2.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/c2.cpp.o.d"
  "/root/repo/src/analysis/codeshare.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/codeshare.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/codeshare.cpp.o.d"
  "/root/repo/src/analysis/context.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/context.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/context.cpp.o.d"
  "/root/repo/src/analysis/evolution.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/evolution.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/evolution.cpp.o.d"
  "/root/repo/src/analysis/graph.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/graph.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/graph.cpp.o.d"
  "/root/repo/src/analysis/healing.cpp" "src/CMakeFiles/repro_analysis.dir/analysis/healing.cpp.o" "gcc" "src/CMakeFiles/repro_analysis.dir/analysis/healing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_shellcode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_pe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
