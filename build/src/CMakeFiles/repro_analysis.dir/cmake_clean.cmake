file(REMOVE_RECURSE
  "CMakeFiles/repro_analysis.dir/analysis/anomaly.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/anomaly.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/bview.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/bview.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/c2.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/c2.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/codeshare.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/codeshare.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/context.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/context.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/evolution.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/evolution.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/graph.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/graph.cpp.o.d"
  "CMakeFiles/repro_analysis.dir/analysis/healing.cpp.o"
  "CMakeFiles/repro_analysis.dir/analysis/healing.cpp.o.d"
  "librepro_analysis.a"
  "librepro_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
