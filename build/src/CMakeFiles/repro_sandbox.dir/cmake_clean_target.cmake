file(REMOVE_RECURSE
  "librepro_sandbox.a"
)
