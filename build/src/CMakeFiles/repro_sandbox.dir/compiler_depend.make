# Empty compiler generated dependencies file for repro_sandbox.
# This may be replaced when dependencies are built.
