file(REMOVE_RECURSE
  "CMakeFiles/repro_sandbox.dir/sandbox/anubis.cpp.o"
  "CMakeFiles/repro_sandbox.dir/sandbox/anubis.cpp.o.d"
  "CMakeFiles/repro_sandbox.dir/sandbox/environment.cpp.o"
  "CMakeFiles/repro_sandbox.dir/sandbox/environment.cpp.o.d"
  "CMakeFiles/repro_sandbox.dir/sandbox/profile.cpp.o"
  "CMakeFiles/repro_sandbox.dir/sandbox/profile.cpp.o.d"
  "librepro_sandbox.a"
  "librepro_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
