# Empty compiler generated dependencies file for repro_pe.
# This may be replaced when dependencies are built.
