file(REMOVE_RECURSE
  "CMakeFiles/repro_pe.dir/pe/builder.cpp.o"
  "CMakeFiles/repro_pe.dir/pe/builder.cpp.o.d"
  "CMakeFiles/repro_pe.dir/pe/filetype.cpp.o"
  "CMakeFiles/repro_pe.dir/pe/filetype.cpp.o.d"
  "CMakeFiles/repro_pe.dir/pe/parser.cpp.o"
  "CMakeFiles/repro_pe.dir/pe/parser.cpp.o.d"
  "librepro_pe.a"
  "librepro_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
