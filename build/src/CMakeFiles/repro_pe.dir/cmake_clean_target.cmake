file(REMOVE_RECURSE
  "librepro_pe.a"
)
