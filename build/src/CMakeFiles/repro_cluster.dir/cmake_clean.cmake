file(REMOVE_RECURSE
  "CMakeFiles/repro_cluster.dir/cluster/behavioral.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/behavioral.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/epm.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/epm.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/feature.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/feature.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/invariants.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/invariants.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/metrics.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/metrics.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/minhash.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/minhash.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/pattern.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/pattern.cpp.o.d"
  "CMakeFiles/repro_cluster.dir/cluster/pehash.cpp.o"
  "CMakeFiles/repro_cluster.dir/cluster/pehash.cpp.o.d"
  "librepro_cluster.a"
  "librepro_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
