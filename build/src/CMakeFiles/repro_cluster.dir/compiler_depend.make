# Empty compiler generated dependencies file for repro_cluster.
# This may be replaced when dependencies are built.
