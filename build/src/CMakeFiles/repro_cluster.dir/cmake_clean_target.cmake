file(REMOVE_RECURSE
  "librepro_cluster.a"
)
