
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/behavioral.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/behavioral.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/behavioral.cpp.o.d"
  "/root/repo/src/cluster/epm.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/epm.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/epm.cpp.o.d"
  "/root/repo/src/cluster/feature.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/feature.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/feature.cpp.o.d"
  "/root/repo/src/cluster/invariants.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/invariants.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/invariants.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/metrics.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/metrics.cpp.o.d"
  "/root/repo/src/cluster/minhash.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/minhash.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/minhash.cpp.o.d"
  "/root/repo/src/cluster/pattern.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/pattern.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/pattern.cpp.o.d"
  "/root/repo/src/cluster/pehash.cpp" "src/CMakeFiles/repro_cluster.dir/cluster/pehash.cpp.o" "gcc" "src/CMakeFiles/repro_cluster.dir/cluster/pehash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_shellcode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
