file(REMOVE_RECURSE
  "CMakeFiles/repro_scenario.dir/scenario/paper.cpp.o"
  "CMakeFiles/repro_scenario.dir/scenario/paper.cpp.o.d"
  "librepro_scenario.a"
  "librepro_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
