file(REMOVE_RECURSE
  "librepro_scenario.a"
)
