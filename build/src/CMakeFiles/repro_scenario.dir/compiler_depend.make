# Empty compiler generated dependencies file for repro_scenario.
# This may be replaced when dependencies are built.
