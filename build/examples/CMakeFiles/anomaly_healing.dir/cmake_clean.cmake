file(REMOVE_RECURSE
  "CMakeFiles/anomaly_healing.dir/anomaly_healing.cpp.o"
  "CMakeFiles/anomaly_healing.dir/anomaly_healing.cpp.o.d"
  "anomaly_healing"
  "anomaly_healing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
