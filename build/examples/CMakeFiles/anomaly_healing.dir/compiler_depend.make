# Empty compiler generated dependencies file for anomaly_healing.
# This may be replaced when dependencies are built.
