file(REMOVE_RECURSE
  "CMakeFiles/botnet_tracking.dir/botnet_tracking.cpp.o"
  "CMakeFiles/botnet_tracking.dir/botnet_tracking.cpp.o.d"
  "botnet_tracking"
  "botnet_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/botnet_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
