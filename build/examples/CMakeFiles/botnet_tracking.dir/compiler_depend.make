# Empty compiler generated dependencies file for botnet_tracking.
# This may be replaced when dependencies are built.
