# Empty dependencies file for honeypot_walkthrough.
# This may be replaced when dependencies are built.
