# Empty compiler generated dependencies file for honeypot_walkthrough.
# This may be replaced when dependencies are built.
