file(REMOVE_RECURSE
  "CMakeFiles/honeypot_walkthrough.dir/honeypot_walkthrough.cpp.o"
  "CMakeFiles/honeypot_walkthrough.dir/honeypot_walkthrough.cpp.o.d"
  "honeypot_walkthrough"
  "honeypot_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/honeypot_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
