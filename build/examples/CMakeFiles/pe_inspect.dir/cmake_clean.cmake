file(REMOVE_RECURSE
  "CMakeFiles/pe_inspect.dir/pe_inspect.cpp.o"
  "CMakeFiles/pe_inspect.dir/pe_inspect.cpp.o.d"
  "pe_inspect"
  "pe_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
