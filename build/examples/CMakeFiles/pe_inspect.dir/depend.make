# Empty dependencies file for pe_inspect.
# This may be replaced when dependencies are built.
