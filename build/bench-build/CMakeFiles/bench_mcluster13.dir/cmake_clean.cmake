file(REMOVE_RECURSE
  "../bench/bench_mcluster13"
  "../bench/bench_mcluster13.pdb"
  "CMakeFiles/bench_mcluster13.dir/bench_mcluster13.cpp.o"
  "CMakeFiles/bench_mcluster13.dir/bench_mcluster13.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mcluster13.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
