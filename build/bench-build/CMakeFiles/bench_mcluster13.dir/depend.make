# Empty dependencies file for bench_mcluster13.
# This may be replaced when dependencies are built.
