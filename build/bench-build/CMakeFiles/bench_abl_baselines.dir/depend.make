# Empty dependencies file for bench_abl_baselines.
# This may be replaced when dependencies are built.
