file(REMOVE_RECURSE
  "../bench/bench_abl_baselines"
  "../bench/bench_abl_baselines.pdb"
  "CMakeFiles/bench_abl_baselines.dir/bench_abl_baselines.cpp.o"
  "CMakeFiles/bench_abl_baselines.dir/bench_abl_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
