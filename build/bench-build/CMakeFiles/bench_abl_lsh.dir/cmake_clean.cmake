file(REMOVE_RECURSE
  "../bench/bench_abl_lsh"
  "../bench/bench_abl_lsh.pdb"
  "CMakeFiles/bench_abl_lsh.dir/bench_abl_lsh.cpp.o"
  "CMakeFiles/bench_abl_lsh.dir/bench_abl_lsh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
