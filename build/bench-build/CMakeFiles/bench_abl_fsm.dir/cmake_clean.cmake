file(REMOVE_RECURSE
  "../bench/bench_abl_fsm"
  "../bench/bench_abl_fsm.pdb"
  "CMakeFiles/bench_abl_fsm.dir/bench_abl_fsm.cpp.o"
  "CMakeFiles/bench_abl_fsm.dir/bench_abl_fsm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
