# Empty compiler generated dependencies file for bench_abl_fsm.
# This may be replaced when dependencies are built.
