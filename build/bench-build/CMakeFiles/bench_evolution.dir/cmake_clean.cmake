file(REMOVE_RECURSE
  "../bench/bench_evolution"
  "../bench/bench_evolution.pdb"
  "CMakeFiles/bench_evolution.dir/bench_evolution.cpp.o"
  "CMakeFiles/bench_evolution.dir/bench_evolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
