file(REMOVE_RECURSE
  "../bench/bench_table2_irc"
  "../bench/bench_table2_irc.pdb"
  "CMakeFiles/bench_table2_irc.dir/bench_table2_irc.cpp.o"
  "CMakeFiles/bench_table2_irc.dir/bench_table2_irc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_irc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
