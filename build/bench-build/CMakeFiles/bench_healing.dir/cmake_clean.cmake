file(REMOVE_RECURSE
  "../bench/bench_healing"
  "../bench/bench_healing.pdb"
  "CMakeFiles/bench_healing.dir/bench_healing.cpp.o"
  "CMakeFiles/bench_healing.dir/bench_healing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_healing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
