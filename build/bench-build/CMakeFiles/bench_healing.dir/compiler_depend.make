# Empty compiler generated dependencies file for bench_healing.
# This may be replaced when dependencies are built.
