file(REMOVE_RECURSE
  "../bench/bench_abl_thresholds"
  "../bench/bench_abl_thresholds.pdb"
  "CMakeFiles/bench_abl_thresholds.dir/bench_abl_thresholds.cpp.o"
  "CMakeFiles/bench_abl_thresholds.dir/bench_abl_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
