# Empty dependencies file for bench_fig3_relationships.
# This may be replaced when dependencies are built.
