file(REMOVE_RECURSE
  "../bench/bench_fig3_relationships"
  "../bench/bench_fig3_relationships.pdb"
  "CMakeFiles/bench_fig3_relationships.dir/bench_fig3_relationships.cpp.o"
  "CMakeFiles/bench_fig3_relationships.dir/bench_fig3_relationships.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
