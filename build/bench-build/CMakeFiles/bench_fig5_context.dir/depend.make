# Empty dependencies file for bench_fig5_context.
# This may be replaced when dependencies are built.
