file(REMOVE_RECURSE
  "../bench/bench_fig5_context"
  "../bench/bench_fig5_context.pdb"
  "CMakeFiles/bench_fig5_context.dir/bench_fig5_context.cpp.o"
  "CMakeFiles/bench_fig5_context.dir/bench_fig5_context.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
