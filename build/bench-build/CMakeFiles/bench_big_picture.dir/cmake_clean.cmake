file(REMOVE_RECURSE
  "../bench/bench_big_picture"
  "../bench/bench_big_picture.pdb"
  "CMakeFiles/bench_big_picture.dir/bench_big_picture.cpp.o"
  "CMakeFiles/bench_big_picture.dir/bench_big_picture.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_big_picture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
