
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_big_picture.cpp" "bench-build/CMakeFiles/bench_big_picture.dir/bench_big_picture.cpp.o" "gcc" "bench-build/CMakeFiles/bench_big_picture.dir/bench_big_picture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/repro_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_honeypot.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_sandbox.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_shellcode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
