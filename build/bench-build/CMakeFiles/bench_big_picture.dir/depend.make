# Empty dependencies file for bench_big_picture.
# This may be replaced when dependencies are built.
