# Empty dependencies file for bench_gamma_extension.
# This may be replaced when dependencies are built.
