file(REMOVE_RECURSE
  "../bench/bench_gamma_extension"
  "../bench/bench_gamma_extension.pdb"
  "CMakeFiles/bench_gamma_extension.dir/bench_gamma_extension.cpp.o"
  "CMakeFiles/bench_gamma_extension.dir/bench_gamma_extension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gamma_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
