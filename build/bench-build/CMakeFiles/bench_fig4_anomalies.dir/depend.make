# Empty dependencies file for bench_fig4_anomalies.
# This may be replaced when dependencies are built.
