file(REMOVE_RECURSE
  "../bench/bench_fig4_anomalies"
  "../bench/bench_fig4_anomalies.pdb"
  "CMakeFiles/bench_fig4_anomalies.dir/bench_fig4_anomalies.cpp.o"
  "CMakeFiles/bench_fig4_anomalies.dir/bench_fig4_anomalies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
