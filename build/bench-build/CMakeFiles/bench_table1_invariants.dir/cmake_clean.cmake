file(REMOVE_RECURSE
  "../bench/bench_table1_invariants"
  "../bench/bench_table1_invariants.pdb"
  "CMakeFiles/bench_table1_invariants.dir/bench_table1_invariants.cpp.o"
  "CMakeFiles/bench_table1_invariants.dir/bench_table1_invariants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
