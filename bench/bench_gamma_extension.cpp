// EXT-1 — the gamma dimension (paper footnote 1, implemented as an
// extension). SGNET could not classify bogus control data for lack of
// host-side information; our sample factory's taint oracle observes the
// hijack for every *proxied* event, so gamma clustering runs on that
// subset. Two results: (a) under the paper's (10,3,3) thresholds the
// dimension starves — exactly why the paper skipped it — and (b) with
// relaxed thresholds, trampoline reuse across exploit implementations
// surfaces (popular jmp-esp gadgets), a code-sharing signal invisible
// in the other dimensions.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "cluster/epm.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXT-1: gamma-dimension classification");

  const auto gamma_data = cluster::build_gamma_data(ds.db);
  std::cout << "events with host-side gamma observations (proxied to the "
               "sample factory): "
            << gamma_data.instances.size() << " of "
            << ds.db.events().size() << " ("
            << fixed(100.0 * static_cast<double>(gamma_data.instances.size()) /
                         static_cast<double>(ds.db.events().size()),
                     1)
            << "%)\n\n";

  TextTable table{{"thresholds", "technique inv.", "trampoline inv.",
                   "pad inv.", "gamma clusters"}};
  for (const auto& [label, thresholds] :
       std::vector<std::pair<std::string, cluster::InvariantThresholds>>{
           {"paper (10,3,3)", {10, 3, 3}},
           {"relaxed (3,2,2)", {3, 2, 2}},
           {"minimal (2,1,1)", {2, 1, 1}}}) {
    const auto result = cluster::epm_cluster(gamma_data, thresholds);
    table.add_row({label, std::to_string(result.invariants.count(0)),
                   std::to_string(result.invariants.count(1)),
                   std::to_string(result.invariants.count(2)),
                   std::to_string(result.cluster_count())});
  }
  std::cout << table.render();

  // Gadget reuse: trampolines used by several exploit implementations.
  std::map<std::string, std::set<std::string>> gadget_paths;
  for (std::size_t row = 0; row < gamma_data.instances.size(); ++row) {
    const auto& event = ds.db.events()[gamma_data.event_ids[row]];
    gadget_paths[gamma_data.instances[row].values[1]].insert(
        std::to_string(event.epsilon.dst_port));
  }
  std::size_t reused = 0;
  for (const auto& [gadget, ports] : gadget_paths) {
    reused += ports.size() >= 2 ? 1 : 0;
  }
  std::cout << "\ndistinct trampoline addresses observed: "
            << gadget_paths.size() << "\n"
            << "trampolines reused across service ports (popular gadgets): "
            << reused << "\n"
            << "\n(reading: with the paper's relevance constraints the "
               "proxied subset is too thin\nfor most gamma values to "
               "qualify -- the quantitative form of footnote 1. Relaxed\n"
               "thresholds expose the hijack-code reuse hiding in the "
               "dimension.)\n";
  bench::print_degradation(ds);
  return 0;
}
