// EXP-4 — Section 4.2's "M-cluster 13": a per-source polymorphic
// downloader whose static pattern keeps every PE invariant except the
// MD5, and whose behavioral profiles split by environmental conditions
// (the iliketay.cn DNS life-cycle).
#include <iostream>
#include <set>

#include "bench_common.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-4: the per-source polymorphic M-cluster");

  // Locate the cluster by its signature size (59904, as in the paper).
  int m13 = -1;
  for (std::size_t p = 0; p < ds.m.patterns.size(); ++p) {
    const auto& fields = ds.m.patterns[p].fields();
    if (fields[1].has_value() && *fields[1] == "59904") {
      m13 = static_cast<int>(p);
      break;
    }
  }
  if (m13 < 0) {
    std::cout << "M-cluster with size 59904 not found (unexpected)\n";
    return 1;
  }
  std::cout << "-- invariant pattern (paper prints the same dump: size "
               "59904, machine 332,\n   3 sections, 1 DLL, osversion 64, "
               "linkerversion 92, MD5 = do-not-care) --\n"
            << ds.m.patterns[static_cast<std::size_t>(m13)].describe(
                   ds.m.schema)
            << "\n\n";

  // Per-source mutation evidence: each attacking source reuses one MD5
  // across its events, while different sources use different MD5s.
  std::map<std::string, std::set<std::uint32_t>> md5_sources;
  std::map<std::string, std::size_t> md5_events;
  std::set<int> b_clusters;
  for (const auto& event : ds.db.events()) {
    if (!event.sample.has_value()) continue;
    if (ds.m.cluster_of_event(event.id) != m13) continue;
    const auto& sample = ds.db.sample(*event.sample);
    md5_sources[sample.md5].insert(event.attacker.value());
    ++md5_events[sample.md5];
    const int b = ds.b.cluster_of_sample(sample.id);
    if (b >= 0) b_clusters.insert(b);
  }
  std::size_t repeated_md5 = 0;
  std::size_t multi_source_md5 = 0;
  for (const auto& [md5, sources] : md5_sources) {
    repeated_md5 += md5_events[md5] > 1 ? 1 : 0;
    multi_source_md5 += sources.size() > 1 ? 1 : 0;
  }
  std::cout << "distinct MD5s in the cluster: " << md5_sources.size() << "\n"
            << "MD5s seen in multiple attack instances: " << repeated_md5
            << " (paper: same hash repeats per attacking source)\n"
            << "MD5s used by more than one source: " << multi_source_md5
            << " (paper: 0 -- mutation is keyed on the source)\n"
            << "associated B-clusters: " << b_clusters.size()
            << " (paper: several, split by environmental conditions such "
               "as the\n iliketay.cn DNS entry being alive, degraded or "
               "removed)\n";
  bench::print_degradation(ds);
  return 0;
}
