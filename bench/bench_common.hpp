// Shared setup for the reproduction bench harnesses.
//
// Every harness rebuilds the paper-scale dataset (deterministic, seed
// 2008). Set REPRO_BENCH_SCALE to a value in (0, 1] to run the whole
// suite faster at reduced event rates (shapes hold from ~0.2 upward;
// the reported absolute counts are calibrated at 1.0). Set
// REPRO_BENCH_FAULTS to "paper" (calibrated rates) or "2x" (doubled)
// to run the same harness under fault injection; every bench then
// prints the degradation summary after its report.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "report/reports.hpp"
#include "scenario/paper.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"

namespace repro::bench {

/// Canonical JSON token for a quality/ratio metric. Quality metrics
/// divide by zero on degenerate landscapes (single planted cluster, no
/// multi-member truth pairs), and `%.4f` renders those as bare
/// `nan`/`inf` — which no JSON parser (including the --check gates
/// downstream) accepts. json_double emits quoted "NaN"/"Infinity"
/// sentinels for non-finite values instead.
inline std::string json_quality(double value) {
  return json_double(value, 4);
}

inline scenario::ScenarioOptions options_from_env() {
  scenario::ScenarioOptions options;
  if (const char* scale = std::getenv("REPRO_BENCH_SCALE")) {
    options.scale = parse_f64(scale, "REPRO_BENCH_SCALE");
  }
  if (const char* seed = std::getenv("REPRO_BENCH_SEED")) {
    options.seed = parse_u64(seed, "REPRO_BENCH_SEED");
  }
  if (const char* faults = std::getenv("REPRO_BENCH_FAULTS")) {
    const std::string mode = faults;
    if (mode == "paper") {
      options.faults = fault::FaultPlan::paper_calibrated();
    } else if (mode == "2x") {
      options.faults = fault::FaultPlan::paper_calibrated().scaled(2.0);
    } else if (!mode.empty() && mode != "none") {
      throw ConfigError("REPRO_BENCH_FAULTS must be none, paper or 2x");
    }
  }
  return options;
}

inline scenario::Dataset build_dataset(const char* banner) {
  const scenario::ScenarioOptions options = options_from_env();
  std::cout << "### " << banner << "\n"
            << "(seed " << options.seed << ", scale " << options.scale
            << (options.faults.empty() ? "" : ", fault injection ON")
            << "; building the SGNET-equivalent dataset...)\n\n";
  return scenario::build_paper_dataset(options);
}

/// Prints the degradation summary when any fault fired; no output on a
/// clean run, so every bench can call this unconditionally.
inline void print_degradation(const scenario::Dataset& dataset) {
  const std::string summary = report::degradation(
      dataset.fault_report, dataset.db, dataset.enrichment);
  if (!summary.empty()) std::cout << "\n" << summary;
}

}  // namespace repro::bench
