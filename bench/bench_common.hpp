// Shared setup for the reproduction bench harnesses.
//
// Every harness rebuilds the paper-scale dataset (deterministic, seed
// 2008). Set REPRO_BENCH_SCALE to a value in (0, 1] to run the whole
// suite faster at reduced event rates (shapes hold from ~0.2 upward;
// the reported absolute counts are calibrated at 1.0).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/paper.hpp"

namespace repro::bench {

inline scenario::ScenarioOptions options_from_env() {
  scenario::ScenarioOptions options;
  if (const char* scale = std::getenv("REPRO_BENCH_SCALE")) {
    options.scale = std::stod(scale);
  }
  if (const char* seed = std::getenv("REPRO_BENCH_SEED")) {
    options.seed = std::stoull(seed);
  }
  return options;
}

inline scenario::Dataset build_dataset(const char* banner) {
  const scenario::ScenarioOptions options = options_from_env();
  std::cout << "### " << banner << "\n"
            << "(seed " << options.seed << ", scale " << options.scale
            << "; building the SGNET-equivalent dataset...)\n\n";
  return scenario::build_paper_dataset(options);
}

}  // namespace repro::bench
