// EXP-5 — Section 4.2: healing clustering anomalies by re-executing
// the suspect samples (paper: re-execution is "indeed very effective in
// eliminating these anomalies"; static clustering pinpoints the small
// suspect set so re-running everything is unnecessary).
#include <iostream>

#include "analysis/anomaly.hpp"
#include "analysis/healing.hpp"
#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  scenario::Dataset ds =
      bench::build_dataset("EXP-5: healing anomalies by re-execution");
  const auto anomalies =
      analysis::detect_singleton_anomalies(ds.db, ds.e, ds.p, ds.m, ds.b);
  std::cout << "suspect (anomalous singleton) samples: "
            << anomalies.anomalous_samples.size() << " of "
            << ds.db.analyzable_sample_count() << " analyzable samples ("
            << anomalies.anomalous_samples.size() * 100 /
                   std::max<std::size_t>(1, ds.db.analyzable_sample_count())
            << "% -- re-running everything would be ~"
            << ds.db.analyzable_sample_count() /
                   std::max<std::size_t>(1, anomalies.anomalous_samples.size())
            << "x more sandbox time)\n\n";

  const auto outcome = analysis::heal_by_reexecution(
      ds.db, ds.landscape, ds.environment, anomalies.anomalous_samples, ds.b,
      /*reruns=*/3);
  std::cout << report::healing(outcome.report);

  const auto after = analysis::detect_singleton_anomalies(
      ds.db, ds.e, ds.p, ds.m, outcome.after);
  std::cout << "anomalous singletons remaining after healing: "
            << after.anomalies << " (was " << anomalies.anomalies << ")\n";
  bench::print_degradation(ds);
  return 0;
}
