// ABL-8 — deterministic parallel processing pipeline. The deployment
// stage is inherently sequential (one shared RNG stream consumed in
// chronological order), so this harness runs it exactly once and then
// replays the paper's Section-3 processing pipeline — enrichment plus
// the four clusterings (E, P, M, B) — over copies of that pristine
// database at pool widths 1, 2, 4 and 8. Reports wall time and speedup
// per width and verifies the full CSV export is byte-identical to the
// width-1 run at every width; any divergence is a bug and fails the
// harness. The scaling gate (>= 2.5x at 4+ threads) is enforced only
// when the machine actually has 4+ hardware threads — byte-identity is
// checked unconditionally.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/bview.hpp"
#include "bench_common.hpp"
#include "cluster/epm.hpp"
#include "cluster/feature.hpp"
#include "honeypot/deployment.hpp"
#include "honeypot/enrichment.hpp"
#include "io/csv_export.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

/// The processing pipeline's outputs for one width.
struct PipelineRun {
  repro::honeypot::EventDatabase db;
  repro::cluster::EpmResult e;
  repro::cluster::EpmResult p;
  repro::cluster::EpmResult m;
  repro::analysis::BehavioralView b;
  double seconds = 0.0;
};

std::string all_csv(const PipelineRun& run) {
  std::ostringstream out;
  repro::io::write_events_csv(out, run.db, run.e, run.p, run.m, run.b);
  repro::io::write_samples_csv(out, run.db, run.b);
  repro::io::write_clusters_csv(out, run.e);
  repro::io::write_clusters_csv(out, run.p);
  repro::io::write_clusters_csv(out, run.m);
  return out.str();
}

}  // namespace

int main() {
  using namespace repro;
  using clock = std::chrono::steady_clock;

  const scenario::ScenarioOptions options = bench::options_from_env();
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "### ABL-8: processing-pipeline scaling with pool width\n"
            << "(seed " << options.seed << ", scale " << options.scale
            << ", hardware threads " << hw
            << "; one deployment, then enrichment + E/P/M/B per width)\n\n";

  // One sequential deployment; its database is the immutable input
  // every width starts from.
  const malware::Landscape landscape = scenario::make_paper_landscape(options);
  const sandbox::Environment environment =
      scenario::make_paper_environment(landscape);
  honeypot::DeploymentConfig config;
  config.seed = options.seed;
  config.download.truncation_probability = 0.14;  // paper calibration
  honeypot::Deployment deployment{landscape, config};
  const honeypot::EventDatabase pristine = deployment.run();
  std::cout << "deployment done: " << pristine.samples().size()
            << " samples, " << pristine.events().size() << " events\n\n";

  const auto run_width = [&](std::size_t width) {
    PipelineRun run;
    run.db = pristine;  // copy outside the timed region
    ThreadPool pool{width};
    const clock::time_point start = clock::now();
    (void)honeypot::enrich_database(run.db, landscape, environment,
                                    /*faults=*/nullptr, &pool);
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&] {
      run.e = cluster::epm_cluster(cluster::build_epsilon_data(run.db));
    });
    tasks.emplace_back(
        [&] { run.p = cluster::epm_cluster(cluster::build_pi_data(run.db)); });
    tasks.emplace_back(
        [&] { run.m = cluster::epm_cluster(cluster::build_mu_data(run.db)); });
    tasks.emplace_back([&] {
      cluster::BehavioralOptions behavioral;
      behavioral.threshold = options.b_threshold;
      behavioral.pool = &pool;
      run.b = analysis::BehavioralView::build(run.db, behavioral);
    });
    pool.run_tasks(tasks);
    run.seconds = std::chrono::duration<double>(clock::now() - start).count();
    return run;
  };

  const PipelineRun baseline = run_width(1);
  const std::string baseline_csv = all_csv(baseline);

  TextTable table{{"threads", "wall time", "speedup", "export"}};
  const auto row = [&](std::size_t width, const PipelineRun& run,
                       bool identical) {
    std::ostringstream secs, speedup;
    secs.precision(3);
    secs << std::fixed << run.seconds << " s";
    speedup.precision(2);
    speedup << std::fixed << baseline.seconds / run.seconds << "x";
    table.add_row({std::to_string(width), secs.str(), speedup.str(),
                   identical ? "identical" : "DIVERGED"});
  };
  row(1, baseline, true);

  bool all_identical = true;
  double best_wide_speedup = 0.0;
  for (const std::size_t width : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    const PipelineRun run = run_width(width);
    const bool identical = all_csv(run) == baseline_csv;
    all_identical = all_identical && identical;
    if (width >= 4) {
      best_wide_speedup =
          std::max(best_wide_speedup, baseline.seconds / run.seconds);
    }
    row(width, run, identical);
  }
  std::cout << table.render() << "\n";

  std::cout << (all_identical
                    ? "exports byte-identical at every width: yes\n"
                    : "exports byte-identical at every width: NO (BUG)\n");
  if (!all_identical) return 1;

  // The scaling gate needs actual cores to mean anything; a 1-CPU box
  // still proves determinism above but cannot prove speedup.
  if (hw >= 4) {
    std::cout << "best speedup at 4+ threads: " << best_wide_speedup
              << "x (gate: >= 2.5x)\n";
    if (best_wide_speedup < 2.5) return 1;
  } else {
    std::cout << "scaling gate skipped: " << hw
              << " hardware thread(s) < 4\n";
  }
  return 0;
}
