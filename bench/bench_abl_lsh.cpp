// ABL-2 — scalability of behavioral clustering: exact O(n^2)
// single-linkage versus the LSH-accelerated variant of Bayer et al.
// (NDSS'09). Both must produce identical clusters; LSH evaluates far
// fewer candidate pairs, which is what made Anubis clustering scale.
//
// Runs as a google-benchmark binary and prints a quality/equivalence
// summary before the timing section.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/behavioral.hpp"
#include "sandbox/profile.hpp"
#include "util/rng.hpp"

namespace {

using repro::Rng;
using repro::cluster::BehavioralOptions;
using repro::sandbox::BehavioralProfile;

/// Synthetic corpus shaped like the paper's: a few large behavior
/// families plus noisy singletons.
std::vector<BehavioralProfile> make_corpus(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<BehavioralProfile> profiles;
  profiles.reserve(n);
  const std::size_t families = 12;
  for (std::size_t i = 0; i < n; ++i) {
    BehavioralProfile profile;
    const std::size_t family = rng.index(families);
    for (int f = 0; f < 12; ++f) {
      profile.add("fam" + std::to_string(family) + "|" + std::to_string(f));
    }
    if (rng.chance(0.15)) {  // noisy execution -> singleton
      for (int f = 0; f < 8; ++f) {
        profile.add("noise|" + rng.alnum(10));
      }
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::vector<const BehavioralProfile*> pointers(
    const std::vector<BehavioralProfile>& profiles) {
  std::vector<const BehavioralProfile*> out;
  out.reserve(profiles.size());
  for (const auto& p : profiles) out.push_back(&p);
  return out;
}

void BM_ExactClustering(benchmark::State& state) {
  const auto corpus = make_corpus(static_cast<std::size_t>(state.range(0)), 1);
  const auto ptrs = pointers(corpus);
  BehavioralOptions options;
  options.backend = repro::cluster::BackendKind::kExact;
  for (auto _ : state) {
    benchmark::DoNotOptimize(repro::cluster::cluster_profiles(ptrs, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactClustering)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Complexity(benchmark::oNSquared)->Unit(benchmark::kMillisecond);

void BM_LshClustering(benchmark::State& state) {
  const auto corpus = make_corpus(static_cast<std::size_t>(state.range(0)), 1);
  const auto ptrs = pointers(corpus);
  BehavioralOptions options;
  options.backend = repro::cluster::BackendKind::kLsh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(repro::cluster::cluster_profiles(ptrs, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LshClustering)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Arg(5000)->Complexity()->Unit(benchmark::kMillisecond);

/// Equivalence + pruning summary printed before the timings.
void print_summary() {
  std::printf("### ABL-2: exact vs LSH behavioral clustering\n");
  for (const std::size_t n : {500u, 2000u}) {
    const auto corpus = make_corpus(n, 7);
    const auto ptrs = pointers(corpus);
    BehavioralOptions exact;
    exact.backend = repro::cluster::BackendKind::kExact;
    BehavioralOptions lsh;
    lsh.backend = repro::cluster::BackendKind::kLsh;
    const auto exact_clusters = repro::cluster::cluster_profiles(ptrs, exact);
    // One signature pass serves both the LSH clustering and its
    // candidate-pair statistics.
    const auto lsh_run = repro::cluster::cluster_profiles_with_stats(ptrs, lsh);
    const auto& lsh_clusters = lsh_run.clusters;
    const auto& stats = lsh_run.stats;
    std::printf(
        "n=%zu: exact clusters=%zu, lsh clusters=%zu, identical=%s, "
        "pairs evaluated: %zu exact vs %zu lsh (%.1fx fewer)\n",
        n, exact_clusters.cluster_count(), lsh_clusters.cluster_count(),
        exact_clusters.assignment == lsh_clusters.assignment ? "yes" : "NO",
        stats.exact_pairs, stats.lsh_candidate_pairs,
        static_cast<double>(stats.exact_pairs) /
            static_cast<double>(std::max<std::size_t>(
                1, stats.lsh_candidate_pairs)));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
