// EXP-1 — Table 1: selected features and the number of invariant
// values discovered per feature under the paper's (10, 3, 3)
// relevance constraints.
#include <iostream>

#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-1: Table 1 invariant counts");
  std::cout << report::table1(ds.e, ds.p, ds.m);
  std::cout << "\nNote: the paper reports 50 invariant FSM paths next to 39 "
               "E-clusters.\nIn this implementation every invariant "
               "(path, port) pair necessarily forms\nits own pattern, so "
               "the two counts track each other; see EXPERIMENTS.md.\n";
  bench::print_degradation(ds);
  return 0;
}
