// ABL-11 — the crash-tolerant query daemon under concurrent ingest.
//
// Runs scenario::serve_streaming_dataset (the epoch loop with the
// serving layer on top) and hammers the daemon from concurrent clients
// the whole time the stream is ingesting: per-request latency is
// measured client-side while the pipeline re-clusters underneath, then
// every reply of the full query script is byte-compared against a view
// built from the one-shot batch pipeline. A final overload phase parks
// every worker with the `slow` debug verb and floods the admission
// queue, forcing the daemon through its typed degradation paths (ERR
// TIMEOUT deadline overruns, ERR BUSY admission sheds). Writes
// BENCH_SERVE.json and, with
//
//   $ bench_serve --check ../EXPERIMENTS.md
//
// gates (exit 1 on violation):
//   * byte_mismatches == 0 — the kill-anywhere serving guarantee,
//   * `serve.*` deterministic counters match the ABL-11 table exactly
//     (serve.epoch_swaps is a pure function of the epoch split),
//   * timeouts >= 1 and busy_sheds >= 1 — the overload paths really
//     ran,
//   * p99 <= the request deadline — a tolerance band, not a perf gate:
//     any completed reply slower than the deadline would have been a
//     typed TIMEOUT instead.
//
//   REPRO_BENCH_SCALE=0.25 ./bench_serve [--check <EXPERIMENTS.md>]
//                                        [--out <file.json>]
//
// repro-lint: allow-file(RL008) the port/final_epoch_live handshakes
// are textbook release/acquire pairs (writer publishes, reader spins),
// and the remaining relaxed cells are per-client statistics read only
// after every client thread has joined.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "scenario/serve.hpp"
#include "scenario/stream.hpp"
#include "serve/protocol.hpp"
#include "serve/view.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace {

using clock_type = std::chrono::steady_clock;
using repro::obs::Channel;
using repro::obs::MetricsRegistry;

/// Minimal blocking client for the daemon's line protocol.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<const struct sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& bytes) {
    if (fd_ < 0) return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One framed response's exact wire bytes; empty = connection closed.
  std::string read_response() {
    std::string head = read_line();
    if (head.empty()) return {};
    std::string out = head;
    if (head.rfind("OK ", 0) == 0) {
      std::string_view count_text{head};
      count_text.remove_prefix(3);
      if (!count_text.empty() && count_text.back() == '\n') {
        count_text.remove_suffix(1);
      }
      const std::size_t count = static_cast<std::size_t>(
          repro::parse_u64(count_text, "bench response line count"));
      for (std::size_t i = 0; i < count; ++i) {
        const std::string line = read_line();
        if (line.empty()) return {};
        out += line;
      }
    }
    return out;
  }

  std::string ask(const std::string& request) {
    if (!send_raw(request + "\n")) return {};
    return read_response();
  }

 private:
  std::string read_line() {
    std::size_t eol;
    while ((eol = buffer_.find('\n')) == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer_.substr(0, eol + 1);
    buffer_.erase(0, eol + 1);
    return line;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// The query script the byte-identity gate is stated over.
std::vector<std::string> make_script(const repro::scenario::Dataset& ds) {
  std::string md5 = ds.db.samples().front().md5;
  int b_cluster = 0;
  for (const auto& sample : ds.db.samples()) {
    const int c = ds.b.cluster_of_sample(sample.id);
    if (c >= 0) {
      md5 = sample.md5;
      b_cluster = c;
      break;
    }
  }
  return {
      "health",
      "stats",
      "ccmap",
      "lookup " + md5,
      "lookup ffffffffffffffffffffffffffffffff",
      "cluster " + std::to_string(b_cluster),
      "cluster 999999",
  };
}

double percentile_ms(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

/// Only the deterministic serving counters are gated by the table.
bool gated(const std::string& name) { return name.rfind("serve.", 0) == 0; }

/// The `| `name` | value |` rows of the ABL-11 section of EXPERIMENTS.md.
std::map<std::string, std::uint64_t> read_abl11_table(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw repro::IoError("bench_serve: cannot open " + path);
  }
  std::map<std::string, std::uint64_t> table;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("ABL-11") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    const std::size_t tick_open = line.find('`');
    if (tick_open == std::string::npos) continue;
    const std::size_t tick_close = line.find('`', tick_open + 1);
    if (tick_close == std::string::npos) continue;
    const std::string name =
        line.substr(tick_open + 1, tick_close - tick_open - 1);
    const std::size_t bar = line.find('|', tick_close);
    if (bar == std::string::npos) continue;
    std::size_t begin = bar + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (end == begin) continue;
    table[name] = repro::parse_u64(line.substr(begin, end - begin),
                                   "ABL-11 counter " + name);
  }
  return table;
}

bool counters_match_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::map<std::string, std::uint64_t>& table) {
  bool ok = true;
  std::map<std::string, std::uint64_t> measured;
  for (const auto& [name, value] : counters) {
    if (gated(name)) measured[name] = value;
  }
  for (const auto& [name, value] : measured) {
    const auto it = table.find(name);
    if (it == table.end()) {
      std::cerr << "ABL-11 gate: counter '" << name << "' (= " << value
                << ") is missing from the table\n";
      ok = false;
    } else if (it->second != value) {
      std::cerr << "ABL-11 gate: counter '" << name << "' measured " << value
                << " but the table says " << it->second << "\n";
      ok = false;
    }
  }
  for (const auto& [name, value] : table) {
    if (measured.count(name) == 0) {
      std::cerr << "ABL-11 gate: table row '" << name
                << "' was not produced by this run\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  namespace fs = std::filesystem;

  std::string check_path;
  std::string out_path = "BENCH_SERVE.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_serve [--check <EXPERIMENTS.md>] "
                   "[--out <file.json>]\n";
      return 2;
    }
  }

  try {
    scenario::ScenarioOptions options = bench::options_from_env();
    constexpr std::size_t kEpochs = 4;
    constexpr std::int64_t kDeadlineMs = 1000;
    constexpr std::size_t kClients = 4;
    std::cout << "### ABL-11: query service under concurrent ingest\n"
              << "(seed " << options.seed << ", scale " << options.scale
              << (options.faults.empty() ? "" : ", fault injection ON")
              << "; batch reference build, then the serving epoch loop...)\n\n";

    // The reference every live reply is compared to: a view built from
    // the one-shot batch pipeline, stamped with the final epoch count.
    const scenario::Dataset batch = scenario::build_paper_dataset(options);
    const serve::ServeView reference = serve::ServeView::build(
        batch.db, batch.e, batch.p, batch.m, batch.b, kEpochs);
    const std::vector<std::string> script = make_script(batch);
    std::vector<std::string> expected;
    expected.reserve(script.size());
    for (const std::string& request : script) {
      expected.push_back(
          serve::render(reference.answer(serve::parse_request(request))));
    }

    const fs::path root = fs::temp_directory_path() / "repro-bench-serve";
    fs::remove_all(root);
    options.checkpoint.directory = (root / "ckpt").string();
    MetricsRegistry metrics;
    options.metrics = &metrics;
    scenario::StreamOptions stream;
    stream.epochs = kEpochs;
    stream.wal_dir = (root / "wal").string();

    std::atomic<bool> stop{false};
    std::atomic<std::uint16_t> port{0};
    scenario::ServeRunOptions run;
    run.server.workers = 2;
    run.server.admission_capacity = 4;
    run.server.request_deadline_ms = kDeadlineMs;
    run.server.enable_debug_commands = true;  // the overload phase's seam
    run.on_ready = [&](std::uint16_t p) {
      port.store(p, std::memory_order_release);
    };
    run.stop = &stop;
    run.poll_ms = 10;

    scenario::ServeOutcome outcome;
    std::thread daemon{[&] {
      outcome = scenario::serve_streaming_dataset(options, stream, run);
    }};

    // --- Phase 1: latency under concurrent ingest ------------------------
    // Clients hammer the daemon from the moment the first epoch lands
    // until the final epoch's view is live; the pipeline is enriching
    // and re-clustering underneath the whole time.
    while (port.load(std::memory_order_acquire) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const std::uint16_t p = port.load(std::memory_order_acquire);
    const std::string final_health =
        "OK 1\nserving epoch=" + std::to_string(kEpochs) + " ";
    std::atomic<bool> final_epoch_live{false};
    std::mutex latency_mutex;
    std::vector<double> latencies_ms;
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> local;
        while (!final_epoch_live.load(std::memory_order_acquire)) {
          Client client{p};
          if (!client.connected()) continue;
          for (std::size_t i = 0; i < script.size(); ++i) {
            const std::string& request = script[(i + c) % script.size()];
            const clock_type::time_point start = clock_type::now();
            const std::string reply = client.ask(request);
            if (reply.empty()) break;  // shed or drained — reconnect
            local.push_back(
                std::chrono::duration<double, std::milli>(clock_type::now() -
                                                          start)
                    .count());
            if (request == "health" &&
                reply.rfind(final_health, 0) == 0) {
              final_epoch_live.store(true, std::memory_order_release);
            }
          }
        }
        const std::lock_guard lock{latency_mutex};
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : clients) t.join();

    // --- Phase 2: the byte-identity gate ---------------------------------
    // With the final epoch live, every reply of the script must match
    // the batch-built reference render exactly.
    std::size_t byte_mismatches = 0;
    {
      Client session{p};
      for (std::size_t i = 0; i < script.size(); ++i) {
        if (session.ask(script[i]) != expected[i]) ++byte_mismatches;
      }
    }

    // --- Phase 3: forced overload ----------------------------------------
    // Park every worker past the deadline, then flood the admission
    // queue: the daemon must degrade through its typed paths.
    {
      std::vector<std::unique_ptr<Client>> parked;
      for (std::size_t i = 0; i < run.server.workers; ++i) {
        parked.push_back(std::make_unique<Client>(p));
        (void)parked.back()->send_raw(
            "slow " + std::to_string(kDeadlineMs + 500) + "\n");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::vector<std::unique_ptr<Client>> flood;
      for (std::size_t i = 0; i < run.server.admission_capacity + 3; ++i) {
        flood.push_back(std::make_unique<Client>(p));
        (void)flood.back()->send_raw("health\n");
      }
      // Read-then-hang-up, one connection at a time: a served
      // connection camps its worker until the client closes, so each
      // close is what frees a worker to pop the next queued one.
      for (auto& client : parked) {
        (void)client->read_response();
        client.reset();
      }
      for (auto& client : flood) {
        (void)client->read_response();
        client.reset();
      }
    }

    stop.store(true, std::memory_order_relaxed);
    daemon.join();

    // --- Report ----------------------------------------------------------
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double p50 = percentile_ms(latencies_ms, 0.50);
    const double p99 = percentile_ms(latencies_ms, 0.99);
    const serve::ServeReport& serve_report = outcome.serve;

    TextTable latency{{"measure", "value"}};
    std::ostringstream p50_text, p99_text;
    p50_text.precision(3);
    p50_text << std::fixed << p50 << " ms";
    p99_text.precision(3);
    p99_text << std::fixed << p99 << " ms";
    latency.add_row({"requests measured (during ingest)",
                     std::to_string(latencies_ms.size())});
    latency.add_row({"latency p50", p50_text.str()});
    latency.add_row({"latency p99", p99_text.str()});
    std::cout << latency.render() << "\n";

    TextTable counters_table{{"serve counter", "value"}};
    counters_table.add_row(
        {"epoch swaps", std::to_string(serve_report.epoch_swaps)});
    counters_table.add_row(
        {"connections accepted", std::to_string(serve_report.accepted)});
    counters_table.add_row(
        {"requests", std::to_string(serve_report.requests)});
    counters_table.add_row(
        {"replies OK", std::to_string(serve_report.replies_ok)});
    counters_table.add_row(
        {"replies ERR", std::to_string(serve_report.replies_err)});
    counters_table.add_row(
        {"BUSY sheds", std::to_string(serve_report.busy_sheds)});
    counters_table.add_row(
        {"typed timeouts", std::to_string(serve_report.timeouts)});
    counters_table.add_row(
        {"client disconnects", std::to_string(serve_report.disconnects)});
    std::cout << counters_table.render() << "\n";

    std::cout << (byte_mismatches == 0
                      ? "live replies byte-identical to the batch-built "
                        "view: yes\n"
                      : "live replies byte-identical to the batch-built "
                        "view: NO (BUG)\n");
    bench::print_degradation(outcome.dataset);

    const auto counters = metrics.counter_values(Channel::kDeterministic);
    std::ostringstream json;
    json.precision(3);
    json << std::fixed << "{\n  \"bench\": \"serve\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"scale\": " << options.scale << ",\n"
         << "  \"epochs\": " << kEpochs << ",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"deadline_ms\": " << kDeadlineMs << ",\n"
         << "  \"requests_measured\": " << latencies_ms.size() << ",\n"
         << "  \"latency_p50_ms\": " << p50 << ",\n"
         << "  \"latency_p99_ms\": " << p99 << ",\n"
         << "  \"byte_mismatches\": " << byte_mismatches << ",\n"
         << "  \"replies_ok\": " << serve_report.replies_ok << ",\n"
         << "  \"replies_err\": " << serve_report.replies_err << ",\n"
         << "  \"busy_sheds\": " << serve_report.busy_sheds << ",\n"
         << "  \"timeouts\": " << serve_report.timeouts << ",\n"
         << "  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!gated(name)) continue;
      json << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
      first = false;
    }
    json << "\n  }\n}\n";
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      throw IoError("bench_serve: cannot open " + out_path + " for writing");
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";

    fs::remove_all(root);
    if (byte_mismatches != 0) return 1;
    if (!check_path.empty()) {
      bool ok = counters_match_table(counters, read_abl11_table(check_path));
      if (serve_report.timeouts == 0) {
        std::cerr << "ABL-11 gate: the overload phase produced no typed "
                     "TIMEOUT\n";
        ok = false;
      }
      if (serve_report.busy_sheds == 0) {
        std::cerr << "ABL-11 gate: the overload phase produced no BUSY "
                     "shed\n";
        ok = false;
      }
      if (p99 > static_cast<double>(kDeadlineMs)) {
        // The tolerance band: completed replies slower than the deadline
        // would have been typed TIMEOUTs, so this only trips when the
        // deadline machinery itself broke.
        std::cerr << "ABL-11 gate: measured p99 " << p99
                  << " ms exceeds the request deadline\n";
        ok = false;
      }
      if (!ok) {
        std::cerr << "bench_serve: serving gate failed — if a deterministic "
                     "counter drifted, update the ABL-11 table in "
                     "EXPERIMENTS.md alongside the change\n";
        return 1;
      }
      std::cout << "ABL-11 gate: deterministic counters, byte identity, "
                   "overload paths and the latency band all hold\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
