// ABL-1 — sensitivity of EPM clustering to the invariant-discovery
// relevance constraints. The paper fixes (10 instances, 3 attackers,
// 3 honeypots); this ablation sweeps the grid and shows why: loose
// thresholds promote attacker-specific values (polymorphic MD5s,
// random filenames) into invariants and shatter clusters, tight ones
// merge genuinely distinct variants.
#include <iostream>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("ABL-1: invariant threshold sensitivity");

  const auto mu_data = cluster::build_mu_data(ds.db);
  // Ground truth per row, for quality metrics.
  std::vector<int> truth;
  for (const auto event_id : mu_data.event_ids) {
    truth.push_back(static_cast<int>(
        ds.db.events()[event_id].truth_variant));
  }

  TextTable table{{"min instances", "min sources", "min dests", "M-clusters",
                   "precision", "recall", "F-measure"}};
  const std::size_t instance_grid[] = {1, 3, 10, 30, 100};
  const std::size_t spread_grid[] = {1, 3, 10};
  for (const std::size_t instances : instance_grid) {
    for (const std::size_t spread : spread_grid) {
      cluster::InvariantThresholds thresholds;
      thresholds.min_instances = instances;
      thresholds.min_sources = spread;
      thresholds.min_destinations = spread;
      const auto result = cluster::epm_cluster(mu_data, thresholds);
      const auto metrics =
          cluster::evaluate_clustering(result.assignment, truth);
      table.add_row({std::to_string(instances), std::to_string(spread),
                     std::to_string(spread),
                     std::to_string(result.cluster_count()),
                     fixed(metrics.precision, 3), fixed(metrics.recall, 3),
                     fixed(metrics.f_measure, 3)});
    }
  }
  std::cout << table.render()
            << "\n(the paper's (10,3,3) row should sit near the F-measure "
               "optimum: lowering\nmin_instances to 1 makes polymorphic "
               "MD5s invariant and recall collapses;\nvery high thresholds "
               "wipe out the invariants and precision collapses)\n";
  bench::print_degradation(ds);
  return 0;
}
