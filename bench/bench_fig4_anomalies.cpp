// EXP-3 — Figure 4 and Section 4.2: size-1 B-cluster anomaly
// detection (paper: 860 of 972 B-clusters are singletons, mostly
// Rahack/Allaple variants pushed via one P-pattern on tcp/9988).
#include <iostream>

#include "analysis/anomaly.hpp"
#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-3: Figure 4 singleton B-cluster anomaly");
  const auto report =
      analysis::detect_singleton_anomalies(ds.db, ds.e, ds.p, ds.m, ds.b);
  std::cout << report::figure4(report);

  // The dominant (E, P) coordinate corresponds to the PUSH/tcp-9988
  // payload pattern; print its pi pattern for verification.
  if (!report.ep_coordinates.empty()) {
    std::size_t best = 0;
    int p_cluster = -1;
    for (const auto& [ep, count] : report.ep_coordinates) {
      if (count > best) {
        best = count;
        p_cluster = ep.second;
      }
    }
    if (p_cluster >= 0) {
      std::cout << "\n-- dominant P-pattern (paper: PUSH-based download on "
                   "TCP port 9988) --\n"
                << ds.p.patterns[static_cast<std::size_t>(p_cluster)].describe(
                       ds.p.schema)
                << "\n";
    }
  }
  bench::print_degradation(ds);
  return 0;
}
