// EXT-2 — temporal evolution of the landscape: variant birth rate over
// the 74-week window, M-cluster lifetimes, and the patch chains of the
// largest codebases (the observable release history the paper's
// Allaple discussion describes: modifications and improvements whose
// carriers coexist in the wild because the worm cannot self-update).
#include <iostream>

#include "analysis/evolution.hpp"
#include "bench_common.hpp"
#include "util/histogram.hpp"
#include "util/strings.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXT-2: temporal evolution of the landscape");
  const auto report = analysis::analyze_evolution(
      ds.db, ds.m, ds.b, ds.landscape.start_time, ds.landscape.weeks);

  std::cout << "M-clusters tracked: " << report.lifetimes.size() << "\n";
  std::vector<double> births;
  births.reserve(report.births_per_week.size());
  std::size_t total_births = 0;
  for (const std::size_t count : report.births_per_week) {
    births.push_back(static_cast<double>(count));
    total_births += count;
  }
  std::cout << "new static variants per week (" << total_births
            << " total):\n  " << sparkline(births) << "\n";
  const auto bursts = report.burst_weeks(8);
  std::cout << "variant-burst weeks (8+ new M-clusters): " << bursts.size()
            << "\n\n";

  std::cout << "-- longest patch chains (one codebase, releases in "
               "first-seen order) --\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, report.chains.size());
       ++i) {
    const auto& chain = report.chains[i];
    std::cout << "B" << chain.b_cluster << ": " << chain.releases.size()
              << " releases";
    const auto gaps = chain.release_gaps_weeks(ds.landscape.start_time);
    double mean_gap = 0.0;
    for (const auto gap : gaps) mean_gap += static_cast<double>(gap);
    if (!gaps.empty()) mean_gap /= static_cast<double>(gaps.size());
    std::cout << ", mean release gap " << fixed(mean_gap, 1) << " weeks\n";
    for (std::size_t r = 0; r < std::min<std::size_t>(6, chain.releases.size());
         ++r) {
      const auto& release = chain.releases[r];
      std::cout << "   M" << release.m_cluster << " first seen "
                << format_date(release.first_seen) << ", active "
                << release.lifetime_weeks(ds.landscape.start_time)
                << " weeks, " << release.event_count << " events\n";
    }
    if (chain.releases.size() > 6) {
      std::cout << "   ... and " << chain.releases.size() - 6 << " more\n";
    }
  }
  std::cout << "\n(paper's reading: the variants of one B-cluster are "
               "patches/recompilations of one\ncodebase; lacking "
               "self-update, old and new releases coexist -- visible here "
               "as\noverlapping lifetimes within a chain)\n";
  bench::print_degradation(ds);
  return 0;
}
