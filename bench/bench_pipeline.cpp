// End-to-end pipeline bench with machine-readable output.
//
// Runs build_paper_dataset with the observability layer attached and
// writes BENCH_PIPELINE.json: per-stage wall milliseconds (from the
// trace spans), peak RSS, and every deterministic work counter. The
// wall times and RSS are machine artifacts; the counters are pure
// functions of (seed, scale, faults) and double as a drift gate:
//
//   $ bench_pipeline --check ../EXPERIMENTS.md
//
// compares the counters against the ABL-9 table and fails (exit 1)
// when they differ — so a change to the pipeline's deterministic work
// must come with a committed update to EXPERIMENTS.md.
//
//   REPRO_BENCH_SCALE=0.25 ./bench_pipeline [--check <EXPERIMENTS.md>]
//                                           [--out <file.json>]
#include <cctype>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using repro::obs::Channel;
using repro::obs::MetricsRegistry;
using repro::obs::TraceRecorder;

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

std::string fixed_ms(std::int64_t ns) {
  // ns -> "12.345" without floating-point formatting.
  std::ostringstream out;
  out << ns / 1'000'000 << "." << std::setw(3) << std::setfill('0')
      << (ns / 1'000) % 1'000;
  return out.str();
}

/// The `| `name` | value |` rows of the ABL-9 section of EXPERIMENTS.md.
std::map<std::string, std::uint64_t> read_abl9_table(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw repro::IoError("bench_pipeline: cannot open " + path);
  }
  std::map<std::string, std::uint64_t> table;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("ABL-9") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    const std::size_t tick_open = line.find('`');
    if (tick_open == std::string::npos) continue;
    const std::size_t tick_close = line.find('`', tick_open + 1);
    if (tick_close == std::string::npos) continue;
    const std::string name =
        line.substr(tick_open + 1, tick_close - tick_open - 1);
    const std::size_t bar = line.find('|', tick_close);
    if (bar == std::string::npos) continue;
    std::size_t begin = bar + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < line.size() && std::isdigit(
               static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (end == begin) continue;
    table[name] = repro::parse_u64(line.substr(begin, end - begin),
                                   "ABL-9 counter " + name);
  }
  return table;
}

/// Strict two-way comparison; prints every discrepancy.
bool counters_match_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::map<std::string, std::uint64_t>& table) {
  bool ok = true;
  std::map<std::string, std::uint64_t> measured;
  for (const auto& [name, value] : counters) measured[name] = value;
  for (const auto& [name, value] : measured) {
    const auto it = table.find(name);
    if (it == table.end()) {
      std::cerr << "ABL-9 gate: counter '" << name << "' (= " << value
                << ") is missing from the table\n";
      ok = false;
    } else if (it->second != value) {
      std::cerr << "ABL-9 gate: counter '" << name << "' measured " << value
                << " but the table says " << it->second << "\n";
      ok = false;
    }
  }
  for (const auto& [name, value] : table) {
    if (measured.count(name) == 0) {
      std::cerr << "ABL-9 gate: table row '" << name
                << "' was not produced by this run\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  std::string check_path;
  std::string out_path = "BENCH_PIPELINE.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_pipeline [--check <EXPERIMENTS.md>] "
                   "[--out <file.json>]\n";
      return 2;
    }
  }

  try {
    const scenario::ScenarioOptions base = bench::options_from_env();
    scenario::ScenarioOptions options = base;
    MetricsRegistry metrics;
    TraceRecorder trace;
    options.metrics = &metrics;
    options.trace = &trace;

    std::cout << "### pipeline bench (seed " << options.seed << ", scale "
              << options.scale
              << (options.faults.empty() ? "" : ", fault injection ON")
              << ")\n";
    const scenario::Dataset dataset = scenario::build_paper_dataset(options);

    std::ostringstream json;
    json << "{\n  \"bench\": \"pipeline\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"scale\": " << options.scale << ",\n"
         << "  \"peak_rss_kib\": " << peak_rss_kib() << ",\n"
         << "  \"stages\": [";
    bool first = true;
    for (const TraceRecorder::Span& span : trace.spans()) {
      json << (first ? "\n" : ",\n") << "    {\"name\": \"" << span.name
           << "\", \"wall_ms\": " << fixed_ms(span.duration_ns()) << "}";
      first = false;
    }
    json << "\n  ],\n  \"counters\": {";
    const auto counters = metrics.counter_values(Channel::kDeterministic);
    first = true;
    for (const auto& [name, value] : counters) {
      json << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << value;
      first = false;
    }
    json << "\n  }\n}\n";

    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      throw IoError("bench_pipeline: cannot open " + out_path +
                    " for writing");
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";
    for (const TraceRecorder::Span& span : trace.spans()) {
      std::cout << "  " << span.name << ": " << fixed_ms(span.duration_ns())
                << " ms\n";
    }
    std::cout << "  peak RSS: " << peak_rss_kib() << " KiB\n";
    bench::print_degradation(dataset);

    if (!check_path.empty()) {
      const auto table = read_abl9_table(check_path);
      if (!counters_match_table(counters, table)) {
        std::cerr << "bench_pipeline: deterministic work counters drifted — "
                     "update the ABL-9 table in EXPERIMENTS.md alongside the "
                     "change\n";
        return 1;
      }
      std::cout << "ABL-9 gate: " << counters.size()
                << " counters match EXPERIMENTS.md\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
