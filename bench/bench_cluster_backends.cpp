// ABL-12 — unified quality/cost comparison of the B-clustering
// backends. Every registered backend (lsh, exact, kmeans) partitions
// the same two landscapes:
//
//   * "paper"   — the analyzable samples of the SGNET-equivalent
//                 dataset, scored against ground-truth families;
//   * "planted" — a synthetic corpus with planted behavior families
//                 plus noisy singletons (the ABL-2 shape), scored
//                 against the planted labels.
//
// and one comparable table comes out: quality (precision / recall /
// F-measure / pairwise F1 vs truth, cluster consistency, family
// coherence) and cost (wall ms, peak RSS, deterministic work
// counters). The run also asserts the determinism contract — every
// backend must produce byte-identical assignments at pool widths
// 1, 2 and 8 — and writes BENCH_CLUSTER_BACKENDS.json.
//
//   $ bench_cluster_backends --check ../EXPERIMENTS.md
//
// compares the pinned integer rows against the ABL-12 table and pins
// the LSH-vs-exact agreement (pairwise F1 of one assignment scored
// against the other) above kAgreementFloor; exit 1 on any drift — so
// a change to backend behavior must come with a committed update to
// EXPERIMENTS.md.
//
//   REPRO_BENCH_SCALE=0.25 ./bench_cluster_backends
//       [--check <EXPERIMENTS.md>] [--out <file.json>]
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "cluster/backend.hpp"
#include "cluster/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using repro::Rng;
using repro::ThreadPool;
using repro::cluster::BackendKind;
using repro::cluster::BehavioralClusters;
using repro::cluster::BehavioralOptions;
using repro::obs::Channel;
using repro::obs::MetricsRegistry;
using repro::obs::TraceRecorder;
using repro::sandbox::BehavioralProfile;

/// LSH must reproduce the exact single-linkage partition up to rare
/// missed bucket collisions; the agreement gate pins the pairwise F1
/// of one assignment scored against the other above this floor.
constexpr double kAgreementFloor = 0.95;

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

std::string fixed_ms(std::int64_t ns) {
  // ns -> "12.345" without floating-point formatting.
  std::ostringstream out;
  out << ns / 1'000'000 << "." << std::setw(3) << std::setfill('0')
      << (ns / 1'000) % 1'000;
  return out.str();
}

/// One clustering input: profiles (owned), stable pointer list, and
/// the reference class of every profile.
struct LandscapeCase {
  std::string name;
  std::vector<BehavioralProfile> storage;  // empty for the paper case
  std::vector<const BehavioralProfile*> profiles;
  std::vector<int> truth;
};

/// Synthetic planted-family corpus — the ABL-2 shape: a few large
/// behavior families plus noisy executions whose extra features push
/// them below the similarity threshold. Noisy items get a unique
/// reference class of their own (they are "unknown", not family
/// members), so truth-side recall is not charged for them.
LandscapeCase make_planted_case(std::size_t n, std::uint64_t seed) {
  LandscapeCase out;
  out.name = "planted";
  Rng rng{seed};
  out.storage.reserve(n);
  const std::size_t families = 12;
  int next_noise_class = static_cast<int>(families);
  for (std::size_t i = 0; i < n; ++i) {
    BehavioralProfile profile;
    const std::size_t family = rng.index(families);
    for (int f = 0; f < 12; ++f) {
      profile.add("fam" + std::to_string(family) + "|" + std::to_string(f));
    }
    if (rng.chance(0.15)) {  // noisy execution -> singleton
      for (int f = 0; f < 8; ++f) {
        profile.add("noise|" + rng.alnum(10));
      }
      out.truth.push_back(next_noise_class++);
    } else {
      out.truth.push_back(static_cast<int>(family));
    }
    out.storage.push_back(std::move(profile));
  }
  out.profiles.reserve(out.storage.size());
  for (const auto& p : out.storage) out.profiles.push_back(&p);
  return out;
}

/// The analyzable samples of the built dataset, in BehavioralView row
/// order, with ground-truth *families* as the reference classes.
LandscapeCase make_paper_case(const repro::scenario::Dataset& ds) {
  LandscapeCase out;
  out.name = "paper";
  for (const auto& sample : ds.db.samples()) {
    if (!sample.profile.has_value()) continue;
    out.profiles.push_back(&*sample.profile);
    out.truth.push_back(static_cast<int>(
        ds.landscape.variant(sample.truth_variant).family));
  }
  return out;
}

/// Multi-member clusters whose members all share one reference class.
std::size_t consistent_clusters(const BehavioralClusters& clusters,
                                const std::vector<int>& truth) {
  std::size_t consistent = 0;
  for (const auto& members : clusters.members) {
    if (members.size() < 2) continue;
    bool pure = true;
    for (const std::size_t row : members) {
      if (truth[row] != truth[members.front()]) {
        pure = false;
        break;
      }
    }
    if (pure) ++consistent;
  }
  return consistent;
}

/// Multi-member reference classes kept together in a single cluster.
std::size_t unfragmented_families(const std::vector<int>& assignment,
                                  const std::vector<int>& truth) {
  struct FamilyState {
    std::size_t size = 0;
    int cluster = -1;
    bool intact = true;
  };
  std::map<int, FamilyState> families;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    FamilyState& state = families[truth[i]];
    if (state.size == 0) {
      state.cluster = assignment[i];
    } else if (state.cluster != assignment[i]) {
      state.intact = false;
    }
    ++state.size;
  }
  std::size_t unfragmented = 0;
  for (const auto& [family, state] : families) {
    if (state.size >= 2 && state.intact) ++unfragmented;
  }
  return unfragmented;
}

/// Pairwise F1 with non-finite results (degenerate partitions) pinned
/// to zero so the integer table row is always defined.
std::uint64_t f1_milli(double pairwise_f1) {
  if (!std::isfinite(pairwise_f1)) return 0;
  return static_cast<std::uint64_t>(pairwise_f1 * 1000.0 + 0.5);
}

/// One backend x landscape measurement.
struct BackendResult {
  std::string landscape;
  std::string backend;
  std::size_t items = 0;
  BehavioralClusters clusters;
  repro::cluster::QualityMetrics quality;
  std::size_t consistent = 0;
  std::size_t unfragmented = 0;
  std::int64_t wall_ns = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

BackendResult run_backend(const LandscapeCase& input, BackendKind kind,
                          TraceRecorder& trace) {
  BackendResult result;
  result.landscape = input.name;
  result.backend = std::string{repro::cluster::backend_name(kind)};
  result.items = input.profiles.size();

  MetricsRegistry metrics;
  BehavioralOptions options;
  options.backend = kind;
  options.metrics = &metrics;
  {
    const TraceRecorder::Scoped span{
        &trace, result.landscape + "." + result.backend};
    result.clusters = repro::cluster::cluster_profiles(input.profiles,
                                                       options);
  }

  // Determinism contract: byte-identical assignments at widths 2 and 8.
  for (const std::size_t width : {2u, 8u}) {
    ThreadPool pool{width};
    BehavioralOptions wide = options;
    wide.metrics = nullptr;
    wide.pool = &pool;
    const BehavioralClusters check =
        repro::cluster::cluster_profiles(input.profiles, wide);
    if (check.assignment != result.clusters.assignment) {
      throw repro::ConfigError(
          "ABL-12: backend '" + result.backend + "' on landscape '" +
          input.name + "' is not width-invariant at pool width " +
          std::to_string(width));
    }
  }

  result.quality = repro::cluster::evaluate_clustering(
      result.clusters.assignment, input.truth);
  result.consistent = consistent_clusters(result.clusters, input.truth);
  result.unfragmented =
      unfragmented_families(result.clusters.assignment, input.truth);
  result.counters = metrics.counter_values(Channel::kDeterministic);

  const auto spans = trace.spans();
  result.wall_ns = spans.back().duration_ns();
  return result;
}

/// Pinned integer rows for the EXPERIMENTS.md gate:
///   b.<landscape>.<backend>.{clusters,singletons,consistent_clusters,
///                            unfragmented_families,f1_milli}
std::vector<std::pair<std::string, std::uint64_t>> pinned_rows(
    const std::vector<BackendResult>& results) {
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  for (const BackendResult& r : results) {
    const std::string prefix = "b." + r.landscape + "." + r.backend + ".";
    rows.emplace_back(prefix + "clusters", r.clusters.cluster_count());
    rows.emplace_back(prefix + "singletons", r.clusters.singleton_count());
    rows.emplace_back(prefix + "consistent_clusters", r.consistent);
    rows.emplace_back(prefix + "unfragmented_families", r.unfragmented);
    rows.emplace_back(prefix + "f1_milli", f1_milli(r.quality.pairwise_f1));
  }
  return rows;
}

/// The `| `name` | value |` rows of the ABL-12 section of
/// EXPERIMENTS.md (same format as the ABL-9 counter table).
std::map<std::string, std::uint64_t> read_abl12_table(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw repro::IoError("bench_cluster_backends: cannot open " + path);
  }
  std::map<std::string, std::uint64_t> table;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("ABL-12") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    const std::size_t tick_open = line.find('`');
    if (tick_open == std::string::npos) continue;
    const std::size_t tick_close = line.find('`', tick_open + 1);
    if (tick_close == std::string::npos) continue;
    const std::string name =
        line.substr(tick_open + 1, tick_close - tick_open - 1);
    const std::size_t bar = line.find('|', tick_close);
    if (bar == std::string::npos) continue;
    std::size_t begin = bar + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (end == begin) continue;
    table[name] = repro::parse_u64(line.substr(begin, end - begin),
                                   "ABL-12 row " + name);
  }
  return table;
}

/// Strict two-way comparison; prints every discrepancy.
bool rows_match_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& rows,
    const std::map<std::string, std::uint64_t>& table) {
  bool ok = true;
  std::map<std::string, std::uint64_t> measured;
  for (const auto& [name, value] : rows) measured[name] = value;
  for (const auto& [name, value] : measured) {
    const auto it = table.find(name);
    if (it == table.end()) {
      std::cerr << "ABL-12 gate: row '" << name << "' (= " << value
                << ") is missing from the table\n";
      ok = false;
    } else if (it->second != value) {
      std::cerr << "ABL-12 gate: row '" << name << "' measured " << value
                << " but the table says " << it->second << "\n";
      ok = false;
    }
  }
  for (const auto& [name, value] : table) {
    if (measured.count(name) == 0) {
      std::cerr << "ABL-12 gate: table row '" << name
                << "' was not produced by this run\n";
      ok = false;
    }
  }
  return ok;
}

/// Pairwise F1 of the LSH assignment scored against the exact one —
/// 1.0 when the partitions are identical up to relabeling.
double agreement_f1(const BackendResult& lsh, const BackendResult& exact) {
  return repro::cluster::evaluate_clustering(lsh.clusters.assignment,
                                             exact.clusters.assignment)
      .pairwise_f1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  std::string check_path;
  std::string out_path = "BENCH_CLUSTER_BACKENDS.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_cluster_backends [--check <EXPERIMENTS.md>] "
                   "[--out <file.json>]\n";
      return 2;
    }
  }

  try {
    const scenario::Dataset ds = bench::build_dataset(
        "ABL-12: B-clustering backend quality/cost comparison");
    const scenario::ScenarioOptions options = bench::options_from_env();

    std::vector<LandscapeCase> cases;
    cases.push_back(make_paper_case(ds));
    cases.push_back(make_planted_case(
        std::max<std::size_t>(64,
                              static_cast<std::size_t>(2000 * options.scale)),
        options.seed));

    TraceRecorder trace;
    std::vector<BackendResult> results;
    for (const LandscapeCase& input : cases) {
      for (const BackendKind kind : cluster::all_backends()) {
        results.push_back(run_backend(input, kind, trace));
      }
    }

    TextTable table{{"landscape", "backend", "items", "clusters",
                     "singletons", "precision", "recall", "F1 (pairs)",
                     "consistent", "unfragmented", "wall ms"}};
    for (const BackendResult& r : results) {
      table.add_row({r.landscape, r.backend, std::to_string(r.items),
                     std::to_string(r.clusters.cluster_count()),
                     std::to_string(r.clusters.singleton_count()),
                     fixed(r.quality.precision, 3),
                     fixed(r.quality.recall, 3),
                     fixed(r.quality.pairwise_f1, 3),
                     std::to_string(r.consistent),
                     std::to_string(r.unfragmented), fixed_ms(r.wall_ns)});
    }
    std::cout << table.render();

    // LSH-vs-exact agreement per landscape (1.000 = identical
    // partitions up to relabeling).
    std::map<std::string, double> agreement;
    for (const LandscapeCase& input : cases) {
      const BackendResult* lsh = nullptr;
      const BackendResult* exact = nullptr;
      for (const BackendResult& r : results) {
        if (r.landscape != input.name) continue;
        if (r.backend == "lsh") lsh = &r;
        if (r.backend == "exact") exact = &r;
      }
      agreement[input.name] = agreement_f1(*lsh, *exact);
      std::cout << "agreement(" << input.name << "): lsh vs exact pairwise F1 "
                << fixed(agreement[input.name], 4) << "\n";
    }

    std::ostringstream json;
    json << "{\n  \"bench\": \"cluster_backends\",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"scale\": " << options.scale << ",\n"
         << "  \"peak_rss_kib\": " << peak_rss_kib() << ",\n"
         << "  \"agreement_floor\": " << bench::json_quality(kAgreementFloor)
         << ",\n  \"agreement\": {";
    bool first = true;
    for (const auto& [name, value] : agreement) {
      json << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << bench::json_quality(value);
      first = false;
    }
    json << "\n  },\n  \"results\": [";
    first = true;
    for (const BackendResult& r : results) {
      json << (first ? "\n" : ",\n") << "    {\"landscape\": \""
           << r.landscape << "\", \"backend\": \"" << r.backend
           << "\", \"items\": " << r.items
           << ", \"clusters\": " << r.clusters.cluster_count()
           << ", \"singletons\": " << r.clusters.singleton_count()
           << ",\n     \"precision\": " << bench::json_quality(
                  r.quality.precision)
           << ", \"recall\": " << bench::json_quality(r.quality.recall)
           << ", \"f_measure\": " << bench::json_quality(r.quality.f_measure)
           << ", \"pairwise_f1\": " << bench::json_quality(
                  r.quality.pairwise_f1)
           << ",\n     \"consistent_clusters\": " << r.consistent
           << ", \"unfragmented_families\": " << r.unfragmented
           << ", \"wall_ms\": " << fixed_ms(r.wall_ns)
           << ",\n     \"counters\": {";
      bool inner_first = true;
      for (const auto& [name, value] : r.counters) {
        json << (inner_first ? "" : ", ") << "\"" << name
             << "\": " << value;
        inner_first = false;
      }
      json << "}}";
      first = false;
    }
    json << "\n  ]\n}\n";

    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      throw IoError("bench_cluster_backends: cannot open " + out_path +
                    " for writing");
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";
    bench::print_degradation(ds);

    if (!check_path.empty()) {
      bool ok = true;
      for (const auto& [name, value] : agreement) {
        if (value < kAgreementFloor) {
          std::cerr << "ABL-12 gate: lsh-vs-exact agreement on landscape '"
                    << name << "' is " << fixed(value, 4)
                    << ", below the floor " << fixed(kAgreementFloor, 4)
                    << "\n";
          ok = false;
        }
      }
      const auto rows = pinned_rows(results);
      if (!rows_match_table(rows, read_abl12_table(check_path))) ok = false;
      if (!ok) {
        std::cerr << "bench_cluster_backends: backend behavior drifted — "
                     "update the ABL-12 table in EXPERIMENTS.md alongside "
                     "the change\n";
        return 1;
      }
      std::cout << "ABL-12 gate: " << rows.size()
                << " rows match EXPERIMENTS.md, agreement above "
                << fixed(kAgreementFloor, 2) << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
