// ABL-3 — static clustering baselines on the mu dimension: the paper's
// EPM pattern clustering versus peHash (Wicherski, LEET'09) versus
// naive MD5-equality clustering, all scored against ground-truth
// variants. The paper's thesis — simple static techniques work against
// current polymorphism — is quantified here.
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "cluster/pehash.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("ABL-3: EPM vs peHash vs MD5-only baselines");

  // Work per event (as EPM does), with ground truth labels.
  const auto mu_data = cluster::build_mu_data(ds.db);
  std::vector<int> truth;
  std::vector<honeypot::SampleId> row_sample;
  for (const auto event_id : mu_data.event_ids) {
    const auto& event = ds.db.events()[event_id];
    truth.push_back(static_cast<int>(event.truth_variant));
    row_sample.push_back(*event.sample);
  }

  TextTable table{{"method", "clusters", "precision", "recall", "F-measure",
                   "pairwise F1"}};
  const auto add_row = [&](const std::string& name,
                           const std::vector<int>& assignment) {
    const auto metrics = cluster::evaluate_clustering(assignment, truth);
    table.add_row({name, std::to_string(metrics.cluster_count),
                   fixed(metrics.precision, 3), fixed(metrics.recall, 3),
                   fixed(metrics.f_measure, 3),
                   fixed(metrics.pairwise_f1, 3)});
  };

  // 1. EPM mu clustering (the paper's technique).
  add_row("EPM (paper)", ds.m.assignment);

  // 2. peHash-style structural hashing, computed per sample and
  // propagated to events.
  {
    std::unordered_map<honeypot::SampleId, int> sample_cluster;
    std::unordered_map<std::string, int> hash_cluster;
    int next = 0;
    for (const auto& sample : ds.db.samples()) {
      const auto hash = cluster::pehash(sample.content);
      if (hash.has_value()) {
        const auto [it, inserted] = hash_cluster.emplace(*hash, next);
        if (inserted) ++next;
        sample_cluster[sample.id] = it->second;
      } else {
        sample_cluster[sample.id] = next++;  // unparsable: singleton
      }
    }
    std::vector<int> assignment;
    assignment.reserve(row_sample.size());
    for (const auto sample : row_sample) {
      assignment.push_back(sample_cluster.at(sample));
    }
    add_row("peHash (Wicherski)", assignment);
  }

  // 3. MD5 equality — defeated by polymorphism.
  {
    std::unordered_map<honeypot::SampleId, int> sample_cluster;
    for (const auto& sample : ds.db.samples()) {
      sample_cluster[sample.id] = static_cast<int>(sample.id);
    }
    std::vector<int> assignment;
    for (const auto sample : row_sample) {
      assignment.push_back(sample_cluster.at(sample));
    }
    add_row("MD5 equality", assignment);
  }

  std::cout << table.render()
            << "\n(expected shape: MD5 recall collapses under per-instance "
               "polymorphism; EPM and\npeHash both restore it from "
               "packer-stable structure, EPM slightly ahead because\nthe "
               "exact file size separates same-structure Allaple builds)\n";
  bench::print_degradation(ds);
  return 0;
}
