// ABL-10 — cost and equivalence of the durable streaming ingest path.
//
// Builds the same dataset three ways: the one-shot batch build, the
// streaming epoch loop writing a cold WAL + epoch checkpoints, and a
// warm rerun restoring the final epoch cut. Reports wall time per
// mode, the WAL's on-disk footprint, and the ingest work counters
// (appends, rotations, recovery, backpressure), verifies all three
// exports are byte-identical, and writes BENCH_STREAM.json. The
// ingest counters are pure functions of (seed, scale, epochs), so —
// like ABL-9 — they double as a drift gate:
//
//   $ bench_abl_stream --check ../EXPERIMENTS.md
//
// fails (exit 1) when the measured `ingest.*` / `fault.delivery.*`
// counters differ from the ABL-10 table, forcing a committed
// EXPERIMENTS.md update alongside any streaming-path change.
//
//   REPRO_BENCH_SCALE=0.25 ./bench_abl_stream [--check <EXPERIMENTS.md>]
//                                             [--out <file.json>]
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "io/csv_export.hpp"
#include "obs/metrics.hpp"
#include "scenario/stream.hpp"
#include "util/table.hpp"

namespace {

using repro::obs::Channel;
using repro::obs::MetricsRegistry;

std::string all_csv(const repro::scenario::Dataset& ds) {
  std::ostringstream out;
  repro::io::write_events_csv(out, ds.db, ds.e, ds.p, ds.m, ds.b);
  repro::io::write_samples_csv(out, ds.db, ds.b);
  repro::io::write_clusters_csv(out, ds.e);
  repro::io::write_clusters_csv(out, ds.p);
  repro::io::write_clusters_csv(out, ds.m);
  return out.str();
}

/// The streaming-layer counters the ABL-10 gate is stated over; the
/// rest of the deterministic channel is already pinned by ABL-9.
bool gated(const std::string& name) {
  return name.rfind("ingest.", 0) == 0 ||
         name.rfind("fault.delivery.", 0) == 0;
}

/// The `| `name` | value |` rows of the ABL-10 section of EXPERIMENTS.md.
std::map<std::string, std::uint64_t> read_abl10_table(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw repro::IoError("bench_abl_stream: cannot open " + path);
  }
  std::map<std::string, std::uint64_t> table;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("ABL-10") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    const std::size_t tick_open = line.find('`');
    if (tick_open == std::string::npos) continue;
    const std::size_t tick_close = line.find('`', tick_open + 1);
    if (tick_close == std::string::npos) continue;
    const std::string name =
        line.substr(tick_open + 1, tick_close - tick_open - 1);
    const std::size_t bar = line.find('|', tick_close);
    if (bar == std::string::npos) continue;
    std::size_t begin = bar + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (end == begin) continue;
    table[name] = repro::parse_u64(line.substr(begin, end - begin),
                                   "ABL-10 counter " + name);
  }
  return table;
}

bool counters_match_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::map<std::string, std::uint64_t>& table) {
  bool ok = true;
  std::map<std::string, std::uint64_t> measured;
  for (const auto& [name, value] : counters) {
    if (gated(name)) measured[name] = value;
  }
  for (const auto& [name, value] : measured) {
    const auto it = table.find(name);
    if (it == table.end()) {
      std::cerr << "ABL-10 gate: counter '" << name << "' (= " << value
                << ") is missing from the table\n";
      ok = false;
    } else if (it->second != value) {
      std::cerr << "ABL-10 gate: counter '" << name << "' measured " << value
                << " but the table says " << it->second << "\n";
      ok = false;
    }
  }
  for (const auto& [name, value] : table) {
    if (measured.count(name) == 0) {
      std::cerr << "ABL-10 gate: table row '" << name
                << "' was not produced by this run\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;

  std::string check_path;
  std::string out_path = "BENCH_STREAM.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_abl_stream [--check <EXPERIMENTS.md>] "
                   "[--out <file.json>]\n";
      return 2;
    }
  }

  try {
    const scenario::ScenarioOptions base = bench::options_from_env();
    std::cout << "### ABL-10: streaming ingest vs one-shot batch\n"
              << "(seed " << base.seed << ", scale " << base.scale
              << (base.faults.empty() ? "" : ", fault injection ON")
              << "; batch build, then the WAL + epoch loop...)\n\n";

    const fs::path root = fs::temp_directory_path() / "repro-abl-stream";
    fs::remove_all(root);

    struct Timed {
      double seconds = 0.0;
      scenario::Dataset dataset;
    };
    const auto timed = [](auto&& build) {
      const clock::time_point start = clock::now();
      Timed result{0.0, build()};
      result.seconds =
          std::chrono::duration<double>(clock::now() - start).count();
      return result;
    };

    const Timed batch =
        timed([&] { return scenario::build_paper_dataset(base); });

    scenario::ScenarioOptions streamed = base;
    streamed.checkpoint.directory = (root / "ckpt").string();
    scenario::StreamOptions stream;
    stream.wal_dir = (root / "wal").string();
    MetricsRegistry cold_metrics;
    streamed.metrics = &cold_metrics;
    const Timed cold = timed(
        [&] { return scenario::build_streaming_dataset(streamed, stream); });
    streamed.metrics = nullptr;
    const Timed warm = timed(
        [&] { return scenario::build_streaming_dataset(streamed, stream); });

    TextTable modes{{"mode", "wall time", "vs batch", "epochs run",
                     "epochs restored"}};
    const auto add_mode = [&](const char* name, const Timed& mode) {
      std::ostringstream secs, ratio;
      secs.precision(2);
      secs << std::fixed << mode.seconds << " s";
      ratio.precision(2);
      ratio << std::fixed << mode.seconds / batch.seconds << "x";
      modes.add_row({name, secs.str(), ratio.str(),
                     std::to_string(mode.dataset.ingest.epochs_run),
                     std::to_string(mode.dataset.ingest.epochs_restored)});
    };
    add_mode("one-shot batch", batch);
    add_mode("streaming (cold WAL)", cold);
    add_mode("streaming (warm restore)", warm);
    std::cout << modes.render() << "\n";

    std::uintmax_t wal_bytes = 0;
    std::size_t wal_files = 0;
    for (const auto& entry : fs::directory_iterator(root / "wal")) {
      if (!entry.is_regular_file()) continue;
      wal_bytes += entry.file_size();
      ++wal_files;
    }
    const ingest::IngestReport& report = cold.dataset.ingest;
    TextTable wal{{"ingest counter", "value"}};
    wal.add_row({"records appended", std::to_string(report.records_appended)});
    wal.add_row({"frame bytes appended",
                 std::to_string(report.bytes_appended)});
    wal.add_row({"segments sealed", std::to_string(report.segments_sealed)});
    wal.add_row({"records recovered (warm)",
                 std::to_string(warm.dataset.ingest.records_recovered)});
    wal.add_row({"queue pushed", std::to_string(report.queue_pushed)});
    wal.add_row({"queue stalls", std::to_string(report.queue_stalls)});
    wal.add_row({"queue high water", std::to_string(report.queue_high_water)});
    wal.add_row({"WAL on disk", std::to_string(wal_bytes) + " B in " +
                                    std::to_string(wal_files) + " files"});
    std::cout << wal.render() << "\n";

    const bool identical =
        all_csv(batch.dataset) == all_csv(cold.dataset) &&
        all_csv(batch.dataset) == all_csv(warm.dataset);
    std::cout << (identical
                      ? "streamed exports byte-identical to batch build: yes\n"
                      : "streamed exports byte-identical to batch build: NO "
                        "(BUG)\n");
    bench::print_degradation(cold.dataset);

    const auto counters = cold_metrics.counter_values(Channel::kDeterministic);
    std::ostringstream json;
    json.precision(2);
    json << std::fixed << "{\n  \"bench\": \"abl_stream\",\n"
         << "  \"seed\": " << base.seed << ",\n"
         << "  \"scale\": " << base.scale << ",\n"
         << "  \"batch_wall_s\": " << batch.seconds << ",\n"
         << "  \"stream_cold_wall_s\": " << cold.seconds << ",\n"
         << "  \"stream_warm_wall_s\": " << warm.seconds << ",\n"
         << "  \"wal_disk_bytes\": " << wal_bytes << ",\n"
         << "  \"byte_identical\": " << (identical ? "true" : "false")
         << ",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!gated(name)) continue;
      json << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
      first = false;
    }
    json << "\n  }\n}\n";
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      throw IoError("bench_abl_stream: cannot open " + out_path +
                    " for writing");
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";

    fs::remove_all(root);
    if (!identical) return 1;
    if (!check_path.empty()) {
      if (!counters_match_table(counters, read_abl10_table(check_path))) {
        std::cerr << "bench_abl_stream: streaming work counters drifted — "
                     "update the ABL-10 table in EXPERIMENTS.md alongside "
                     "the change\n";
        return 1;
      }
      std::size_t gated_count = 0;
      for (const auto& [name, value] : counters) {
        if (gated(name)) ++gated_count;
      }
      std::cout << "ABL-10 gate: " << gated_count
                << " counters match EXPERIMENTS.md\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
