// ABL-10 — cost and equivalence of the durable streaming ingest path.
//
// Builds the same dataset three ways: the one-shot batch build, the
// streaming epoch loop writing a cold WAL + epoch checkpoints, and a
// warm rerun restoring the final epoch cut. Reports wall time per
// mode, the WAL's on-disk footprint, and the ingest work counters
// (appends, rotations, recovery, backpressure), verifies all three
// exports are byte-identical, and writes BENCH_STREAM.json. The
// ingest counters are pure functions of (seed, scale, epochs), so —
// like ABL-9 — they double as a drift gate:
//
//   $ bench_abl_stream --check ../EXPERIMENTS.md
//
// fails (exit 1) when the measured `ingest.*` / `fault.delivery.*`
// counters differ from the ABL-10 table, forcing a committed
// EXPERIMENTS.md update alongside any streaming-path change.
//
//   REPRO_BENCH_SCALE=0.25 ./bench_abl_stream [--check <EXPERIMENTS.md>]
//                                             [--out <file.json>]
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "io/csv_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/stream.hpp"
#include "util/table.hpp"

namespace {

using repro::obs::Channel;
using repro::obs::MetricsRegistry;

std::string all_csv(const repro::scenario::Dataset& ds) {
  std::ostringstream out;
  repro::io::write_events_csv(out, ds.db, ds.e, ds.p, ds.m, ds.b);
  repro::io::write_samples_csv(out, ds.db, ds.b);
  repro::io::write_clusters_csv(out, ds.e);
  repro::io::write_clusters_csv(out, ds.p);
  repro::io::write_clusters_csv(out, ds.m);
  return out.str();
}

/// The streaming-layer counters the ABL-10 gate is stated over (the
/// rest of the deterministic channel is already pinned by ABL-9), plus
/// the two incremental-clustering work counters — both are pure
/// functions of (seed, scale, epochs), so drift means the flip or
/// cache logic changed.
bool gated(const std::string& name) {
  return name.rfind("ingest.", 0) == 0 ||
         name.rfind("fault.delivery.", 0) == 0 ||
         name == "epm.instances_reclassified" ||
         name == "cluster.signatures_reused";
}

/// Wall milliseconds of every span named `name`, in creation order —
/// for the per-epoch spans that is epoch order.
std::vector<double> span_ms(const repro::obs::TraceRecorder& trace,
                            std::string_view name) {
  std::vector<double> out;
  for (const auto& span : trace.spans()) {
    if (span.name == name) {
      out.push_back(static_cast<double>(span.duration_ns()) / 1e6);
    }
  }
  return out;
}

/// The `| `name` | value |` rows of the ABL-10 section of EXPERIMENTS.md.
std::map<std::string, std::uint64_t> read_abl10_table(
    const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw repro::IoError("bench_abl_stream: cannot open " + path);
  }
  std::map<std::string, std::uint64_t> table;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0) {
      in_section = line.find("ABL-10") != std::string::npos;
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    const std::size_t tick_open = line.find('`');
    if (tick_open == std::string::npos) continue;
    const std::size_t tick_close = line.find('`', tick_open + 1);
    if (tick_close == std::string::npos) continue;
    const std::string name =
        line.substr(tick_open + 1, tick_close - tick_open - 1);
    const std::size_t bar = line.find('|', tick_close);
    if (bar == std::string::npos) continue;
    std::size_t begin = bar + 1;
    while (begin < line.size() && line[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
      ++end;
    }
    if (end == begin) continue;
    table[name] = repro::parse_u64(line.substr(begin, end - begin),
                                   "ABL-10 counter " + name);
  }
  return table;
}

bool counters_match_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::map<std::string, std::uint64_t>& table) {
  bool ok = true;
  std::map<std::string, std::uint64_t> measured;
  for (const auto& [name, value] : counters) {
    if (gated(name)) measured[name] = value;
  }
  for (const auto& [name, value] : measured) {
    const auto it = table.find(name);
    if (it == table.end()) {
      std::cerr << "ABL-10 gate: counter '" << name << "' (= " << value
                << ") is missing from the table\n";
      ok = false;
    } else if (it->second != value) {
      std::cerr << "ABL-10 gate: counter '" << name << "' measured " << value
                << " but the table says " << it->second << "\n";
      ok = false;
    }
  }
  for (const auto& [name, value] : table) {
    if (measured.count(name) == 0) {
      std::cerr << "ABL-10 gate: table row '" << name
                << "' was not produced by this run\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace repro;
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;

  std::string check_path;
  std::string out_path = "BENCH_STREAM.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_abl_stream [--check <EXPERIMENTS.md>] "
                   "[--out <file.json>]\n";
      return 2;
    }
  }

  try {
    const scenario::ScenarioOptions base = bench::options_from_env();
    std::cout << "### ABL-10: streaming ingest vs one-shot batch\n"
              << "(seed " << base.seed << ", scale " << base.scale
              << (base.faults.empty() ? "" : ", fault injection ON")
              << "; batch build, then the WAL + epoch loop...)\n\n";

    const fs::path root = fs::temp_directory_path() / "repro-abl-stream";
    fs::remove_all(root);

    struct Timed {
      double seconds = 0.0;
      scenario::Dataset dataset;
    };
    const auto timed = [](auto&& build) {
      const clock::time_point start = clock::now();
      Timed result{0.0, build()};
      result.seconds =
          std::chrono::duration<double>(clock::now() - start).count();
      return result;
    };

    const Timed batch =
        timed([&] { return scenario::build_paper_dataset(base); });

    scenario::ScenarioOptions streamed = base;
    streamed.checkpoint.directory = (root / "ckpt").string();
    scenario::StreamOptions stream;
    stream.wal_dir = (root / "wal").string();
    // The incremental win compounds with epoch count — each epoch the
    // full recompute re-clusters the whole history while the
    // incremental path absorbs only the delta — so the ABL-10
    // landscape runs a longer 8-epoch stream to expose the tail.
    stream.epochs = 8;
    MetricsRegistry cold_metrics;
    obs::TraceRecorder cold_trace;
    streamed.metrics = &cold_metrics;
    streamed.trace = &cold_trace;
    const Timed cold = timed(
        [&] { return scenario::build_streaming_dataset(streamed, stream); });
    streamed.metrics = nullptr;
    streamed.trace = nullptr;
    const Timed warm = timed(
        [&] { return scenario::build_streaming_dataset(streamed, stream); });

    // The before/after leg: the same stream with the incremental epoch
    // clustering off, i.e. the pre-incremental full recompute per
    // epoch. Separate directories so the cold leg's WAL stays intact.
    scenario::ScenarioOptions full_options = base;
    full_options.checkpoint.directory = (root / "ckpt-full").string();
    scenario::StreamOptions full_stream;
    full_stream.wal_dir = (root / "wal-full").string();
    full_stream.epochs = stream.epochs;
    full_stream.incremental = false;
    obs::TraceRecorder full_trace;
    full_options.trace = &full_trace;
    MetricsRegistry full_metrics;
    full_options.metrics = &full_metrics;
    const Timed full = timed([&] {
      return scenario::build_streaming_dataset(full_options, full_stream);
    });

    TextTable modes{{"mode", "wall time", "vs batch", "epochs run",
                     "epochs restored"}};
    const auto add_mode = [&](const char* name, const Timed& mode) {
      std::ostringstream secs, ratio;
      secs.precision(2);
      secs << std::fixed << mode.seconds << " s";
      ratio.precision(2);
      ratio << std::fixed << mode.seconds / batch.seconds << "x";
      modes.add_row({name, secs.str(), ratio.str(),
                     std::to_string(mode.dataset.ingest.epochs_run),
                     std::to_string(mode.dataset.ingest.epochs_restored)});
    };
    add_mode("one-shot batch", batch);
    add_mode("streaming (cold WAL)", cold);
    add_mode("streaming (warm restore)", warm);
    add_mode("streaming (full recluster)", full);
    std::cout << modes.render() << "\n";

    // Per-epoch: ingest throughput and the clustering cost under both
    // modes. Epoch 1 clusters from scratch either way; the incremental
    // win is epochs >= 2, where only the delta is absorbed.
    const std::vector<double> epoch_wall = span_ms(cold_trace, "stream.epoch");
    const std::vector<double> cluster_inc = span_ms(cold_trace,
                                                    "epoch.cluster");
    const std::vector<double> cluster_full = span_ms(full_trace,
                                                     "epoch.cluster");
    const std::size_t epochs = cluster_inc.size();
    const std::size_t total_events = cold.dataset.db.events().size();
    std::vector<double> epoch_events_per_s;
    std::vector<std::size_t> epoch_events;
    // Aggregate clustering wall over epochs >= 2 under each mode. The
    // per-epoch ratio is noisy on a loaded machine and structurally
    // capped near 1x at epoch 2 (half the rows are new there), so the
    // headline metric is the total epoch.cluster time saved across the
    // whole tail, where the incremental path's advantage compounds.
    double tail_inc_ms = 0.0;
    double tail_full_ms = 0.0;
    TextTable per_epoch{{"epoch", "events", "events/s", "epoch.cluster ms",
                         "full recompute ms", "speedup"}};
    for (std::size_t k = 0; k < epochs; ++k) {
      // Epoch boundaries are record counts k * total / epochs — the
      // same split the loop itself uses.
      const std::size_t end = (k + 1) * total_events / epochs;
      const std::size_t begin = k * total_events / epochs;
      epoch_events.push_back(end - begin);
      const double wall_s =
          k < epoch_wall.size() ? epoch_wall[k] / 1e3 : 0.0;
      epoch_events_per_s.push_back(
          wall_s > 0.0 ? static_cast<double>(end - begin) / wall_s : 0.0);
      const double full_ms = k < cluster_full.size() ? cluster_full[k] : 0.0;
      const double speedup =
          cluster_inc[k] > 0.0 ? full_ms / cluster_inc[k] : 0.0;
      if (k >= 1) {
        tail_inc_ms += cluster_inc[k];
        tail_full_ms += full_ms;
      }
      std::ostringstream events_s, inc_ms, fr_ms, ratio;
      events_s.precision(0);
      events_s << std::fixed << epoch_events_per_s.back();
      inc_ms.precision(2);
      inc_ms << std::fixed << cluster_inc[k];
      fr_ms.precision(2);
      fr_ms << std::fixed << full_ms;
      ratio.precision(2);
      ratio << std::fixed << speedup << "x";
      per_epoch.add_row({std::to_string(k + 1),
                         std::to_string(end - begin), events_s.str(),
                         inc_ms.str(), fr_ms.str(), ratio.str()});
    }
    std::cout << per_epoch.render() << "\n";
    const double speedup_tail =
        tail_inc_ms > 0.0 ? tail_full_ms / tail_inc_ms : 0.0;
    std::ostringstream tail;
    tail.precision(2);
    tail << std::fixed << tail_full_ms << " ms full vs " << tail_inc_ms
         << " ms incremental = " << speedup_tail;
    std::cout << "epoch.cluster wall over epochs >= 2: " << tail.str()
              << "x\n\n";

    std::uintmax_t wal_bytes = 0;
    std::size_t wal_files = 0;
    for (const auto& entry : fs::directory_iterator(root / "wal")) {
      if (!entry.is_regular_file()) continue;
      wal_bytes += entry.file_size();
      ++wal_files;
    }
    const ingest::IngestReport& report = cold.dataset.ingest;
    TextTable wal{{"ingest counter", "value"}};
    wal.add_row({"records appended", std::to_string(report.records_appended)});
    wal.add_row({"frame bytes appended",
                 std::to_string(report.bytes_appended)});
    wal.add_row({"segments sealed", std::to_string(report.segments_sealed)});
    wal.add_row({"records recovered (warm)",
                 std::to_string(warm.dataset.ingest.records_recovered)});
    wal.add_row({"queue pushed", std::to_string(report.queue_pushed)});
    wal.add_row({"queue stalls", std::to_string(report.queue_stalls)});
    wal.add_row({"queue high water", std::to_string(report.queue_high_water)});
    wal.add_row({"WAL on disk", std::to_string(wal_bytes) + " B in " +
                                    std::to_string(wal_files) + " files"});
    std::cout << wal.render() << "\n";

    const bool identical =
        all_csv(batch.dataset) == all_csv(cold.dataset) &&
        all_csv(batch.dataset) == all_csv(warm.dataset) &&
        all_csv(batch.dataset) == all_csv(full.dataset);
    std::cout << (identical
                      ? "streamed exports byte-identical to batch build: yes\n"
                      : "streamed exports byte-identical to batch build: NO "
                        "(BUG)\n");
    bench::print_degradation(cold.dataset);

    const auto counters = cold_metrics.counter_values(Channel::kDeterministic);
    std::ostringstream json;
    json.precision(2);
    json << std::fixed << "{\n  \"bench\": \"abl_stream\",\n"
         << "  \"seed\": " << base.seed << ",\n"
         << "  \"scale\": " << base.scale << ",\n"
         << "  \"batch_wall_s\": " << batch.seconds << ",\n"
         << "  \"stream_cold_wall_s\": " << cold.seconds << ",\n"
         << "  \"stream_warm_wall_s\": " << warm.seconds << ",\n"
         << "  \"stream_full_recluster_wall_s\": " << full.seconds << ",\n"
         << "  \"cluster_speedup_epoch2_plus\": " << speedup_tail << ",\n";
    const auto array = [&json](const char* key, const auto& values) {
      json << "  \"" << key << "\": [";
      for (std::size_t i = 0; i < values.size(); ++i) {
        json << (i == 0 ? "" : ", ") << values[i];
      }
      json << "],\n";
    };
    array("epoch_events", epoch_events);
    array("epoch_events_per_s", epoch_events_per_s);
    array("epoch_cluster_ms_incremental", cluster_inc);
    array("epoch_cluster_ms_full", cluster_full);
    json << "  \"wal_disk_bytes\": " << wal_bytes << ",\n"
         << "  \"byte_identical\": " << (identical ? "true" : "false")
         << ",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!gated(name)) continue;
      json << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
      first = false;
    }
    json << "\n  }\n}\n";
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      throw IoError("bench_abl_stream: cannot open " + out_path +
                    " for writing");
    }
    out << json.str();
    std::cout << "wrote " << out_path << "\n";

    fs::remove_all(root);
    if (!identical) return 1;
    if (!check_path.empty()) {
      if (!counters_match_table(counters, read_abl10_table(check_path))) {
        std::cerr << "bench_abl_stream: streaming work counters drifted — "
                     "update the ABL-10 table in EXPERIMENTS.md alongside "
                     "the change\n";
        return 1;
      }
      std::size_t gated_count = 0;
      for (const auto& [name, value] : counters) {
        if (gated(name)) ++gated_count;
      }
      std::cout << "ABL-10 gate: " << gated_count
                << " counters match EXPERIMENTS.md\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
