// EXP-8 — Table 2: IRC C&C servers associated to M-clusters, plus the
// two "single organization" signals the paper derives from it: servers
// co-located in one /24 and room names recurring across servers.
#include <iostream>

#include "analysis/c2.hpp"
#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-8: Table 2 IRC C&C correlation");
  const auto report = analysis::correlate_irc(ds.db, ds.m, ds.b);
  std::cout << report::table2(report);
  std::cout << "\n(paper's Table 2 lists 10 channels on 7 servers; "
               "channels commanding two\nM-clusters are 'patches applied "
               "to the very same botnet', servers sharing a /24\nand "
               "recurring room names suggest one bot-herder operating "
               "several botnets)\n";
  bench::print_degradation(ds);
  return 0;
}
