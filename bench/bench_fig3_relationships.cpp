// EXP-2 — Figure 3: the E-P-M-B relationship graph over clusters
// grouping at least 30 attack events, and the paper's three
// observations about it.
#include <iostream>

#include "analysis/codeshare.hpp"
#include "analysis/graph.hpp"
#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-2: Figure 3 EPM/B relationship graph");
  const auto filtered =
      analysis::build_relationship_graph(ds.db, ds.e, ds.p, ds.m, ds.b, 30);
  std::cout << report::figure3(filtered);

  const auto full =
      analysis::build_relationship_graph(ds.db, ds.e, ds.p, ds.m, ds.b, 1);
  std::cout << "\n-- verification on the unfiltered graph --\n"
            << "E-P combinations: " << full.ep_combination_count()
            << " vs M-clusters: " << ds.m.cluster_count()
            << "  (obs. 1 holds: "
            << (full.ep_combination_count() < ds.m.cluster_count() ? "yes"
                                                                   : "NO")
            << ")\n"
            << "P shared across 2+ E: " << full.shared_p_count()
            << "  (obs. 2 holds: "
            << (full.shared_p_count() >= 1 ? "yes" : "NO") << ")\n"
            << "non-singleton B: "
            << ds.b.cluster_count() - ds.b.singleton_count()
            << " vs M: " << ds.m.cluster_count() << "  (obs. 3 holds: "
            << (ds.b.cluster_count() - ds.b.singleton_count() <
                        ds.m.cluster_count()
                    ? "yes"
                    : "NO")
            << ")\n";
  std::cout << "\nGraphviz of the filtered graph written to stdout on "
               "request; node/edge counts: "
            << filtered.nodes.size() << " nodes, " << filtered.edges.size()
            << " edges\n";

  // Code-sharing detail behind observation 2: which payloads ride on
  // several exploits, and which malware classes share a propagation
  // vector (the paper's Allaple / M-cluster-13 case).
  const auto sharing =
      analysis::analyze_code_sharing(ds.db, ds.e, ds.p, ds.m);
  std::cout << "\n-- code-sharing report --\n"
            << "distinct (E,P) propagation vectors: "
            << sharing.distinct_vectors() << "\n"
            << "vectors used by 2+ M-clusters: " << sharing.shared_vectors()
            << "\n"
            << "M-clusters sharing their vector with another class: "
            << sharing.m_clusters_sharing_vector() << "\n";
  for (std::size_t i = 0;
       i < std::min<std::size_t>(3, sharing.shared_payloads.size()); ++i) {
    const auto& shared = sharing.shared_payloads[i];
    std::cout << "P" << shared.p_cluster << " rides on "
              << shared.e_clusters.size() << " exploits:";
    for (const auto& [e_cluster, count] : shared.e_clusters) {
      std::cout << " E" << e_cluster << "(" << count << ")";
    }
    std::cout << "\n";
  }
  bench::print_degradation(ds);
  return 0;
}
