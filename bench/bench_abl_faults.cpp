// ABL-5 — sensitivity of the paper's headline artifacts to
// infrastructure failures. Rebuilds the dataset under increasing fault
// rates (clean run, paper-calibrated rates, doubled rates) and reports
// how the cluster counts and the Figure-4 anomaly counts move. The
// point of the degradation design: faults shrink the dataset and shift
// absolute counts, but the pipeline keeps producing every artifact —
// no stage throws, no analysis pass needs a complete dataset.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/anomaly.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace repro;
  scenario::ScenarioOptions base = bench::options_from_env();
  std::cout << "### ABL-5: fault-rate sensitivity\n"
            << "(seed " << base.seed << ", scale " << base.scale
            << "; sweeping fault plans over the full pipeline...)\n\n";

  struct Row {
    std::string name;
    fault::FaultPlan plan;
  };
  const std::vector<Row> sweep = {
      {"none (0%)", fault::FaultPlan{}},
      {"paper-calibrated", fault::FaultPlan::paper_calibrated()},
      {"2x paper", fault::FaultPlan::paper_calibrated().scaled(2.0)},
  };

  TextTable table{{"fault plan", "events", "samples", "enriched", "E", "P",
                   "M", "B", "size-1 B", "anomalies"}};
  for (const Row& row : sweep) {
    scenario::ScenarioOptions options = base;
    options.faults = row.plan;
    const scenario::Dataset ds = scenario::build_paper_dataset(options);
    const analysis::SingletonReport anomalies =
        analysis::detect_singleton_anomalies(ds.db, ds.e, ds.p, ds.m, ds.b);
    table.add_row({row.name, std::to_string(ds.db.events().size()),
                   std::to_string(ds.db.samples().size()),
                   std::to_string(ds.enrichment.executed),
                   std::to_string(ds.e.cluster_count()),
                   std::to_string(ds.p.cluster_count()),
                   std::to_string(ds.m.cluster_count()),
                   std::to_string(ds.b.cluster_count()),
                   std::to_string(ds.b.singleton_count()),
                   std::to_string(anomalies.anomalies)});
    const std::string summary = report::degradation(
        ds.fault_report, ds.db, ds.enrichment);
    if (!summary.empty()) {
      std::cout << "[" << row.name << "]\n" << summary << "\n";
    }
  }
  std::cout << table.render()
            << "\n(cluster structure should degrade gracefully: counts "
               "shrink with the\ndataset, but every perspective stays "
               "populated and no stage aborts)\n";
  return 0;
}
