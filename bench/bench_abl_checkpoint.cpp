// ABL-7 — cost of crash-safe checkpointing. Builds the dataset three
// ways: without checkpoints, with cold checkpoint writes (every stage
// serialized, fsynced and renamed into place), and resuming from a warm
// checkpoint directory (every stage restored, nothing recomputed).
// Reports wall time per mode plus the on-disk size of each stage
// snapshot, and verifies the restored run is byte-identical on export.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "io/csv_export.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/table.hpp"

namespace {

std::string all_csv(const repro::scenario::Dataset& ds) {
  std::ostringstream out;
  repro::io::write_events_csv(out, ds.db, ds.e, ds.p, ds.m, ds.b);
  repro::io::write_samples_csv(out, ds.db, ds.b);
  repro::io::write_clusters_csv(out, ds.e);
  repro::io::write_clusters_csv(out, ds.p);
  repro::io::write_clusters_csv(out, ds.m);
  return out.str();
}

std::string megabytes(std::uintmax_t bytes) {
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << static_cast<double>(bytes) / (1024.0 * 1024.0)
      << " MiB";
  return out.str();
}

}  // namespace

int main() {
  using namespace repro;
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;

  const scenario::ScenarioOptions base = bench::options_from_env();
  std::cout << "### ABL-7: checkpoint overhead and restore speedup\n"
            << "(seed " << base.seed << ", scale " << base.scale
            << "; building the pipeline with and without snapshots...)\n\n";

  const fs::path dir = fs::temp_directory_path() / "repro-abl-checkpoint";
  fs::remove_all(dir);

  struct Timed {
    double seconds = 0.0;
    scenario::Dataset dataset;
  };
  const auto timed_build = [](const scenario::ScenarioOptions& options) {
    const clock::time_point start = clock::now();
    Timed timed{0.0, scenario::build_paper_dataset(options)};
    timed.seconds = std::chrono::duration<double>(clock::now() - start).count();
    return timed;
  };

  const Timed plain = timed_build(base);

  scenario::ScenarioOptions checkpointed = base;
  checkpointed.checkpoint.directory = dir.string();
  const Timed cold = timed_build(checkpointed);
  const Timed warm = timed_build(checkpointed);

  TextTable table{{"mode", "wall time", "vs plain", "saved", "restored"}};
  const auto add = [&](const char* name, const Timed& timed) {
    std::ostringstream secs, ratio;
    secs.precision(2);
    secs << std::fixed << timed.seconds << " s";
    ratio.precision(2);
    ratio << std::fixed << timed.seconds / plain.seconds << "x";
    table.add_row({name, secs.str(), ratio.str(),
                   std::to_string(timed.dataset.checkpoint_activity.saved),
                   std::to_string(timed.dataset.checkpoint_activity.restored)});
  };
  add("no checkpoints", plain);
  add("checkpoint writes (cold)", cold);
  add("restore from snapshots (warm)", warm);
  std::cout << table.render() << "\n";

  TextTable sizes{{"stage snapshot", "size"}};
  std::uintmax_t total = 0;
  for (const snapshot::Stage stage :
       {snapshot::Stage::kLandscape, snapshot::Stage::kDatabase,
        snapshot::Stage::kEpm, snapshot::Stage::kBehavioral}) {
    const fs::path path = dir / snapshot::stage_filename(stage);
    const std::uintmax_t bytes = fs::exists(path) ? fs::file_size(path) : 0;
    total += bytes;
    sizes.add_row({std::string{snapshot::stage_name(stage)}, megabytes(bytes)});
  }
  sizes.add_row({"total", megabytes(total)});
  std::cout << sizes.render() << "\n";

  const bool identical = all_csv(plain.dataset) == all_csv(warm.dataset) &&
                         all_csv(plain.dataset) == all_csv(cold.dataset);
  std::cout << (identical
                    ? "restored exports byte-identical to plain build: yes\n"
                    : "restored exports byte-identical to plain build: NO "
                      "(BUG)\n");
  fs::remove_all(dir);
  return identical ? 0 : 1;
}
