// EXP-0 — Section 4.1 "the big picture": dataset and cluster counts
// (paper: 6353 samples, 5165 analyzable, 39 E / 27 P / 260 M / 972 B).
#include <iostream>

#include "bench_common.hpp"
#include "report/reports.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-0: Section 4.1 headline statistics");
  std::cout << report::big_picture(ds.db, ds.enrichment, ds.e, ds.p, ds.m,
                                   ds.b);
  bench::print_degradation(ds);
  return 0;
}
