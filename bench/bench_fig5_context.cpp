// EXP-6/7 — Figure 5: propagation context of the two most-split
// B-clusters. Left panel of the paper: an Allaple-style worm cluster
// (large populations, spread over the IP space, long activity). Right
// panel: a bot cluster (small concentrated populations, bursty
// coordinated activity), including the paper's location-hopping
// timeline example.
#include <iostream>

#include "analysis/context.hpp"
#include "bench_common.hpp"
#include "report/reports.hpp"
#include "util/simtime.hpp"

int main() {
  using namespace repro;
  const scenario::Dataset ds =
      bench::build_dataset("EXP-6/7: Figure 5 propagation context");

  const auto split = analysis::most_split_b_clusters(ds.db, ds.m, ds.b, 12);
  // Pick one widespread (worm-like) and one concentrated (bot-like)
  // subject among the most-split B-clusters, as the paper does.
  int worm_b = -1;
  int bot_b = -1;
  for (const int candidate : split) {
    const auto context = analysis::propagation_context(
        ds.db, ds.m, ds.b, candidate, ds.landscape.start_time,
        ds.landscape.weeks);
    if (context.per_m_cluster.empty()) continue;
    const auto& lead = context.per_m_cluster.front();
    if (worm_b < 0 && lead.ip_entropy > 0.5 && lead.occupied_slash8 > 10) {
      worm_b = candidate;
    } else if (bot_b < 0 && lead.ip_entropy < 0.4 &&
               lead.occupied_slash8 <= 4) {
      bot_b = candidate;
    }
    if (worm_b >= 0 && bot_b >= 0) break;
  }

  for (const auto& [label, b_cluster] :
       {std::pair<const char*, int>{"left panel (worm-like)", worm_b},
        std::pair<const char*, int>{"right panel (bot-like)", bot_b}}) {
    std::cout << "---- " << label << " ----\n";
    if (b_cluster < 0) {
      std::cout << "(no matching B-cluster found)\n\n";
      continue;
    }
    const auto context = analysis::propagation_context(
        ds.db, ds.m, ds.b, b_cluster, ds.landscape.start_time,
        ds.landscape.weeks);
    std::cout << report::figure5(context) << "\n";
  }

  // The paper's temporal example: the location-hopping sequence of one
  // bot M-cluster ("15/7-16/7 location A, 18/7 location B, ...").
  if (bot_b >= 0) {
    const auto context = analysis::propagation_context(
        ds.db, ds.m, ds.b, bot_b, ds.landscape.start_time,
        ds.landscape.weeks);
    for (const auto& mc : context.per_m_cluster) {
      if (mc.location_sequence.size() < 4) continue;
      std::cout << "-- coordinated location-hopping of M"
                << mc.m_cluster << " (paper's 15/7...27/9 example) --\n";
      for (std::size_t i = 0;
           i < std::min<std::size_t>(mc.location_sequence.size(), 10); ++i) {
        const auto& [time, location] = mc.location_sequence[i];
        std::cout << "  " << format_day_month(time)
                  << ": observed hitting network location "
                  << static_cast<char>('A' + location % 26) << "\n";
      }
      break;
    }
  }
  bench::print_degradation(ds);
  return 0;
}
