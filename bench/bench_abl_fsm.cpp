// ABL-4 — ScriptGen FSM learner sensitivity: how the message-clustering
// similarity threshold and the maturity requirement trade off epsilon
// classification quality against the proxying load on the sample
// factory. The SGNET design point (threshold 0.8, maturity 3) should
// classify nearly all events correctly with a small proxied fraction.
#include <iostream>
#include <map>
#include <set>

#include "proto/incremental.hpp"
#include "proto/services.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace repro;
  using namespace repro::proto;
  std::cout << "### ABL-4: incremental ScriptGen sensitivity\n\n";

  // A stream of attacks: 12 implementations, 60 instances each,
  // interleaved (as the deployment would see them).
  struct Attack {
    int impl;
    Conversation conversation;
    Conversation stripped;
  };
  Rng rng{99};
  std::vector<Attack> stream;
  for (int round = 0; round < 60; ++round) {
    for (int impl = 0; impl < 12; ++impl) {
      const auto tmpl = make_exploit_template(
          ServiceKind::kSmb445, static_cast<std::uint32_t>(impl));
      const auto location = payload_location(tmpl);
      auto conversation = synthesize_attack(
          tmpl, to_bytes("PAYLOAD" + rng.alnum(24)),
          net::Ipv4{static_cast<std::uint32_t>(rng.next())},
          net::Ipv4{10, 0, 0, 1}, rng);
      Attack attack;
      attack.impl = impl;
      attack.stripped = strip_payload(conversation, location);
      attack.conversation = std::move(conversation);
      stream.push_back(std::move(attack));
    }
  }

  TextTable table{{"similarity", "maturity", "proxied %", "distinct paths",
                   "path purity %"}};
  for (const double similarity : {0.6, 0.7, 0.8, 0.9, 0.97}) {
    for (const std::size_t maturity : {std::size_t{1}, std::size_t{3},
                                       std::size_t{10}}) {
      IncrementalFsm::Options options;
      options.fsm.similarity_threshold = similarity;
      options.maturity = maturity;
      IncrementalFsm model{445, options};

      std::size_t proxied = 0;
      std::map<int, std::map<std::string, std::size_t>> impl_paths;
      for (const Attack& attack : stream) {
        const auto path = model.match(attack.conversation);
        if (!path.has_value()) {
          ++proxied;
          model.train(attack.stripped);
          continue;
        }
        ++impl_paths[attack.impl][*path];
      }
      // Purity: fraction of matched events whose path is the dominant
      // path of their implementation (path splits/merges lower it).
      std::size_t matched = 0;
      std::size_t dominant = 0;
      std::set<std::string> distinct;
      for (const auto& [impl, paths] : impl_paths) {
        std::size_t best = 0;
        for (const auto& [path, count] : paths) {
          matched += count;
          best = std::max(best, count);
          distinct.insert(path);
        }
        dominant += best;
      }
      table.add_row(
          {fixed(similarity, 2), std::to_string(maturity),
           fixed(100.0 * static_cast<double>(proxied) /
                     static_cast<double>(stream.size()),
                 1),
           std::to_string(distinct.size()),
           matched > 0 ? fixed(100.0 * static_cast<double>(dominant) /
                                   static_cast<double>(matched),
                               1)
                       : std::string{"-"}});
    }
  }
  std::cout << table.render()
            << "\n(12 true implementations; at the SGNET design point the "
               "learner converges to\n~12 distinct paths with high purity "
               "and a proxied fraction near maturity*impls/total.\nLoose "
               "similarity merges implementations; strict similarity "
               "shatters them and\nkeeps proxying; maturity trades early "
               "coverage against factory load)\n";
  return 0;
}
