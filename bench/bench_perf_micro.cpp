// Microbenchmarks of the library's hot paths: MD5, PE build/parse,
// LCS/region analysis, FSM matching, shellcode analysis, Jaccard and
// MinHash signatures, EPM clustering throughput.
#include <benchmark/benchmark.h>

#include "cluster/epm.hpp"
#include "cluster/minhash.hpp"
#include "pe/builder.hpp"
#include "pe/parser.hpp"
#include "proto/fsm.hpp"
#include "proto/services.hpp"
#include "sandbox/profile.hpp"
#include "shellcode/analyzer.hpp"
#include "shellcode/builder.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"

namespace {

using namespace repro;

void BM_Md5(benchmark::State& state) {
  Rng rng{1};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  rng.fill(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(1024)->Arg(65536);

pe::PeTemplate bench_template() {
  pe::PeTemplate tmpl;
  tmpl.sections.push_back(pe::SectionSpec{
      ".text", pe::kSectionCode | pe::kSectionExecute,
      std::vector<std::uint8_t>(4096, 0x90), false});
  tmpl.sections.push_back(
      pe::SectionSpec{"rdata", pe::kSectionInitializedData, {}, true});
  tmpl.sections.push_back(pe::SectionSpec{
      ".data", pe::kSectionInitializedData,
      std::vector<std::uint8_t>(2048, 0), false});
  tmpl.imports.push_back(
      pe::ImportSpec{"KERNEL32.dll", {"GetProcAddress", "LoadLibraryA"}});
  tmpl.target_file_size = 16384;
  return tmpl;
}

void BM_PeBuild(benchmark::State& state) {
  const auto tmpl = bench_template();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe::build_pe(tmpl));
  }
}
BENCHMARK(BM_PeBuild);

void BM_PeParse(benchmark::State& state) {
  const auto image = pe::build_pe(bench_template());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe::parse_pe(image));
  }
}
BENCHMARK(BM_PeParse);

void BM_Lcs(benchmark::State& state) {
  Rng rng{2};
  proto::Bytes a(static_cast<std::size_t>(state.range(0)));
  proto::Bytes b(static_cast<std::size_t>(state.range(0)));
  rng.fill(a);
  rng.fill(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::longest_common_subsequence(a, b));
  }
}
BENCHMARK(BM_Lcs)->Arg(64)->Arg(256);

void BM_FsmMatch(benchmark::State& state) {
  Rng rng{3};
  std::vector<proto::Conversation> training;
  for (std::uint32_t impl = 0; impl < 20; ++impl) {
    const auto tmpl =
        proto::make_exploit_template(proto::ServiceKind::kSmb445, impl);
    const auto loc = proto::payload_location(tmpl);
    for (int i = 0; i < 4; ++i) {
      training.push_back(proto::strip_payload(
          proto::synthesize_attack(
              tmpl, proto::to_bytes("P" + rng.alnum(20)),
              net::Ipv4{static_cast<std::uint32_t>(rng.next())},
              net::Ipv4{10, 0, 0, 1}, rng),
          loc));
    }
  }
  const proto::Fsm fsm = proto::Fsm::learn(training);
  const auto probe_tmpl =
      proto::make_exploit_template(proto::ServiceKind::kSmb445, 11);
  const auto probe = proto::synthesize_attack(
      probe_tmpl, proto::to_bytes("PAYLOAD"), net::Ipv4{9, 9, 9, 9},
      net::Ipv4{10, 0, 0, 1}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm.match(probe));
  }
}
BENCHMARK(BM_FsmMatch);

void BM_ShellcodeAnalyze(benchmark::State& state) {
  Rng rng{4};
  shellcode::DownloadIntent intent;
  intent.protocol = shellcode::Protocol::kHttp;
  intent.port = 80;
  intent.host = net::Ipv4{85, 14, 27, 9};
  intent.filename = "update.exe";
  const auto payload =
      shellcode::build_shellcode(intent, shellcode::EncoderOptions{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shellcode::analyze_shellcode(payload));
  }
}
BENCHMARK(BM_ShellcodeAnalyze);

void BM_Jaccard(benchmark::State& state) {
  sandbox::BehavioralProfile a;
  sandbox::BehavioralProfile b;
  for (int i = 0; i < 30; ++i) {
    a.add("feature" + std::to_string(i));
    b.add("feature" + std::to_string(i + 10));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sandbox::jaccard(a, b));
  }
}
BENCHMARK(BM_Jaccard);

void BM_MinHashSignature(benchmark::State& state) {
  Rng rng{5};
  const cluster::MinHasher hasher{100, 1};
  std::vector<std::uint64_t> ids(30);
  for (auto& id : ids) id = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.signature(ids));
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_EpmCluster(benchmark::State& state) {
  // Synthetic mu-like matrix: n rows, 11 features, mixed invariants.
  Rng rng{6};
  cluster::DimensionData data;
  data.schema = cluster::mu_schema();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    cluster::FeatureVector row;
    row.values.push_back(rng.alnum(32));  // unique md5
    row.values.push_back(std::to_string(4608 + 512 * rng.index(80)));
    for (int f = 0; f < 9; ++f) {
      row.values.push_back("v" + std::to_string(rng.index(6)));
    }
    data.instances.push_back(std::move(row));
    data.contexts.push_back(cluster::InstanceContext{
        net::Ipv4{static_cast<std::uint32_t>(rng.index(500))},
        net::Ipv4{static_cast<std::uint32_t>(rng.index(150) + 1000)}});
    data.event_ids.push_back(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::epm_cluster(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EpmCluster)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
