// CLI driver: the fault-hardened query daemon.
//
// Streams the paper dataset through the durable epoch loop (same WAL +
// epoch-checkpoint machinery as `build_paper_dataset --wal-dir`) while
// answering analyst queries on a loopback TCP port:
//
//   serve_landscape --scale 0.25 --epochs 4 --wal-dir wal
//       --checkpoint-dir ckpt --port 4817 --faults paper
//
// then `printf 'lookup <md5>\n' | nc 127.0.0.1 4817`. Queries answered
// before the first epoch completes get a typed "ERR UNAVAILABLE"; each
// completed epoch is hot-swapped in atomically. After the stream
// finishes the daemon keeps serving the final view until SIGTERM or
// SIGINT, then drains gracefully: stop accepting, answer everything in
// flight and admitted, exit 0. Kill it with SIGKILL instead and rerun —
// the WAL and checkpoints resume the build and the served answers come
// out byte-identical (the kill-anywhere serving guarantee pinned by
// tests/serve_test and bench_serve).
//
// Exit status: 0 on clean shutdown, 2 on a usage error, 1 on failure.

#include <atomic>
#include <csignal>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "cluster/backend.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "scenario/serve.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"

namespace {

/// SIGTERM/SIGINT flag; the linger loop in serve_streaming_dataset
/// polls it. Plain store — async-signal-safe by construction.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) {
  // Lone stop flag set from a signal handler; no data is published
  // through it and the linger loop tolerates any store-to-poll delay.
  // repro-lint: allow(RL008) stop flag publishes no data
  g_stop.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  repro::scenario::ScenarioOptions scenario;
  repro::scenario::StreamOptions stream;
  repro::scenario::ServeRunOptions run;
  std::string metrics_out;
  bool once = false;  // exit after the stream completes (no linger)
};

void usage(std::ostream& os) {
  os << "usage: serve_landscape [options]\n"
        "  --seed N               scenario seed (default 2008)\n"
        "  --scale X              event-rate scale (default 1.0)\n"
        "  --threads N            pool width, 0 = hardware (default 0)\n"
        "  --cluster-backend B    B-clustering backend: lsh, exact, or\n"
        "                         kmeans (default lsh; non-single-linkage\n"
        "                         backends need --full-recluster)\n"
        "  --faults none|paper    fault plan incl. serve sites"
        " (default none)\n"
        "  --checkpoint-dir DIR   crash-safe epoch snapshots\n"
        "  --epochs N             epoch batches (default 4)\n"
        "  --wal-dir DIR          WAL segment directory (required)\n"
        "  --full-recluster       full E/P/M/B recompute per epoch\n"
        "  --port N               TCP port, 0 = ephemeral (default 0)\n"
        "  --workers N            serving worker threads (default 2)\n"
        "  --admission N          admission queue capacity (default 16)\n"
        "  --deadline-ms N        per-request budget (default 1000)\n"
        "  --debug-commands       enable the `slow <ms>` bench verb\n"
        "  --once                 exit after the stream (no SIGTERM wait)\n"
        "  --metrics-out FILE     deterministic-channel metrics JSON\n"
        "  --help                 this text\n";
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string_view {
      if (i + 1 >= argc) {
        throw repro::ConfigError(std::string{arg} + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--seed") {
      cli.scenario.seed = repro::parse_u64(value(), "--seed");
    } else if (arg == "--scale") {
      cli.scenario.scale = repro::parse_f64(value(), "--scale");
    } else if (arg == "--threads") {
      cli.scenario.threads =
          static_cast<std::size_t>(repro::parse_u64(value(), "--threads"));
    } else if (arg == "--cluster-backend") {
      cli.scenario.b_backend =
          repro::cluster::backend_from_name(value()).kind();
    } else if (arg == "--faults") {
      const std::string_view plan = value();
      if (plan == "none") {
        cli.scenario.faults = {};
      } else if (plan == "paper") {
        cli.scenario.faults = repro::fault::FaultPlan::paper_calibrated();
      } else {
        throw repro::ConfigError("--faults must be 'none' or 'paper'");
      }
    } else if (arg == "--checkpoint-dir") {
      cli.scenario.checkpoint.directory = std::string{value()};
    } else if (arg == "--epochs") {
      cli.stream.epochs =
          static_cast<std::size_t>(repro::parse_u64(value(), "--epochs"));
    } else if (arg == "--wal-dir") {
      cli.stream.wal_dir = std::string{value()};
    } else if (arg == "--full-recluster") {
      cli.stream.incremental = false;
    } else if (arg == "--port") {
      cli.run.server.port = repro::parse_u16(value(), "--port");
    } else if (arg == "--workers") {
      cli.run.server.workers =
          static_cast<std::size_t>(repro::parse_u64(value(), "--workers"));
    } else if (arg == "--admission") {
      cli.run.server.admission_capacity =
          static_cast<std::size_t>(repro::parse_u64(value(), "--admission"));
    } else if (arg == "--deadline-ms") {
      cli.run.server.request_deadline_ms =
          repro::parse_i64(value(), "--deadline-ms");
    } else if (arg == "--debug-commands") {
      cli.run.server.enable_debug_commands = true;
    } else if (arg == "--once") {
      cli.once = true;
    } else if (arg == "--metrics-out") {
      cli.metrics_out = std::string{value()};
    } else {
      throw repro::ConfigError("unknown option: " + std::string{arg});
    }
  }
  if (cli.stream.wal_dir.empty()) {
    throw repro::ConfigError("--wal-dir is required");
  }
  return cli;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw repro::IoError("cannot open " + path);
  os << contents;
  if (!os.flush()) throw repro::IoError("cannot write " + path);
}

int run(int argc, char** argv) {
  CliOptions cli = parse_cli(argc, argv);

  repro::obs::MetricsRegistry metrics;
  if (!cli.metrics_out.empty()) cli.scenario.metrics = &metrics;

  // The daemon's fault sites roll on its own injector: the pipeline
  // underneath attaches one only when a pipeline site can fire (see
  // FaultPlan::pipeline_empty), so serve faults never touch the
  // dataset.
  repro::fault::FaultInjector serve_faults{cli.scenario.faults};
  cli.run.server.faults = &serve_faults;

  struct sigaction action = {};
  action.sa_handler = handle_stop_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  if (!cli.once) cli.run.stop = &g_stop;
  cli.run.on_ready = [](std::uint16_t port) {
    std::cout << "serving on 127.0.0.1:" << port << std::endl;
  };

  const repro::scenario::ServeOutcome outcome =
      repro::scenario::serve_streaming_dataset(cli.scenario, cli.stream,
                                               cli.run);

  if (!cli.metrics_out.empty()) {
    write_file(cli.metrics_out,
               metrics.to_json(repro::obs::Channel::kDeterministic));
  }
  const repro::serve::ServeReport& sr = outcome.serve;
  std::cerr << "serve: " << sr.requests << " requests, " << sr.replies_ok
            << " ok, " << sr.replies_err << " err, " << sr.busy_sheds
            << " shed, " << sr.timeouts << " timeouts, " << sr.disconnects
            << " disconnects, " << sr.epoch_swaps << " epoch swaps\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const repro::ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n';
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
