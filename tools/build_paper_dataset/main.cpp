// CLI driver: builds the paper dataset end-to-end and exports it.
//
// One-shot batch build by default; `--epochs N --wal-dir DIR` switches
// to the durable streaming epoch loop (crash-safe WAL + epoch
// checkpoints — kill this process at any point and rerun the same
// command to resume; the exports come out byte-identical either way).
//
//   build_paper_dataset --scale 0.25 --threads 8
//       --faults paper --checkpoint-dir ckpt --epochs 4 --wal-dir wal
//       --export-dir out --metrics-out metrics.json --report
//
// Exit status: 0 on success, 2 on a usage error, 1 on any pipeline
// failure. `--kill-after-records N` is the crash-loop harness's seam:
// the process SIGKILLs itself after the Nth durable WAL append.

#include <csignal>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <unistd.h>
#include <vector>

#include "cluster/backend.hpp"
#include "fault/plan.hpp"
#include "io/csv_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/landscape_report.hpp"
#include "scenario/paper.hpp"
#include "scenario/stream.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"

namespace {

using repro::scenario::Dataset;

struct CliOptions {
  repro::scenario::ScenarioOptions scenario;
  repro::scenario::StreamOptions stream;
  bool streaming = false;
  std::uint64_t kill_after_records = 0;
  std::string export_dir;
  std::string metrics_out;
  std::string trace_out;
  bool report = false;
};

void usage(std::ostream& os) {
  os << "usage: build_paper_dataset [options]\n"
        "  --seed N               scenario seed (default 2008)\n"
        "  --scale X              event-rate scale (default 1.0)\n"
        "  --threads N            pool width, 0 = hardware (default 0)\n"
        "  --cluster-backend B    B-clustering backend: lsh, exact, or\n"
        "                         kmeans (default lsh)\n"
        "  --faults none|paper    fault-injection plan (default none)\n"
        "  --checkpoint-dir DIR   crash-safe stage/epoch snapshots\n"
        "  --epochs N             streaming mode: epoch batches (with"
        " --wal-dir)\n"
        "  --wal-dir DIR          streaming mode: WAL segment directory\n"
        "  --full-recluster       streaming mode: full E/P/M/B recompute"
        " per epoch\n"
        "                         (instead of the incremental default)\n"
        "  --verify-incremental   streaming mode: run both paths per epoch"
        " and\n"
        "                         byte-diff their results (fails loudly)\n"
        "  --kill-after-records N SIGKILL self after Nth WAL append"
        " (crash harness)\n"
        "  --export-dir DIR       write events/samples/clusters/profiles\n"
        "  --metrics-out FILE     deterministic-channel metrics JSON\n"
        "  --trace-out FILE       wall-clock trace JSON (runtime channel)\n"
        "  --report               print the landscape report\n"
        "  --help                 this text\n";
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions cli;
  bool have_epochs = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string_view {
      if (i + 1 >= argc) {
        throw repro::ConfigError(std::string{arg} + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else if (arg == "--seed") {
      cli.scenario.seed = repro::parse_u64(value(), "--seed");
    } else if (arg == "--scale") {
      cli.scenario.scale = repro::parse_f64(value(), "--scale");
    } else if (arg == "--threads") {
      cli.scenario.threads =
          static_cast<std::size_t>(repro::parse_u64(value(), "--threads"));
    } else if (arg == "--cluster-backend") {
      cli.scenario.b_backend =
          repro::cluster::backend_from_name(value()).kind();
    } else if (arg == "--faults") {
      const std::string_view plan = value();
      if (plan == "none") {
        cli.scenario.faults = {};
      } else if (plan == "paper") {
        cli.scenario.faults = repro::fault::FaultPlan::paper_calibrated();
      } else {
        throw repro::ConfigError("--faults must be 'none' or 'paper'");
      }
    } else if (arg == "--checkpoint-dir") {
      cli.scenario.checkpoint.directory = std::string{value()};
    } else if (arg == "--epochs") {
      cli.stream.epochs =
          static_cast<std::size_t>(repro::parse_u64(value(), "--epochs"));
      have_epochs = true;
    } else if (arg == "--wal-dir") {
      cli.stream.wal_dir = std::string{value()};
    } else if (arg == "--full-recluster") {
      cli.stream.incremental = false;
    } else if (arg == "--verify-incremental") {
      cli.stream.verify_incremental = true;
    } else if (arg == "--kill-after-records") {
      cli.kill_after_records =
          repro::parse_u64(value(), "--kill-after-records");
    } else if (arg == "--export-dir") {
      cli.export_dir = std::string{value()};
    } else if (arg == "--metrics-out") {
      cli.metrics_out = std::string{value()};
    } else if (arg == "--trace-out") {
      cli.trace_out = std::string{value()};
    } else if (arg == "--report") {
      cli.report = true;
    } else {
      throw repro::ConfigError("unknown option: " + std::string{arg});
    }
  }
  cli.streaming = have_epochs || !cli.stream.wal_dir.empty();
  if (cli.streaming && cli.stream.wal_dir.empty()) {
    throw repro::ConfigError("--epochs requires --wal-dir");
  }
  if (cli.kill_after_records != 0 && !cli.streaming) {
    throw repro::ConfigError("--kill-after-records requires --wal-dir");
  }
  if (!cli.streaming &&
      (!cli.stream.incremental || cli.stream.verify_incremental)) {
    throw repro::ConfigError(
        "--full-recluster/--verify-incremental require --wal-dir");
  }
  return cli;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream os{path, std::ios::binary};
  if (!os) throw repro::IoError("cannot open " + path);
  os << contents;
  if (!os.flush()) throw repro::IoError("cannot write " + path);
}

void export_dataset(const std::string& dir, const Dataset& ds) {
  std::filesystem::create_directories(dir);
  const auto open = [&](const char* name) {
    std::ofstream os{std::filesystem::path{dir} / name, std::ios::binary};
    if (!os) {
      throw repro::IoError("cannot open " + (std::filesystem::path{dir} / name)
                                                .string());
    }
    return os;
  };
  {
    auto os = open("events.csv");
    repro::io::write_events_csv(os, ds.db, ds.e, ds.p, ds.m, ds.b);
  }
  {
    auto os = open("samples.csv");
    repro::io::write_samples_csv(os, ds.db, ds.b);
  }
  {
    auto os = open("clusters_e.csv");
    repro::io::write_clusters_csv(os, ds.e);
  }
  {
    auto os = open("clusters_p.csv");
    repro::io::write_clusters_csv(os, ds.p);
  }
  {
    auto os = open("clusters_m.csv");
    repro::io::write_clusters_csv(os, ds.m);
  }
  {
    auto os = open("profiles.jsonl");
    repro::io::write_profiles_jsonl(os, ds.db);
  }
}

int run(int argc, char** argv) {
  CliOptions cli = parse_cli(argc, argv);

  repro::obs::MetricsRegistry metrics;
  repro::obs::TraceRecorder trace;
  if (!cli.metrics_out.empty()) cli.scenario.metrics = &metrics;
  if (!cli.trace_out.empty() || cli.report) {
    cli.scenario.metrics = cli.scenario.metrics != nullptr
                               ? cli.scenario.metrics
                               : &metrics;
    cli.scenario.trace = &trace;
  }
  if (cli.report) cli.scenario.metrics = &metrics;

  if (cli.kill_after_records != 0) {
    const std::uint64_t at = cli.kill_after_records;
    cli.stream.after_append = [at](std::uint64_t appended) {
      if (appended >= at) {
        // The whole point: die without unwinding, exactly as a power
        // cut would. The WAL append before us is already durable.
        ::kill(::getpid(), SIGKILL);
        ::_exit(137);  // unreachable unless SIGKILL is blocked
      }
    };
  }

  const Dataset ds =
      cli.streaming
          ? repro::scenario::build_streaming_dataset(cli.scenario, cli.stream)
          : repro::scenario::build_paper_dataset(cli.scenario);

  if (cli.stream.verify_incremental) {
    std::cout << "verify-incremental: " << ds.ingest.epochs_verified
              << " epoch(s) byte-identical to the full recompute\n";
  }
  if (!cli.export_dir.empty()) export_dataset(cli.export_dir, ds);
  if (!cli.metrics_out.empty()) {
    write_file(cli.metrics_out,
               metrics.to_json(repro::obs::Channel::kDeterministic));
  }
  if (!cli.trace_out.empty()) {
    write_file(cli.trace_out, trace.to_json(&metrics));
  }
  if (cli.report) {
    repro::report::LandscapeReportOptions report_options;
    report_options.origin = ds.landscape.start_time;
    report_options.weeks = ds.landscape.weeks;
    std::cout << repro::report::landscape_report(ds.db, ds.e, ds.p, ds.m,
                                                 ds.b, report_options)
              << '\n'
              << metrics.render_summary() << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const repro::ConfigError& e) {
    std::cerr << "error: " << e.what() << '\n';
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
