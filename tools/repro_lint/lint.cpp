#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

namespace repro::lint {

namespace {

// ----------------------------------------------------------------- lexer

enum class TokKind { kIdentifier, kNumber, kString, kCharLit, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line -> rule ids allowed on that line by inline suppressions.
  std::map<int, std::set<std::string, std::less<>>> allows;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

std::string_view trimmed(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

/// Records `// repro-lint: allow(RL001, RL002) reason` suppressions.
/// A comment sharing its line with code covers that line; a comment
/// standing alone covers the next line too.
void record_allows(LexedFile& out, std::string_view comment, int line,
                   bool comment_only_line) {
  const std::size_t tag = comment.find("repro-lint:");
  if (tag == std::string_view::npos) return;
  const std::size_t open = comment.find("allow(", tag);
  if (open == std::string_view::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(open + 6, close - open - 6);
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view rule =
        trimmed(comma == std::string_view::npos ? list : list.substr(0, comma));
    if (!rule.empty()) {
      out.allows[line].emplace(rule);
      if (comment_only_line) out.allows[line + 1].emplace(rule);
    }
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

/// Multi-char punctuators the rules care about; everything else lexes
/// as single characters. `::` must be one token so a lone `:` reliably
/// marks a range-for.
constexpr std::string_view kPunct2[] = {
    "::", "==", "!=", "<=", ">=", "->", "++", "--", "&&",
    "||", "<<", ">>", "+=", "-=", "*=", "/=", "|=", "&=",
};

LexedFile lex(std::string_view src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto line_has_code = [&] {
    return !out.tokens.empty() && out.tokens.back().line == line;
  };
  const auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment (and suppression carrier).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      record_allows(out, src.substr(i, end - i), line, !line_has_code());
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = (end == std::string_view::npos) ? n : end + 2;
      for (std::size_t j = i; j < end; ++j) {
        if (src[j] == '\n') ++line;
      }
      i = end;
      continue;
    }
    // String literal (escapes honored); content never reaches rules.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(TokKind::kString, "\"\"");
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      push(TokKind::kCharLit, "''");
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string text{src.substr(i, j - i)};
      // Raw string literal: R"( ... )" (also u8R, uR, UR, LR prefixes).
      if (j < n && src[j] == '"' &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR")) {
        const std::size_t open = src.find('(', j);
        if (open != std::string_view::npos) {
          const std::string delim =
              ")" + std::string{src.substr(j + 1, open - j - 1)} + "\"";
          std::size_t end = src.find(delim, open);
          end = (end == std::string_view::npos) ? n : end + delim.size();
          for (std::size_t k = j; k < end; ++k) {
            if (src[k] == '\n') ++line;
          }
          push(TokKind::kString, "\"\"");
          i = end;
          continue;
        }
      }
      push(TokKind::kIdentifier, std::move(text));
      i = j;
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(TokKind::kNumber, std::string{src.substr(i, j - i)});
      i = j;
      continue;
    }
    bool matched = false;
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      for (const std::string_view op : kPunct2) {
        if (two == op) {
          push(TokKind::kPunct, std::string{two});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(TokKind::kPunct, std::string{c});
      ++i;
    }
  }
  return out;
}

// ----------------------------------------------------------- rule engine

struct RuleDef {
  std::string_view id;
  std::string_view summary;
};

constexpr RuleDef kRules[] = {
    {"RL001",
     "unchecked numeric parsing (stoi/atoi/strtol/sscanf family); use "
     "repro::parse_* from util/parse.hpp"},
    {"RL002",
     "wall-clock or global-RNG nondeterminism (time/rand/random_device/"
     "chrono clocks) outside util/rng and util/simtime"},
    {"RL003",
     "range-for over unordered containers on export or clustering paths "
     "(src/io, src/report, src/snapshot, src/cluster, src/ingest, "
     "src/serve); use repro::sorted_keys/sorted_items"},
    {"RL004",
     "raw std:: exception throw; translate to repro::ParseError / "
     "ConfigError / IoError"},
    {"RL005",
     "floating-point == or != in clustering metrics (src/cluster); compare "
     "against an epsilon"},
    {"RL006",
     "direct <chrono> use outside src/obs and util/simtime; all wall-clock "
     "access goes through the audited obs/stopwatch seam"},
};

const std::set<std::string_view> kParseFns = {
    "stoi",    "stol",    "stoll",   "stoul",   "stoull", "stof",
    "stod",    "stold",   "atoi",    "atol",    "atoll",  "atof",
    "strtol",  "strtoul", "strtoll", "strtoull", "strtof", "strtod",
    "strtold", "sscanf",  "fscanf",  "scanf",
};

const std::set<std::string_view> kNondetIdents = {
    "rand",          "srand",        "random_device",
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "localtime",    "gmtime",
};

const std::set<std::string_view> kNondetCalls = {"time", "clock"};

const std::set<std::string_view> kStdExceptions = {
    "runtime_error", "logic_error",     "invalid_argument",
    "out_of_range",  "domain_error",    "length_error",
    "range_error",   "overflow_error",  "underflow_error",
};

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/// Normalizes to forward slashes so directory gating works on any host.
std::string normalized(std::string_view path) {
  std::string out{path};
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool in_dir(const std::string& path, std::string_view dir) {
  return path.find(std::string{"/"} + std::string{dir} + "/") !=
         std::string::npos;
}

struct Checker {
  const std::string path;
  const LexedFile& lx;
  const Options& options;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool rule_enabled(std::string_view rule) const {
    return options.only.empty() || options.only.count(rule) > 0;
  }

  [[nodiscard]] bool suppressed(int line, std::string_view rule) const {
    const auto it = lx.allows.find(line);
    return it != lx.allows.end() && it->second.count(rule) > 0;
  }

  void emit(int line, std::string_view rule, std::string message,
            std::string suggestion) {
    if (!rule_enabled(rule) || suppressed(line, rule)) return;
    diagnostics.push_back(Diagnostic{path, line, std::string{rule},
                                     std::move(message),
                                     std::move(suggestion)});
  }

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < lx.tokens.size() ? &lx.tokens[i] : nullptr;
  }

  [[nodiscard]] bool punct_at(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == TokKind::kPunct && t->text == text;
  }

  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    const Token& prev = lx.tokens[i - 1];
    return prev.kind == TokKind::kPunct &&
           (prev.text == "." || prev.text == "->");
  }

  // RL001 — unchecked numeric parsing.
  void check_parse_calls() {
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || kParseFns.count(t.text) == 0) {
        continue;
      }
      if (!punct_at(i + 1, "(") || member_access_before(i)) continue;
      emit(t.line, "RL001",
           "unchecked numeric parsing via " + t.text +
               "() — silently accepts prefixes and leaks "
               "std::invalid_argument/out_of_range on hostile input",
           "replace with repro::parse_u16/parse_u32/parse_i32/... "
           "(util/parse.hpp): full-string match, throws ParseError with "
           "context");
    }
  }

  // RL002 — wall-clock / global-RNG nondeterminism.
  void check_nondeterminism() {
    if (in_dir(path, "util") &&
        (path.find("/rng.") != std::string::npos ||
         path.find("/simtime.") != std::string::npos)) {
      return;
    }
    // obs/stopwatch is the audited wall-clock seam: the one place a
    // real clock identifier may legitimately appear.
    if (in_dir(path, "obs") &&
        path.find("/stopwatch.") != std::string::npos) {
      return;
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier) continue;
      const bool banned_ident = kNondetIdents.count(t.text) > 0;
      const bool banned_call = kNondetCalls.count(t.text) > 0 &&
                               punct_at(i + 1, "(") &&
                               !member_access_before(i);
      if (!banned_ident && !banned_call) continue;
      emit(t.line, "RL002",
           "nondeterminism source '" + t.text +
               "' — wall-clock time and global RNG state make runs "
               "non-reproducible",
           "thread a seeded repro::Rng (util/rng.hpp) or SimTime "
           "(util/simtime.hpp) through the call site instead");
    }
  }

  // RL003 — unordered iteration on export paths, and since the
  // clustering stages went parallel, on src/cluster too: a hash-order
  // walk there decides tie-breaks (metric sums, candidate ordering)
  // that must not vary run to run or with thread width. src/ingest is
  // gated for the same reason: WAL bytes are replayed for byte-identity
  // and recovery scans feed deterministic counters, so nothing on that
  // path may depend on hash order.
  void check_unordered_iteration() {
    if (!in_dir(path, "io") && !in_dir(path, "report") &&
        !in_dir(path, "snapshot") && !in_dir(path, "cluster") &&
        !in_dir(path, "ingest") && !in_dir(path, "serve")) {
      return;
    }
    // Pass 1: names declared with an unordered_* type in this file.
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || kUnorderedTypes.count(t.text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (punct_at(j, "<")) {
        int depth = 0;
        for (; j < lx.tokens.size(); ++j) {
          const Token& u = lx.tokens[j];
          if (u.kind != TokKind::kPunct) continue;
          if (u.text == "<") ++depth;
          if (u.text == ">") --depth;
          if (u.text == ">>") depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
      while (j < lx.tokens.size()) {
        const Token& u = lx.tokens[j];
        if (u.kind == TokKind::kPunct && (u.text == "&" || u.text == "*")) {
          ++j;
        } else if (u.kind == TokKind::kIdentifier && u.text == "const") {
          ++j;
        } else {
          break;
        }
      }
      const Token* name = at(j);
      if (name != nullptr && name->kind == TokKind::kIdentifier) {
        unordered_names.insert(name->text);
      }
    }
    // Pass 2: range-fors whose range expression names one of them.
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "for" ||
          !punct_at(i + 1, "(")) {
        continue;
      }
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < lx.tokens.size(); ++j) {
        const Token& u = lx.tokens[j];
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "(") ++depth;
        if (u.text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (u.text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        const Token& u = lx.tokens[j];
        if (u.kind != TokKind::kIdentifier) continue;
        if (unordered_names.count(u.text) == 0 &&
            kUnorderedTypes.count(u.text) == 0) {
          continue;
        }
        emit(t.line, "RL003",
             "range-for over unordered container '" + u.text +
                 "' on an export path — hash-seed iteration order leaks "
                 "into serialized output",
             "iterate repro::sorted_keys(" + u.text + ") / sorted_items(" +
                 u.text + ") (util/sorted.hpp), or store in std::map");
        break;
      }
    }
  }

  // RL006 — direct <chrono> use outside the sanctioned modules. RL002
  // catches the clock *identifiers*; this rule catches the header and
  // any chrono-qualified name (duration arithmetic, literals scopes),
  // so timing code cannot creep in under aliases the identifier list
  // does not know about.
  void check_chrono_quarantine() {
    if (in_dir(path, "obs")) return;
    if (in_dir(path, "util") &&
        path.find("/simtime.") != std::string::npos) {
      return;
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "chrono") continue;
      const bool include_directive =
          i >= 3 && punct_at(i - 1, "<") && at(i - 2)->text == "include" &&
          punct_at(i - 3, "#") && punct_at(i + 1, ">");
      const bool qualified_use = punct_at(i + 1, "::");
      if (!include_directive && !qualified_use) continue;
      emit(t.line, "RL006",
           include_directive
               ? std::string{"direct #include <chrono> — wall-clock access "
                             "is quarantined to the obs/stopwatch seam"}
               : std::string{"chrono:: qualified name — wall-clock access "
                             "is quarantined to the obs/stopwatch seam"},
           "take timings via obs::monotonic_now_ns()/obs::Stopwatch "
           "(src/obs/stopwatch.hpp), or simulated time via SimTime "
           "(util/simtime.hpp)");
    }
  }

  // RL004 — raw std:: exception throws.
  void check_raw_throws() {
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "throw") continue;
      std::size_t j = i + 1;
      const Token* next = at(j);
      if (next != nullptr && next->kind == TokKind::kIdentifier &&
          next->text == "std" && punct_at(j + 1, "::")) {
        j += 2;
      }
      const Token* name = at(j);
      if (name == nullptr || name->kind != TokKind::kIdentifier ||
          kStdExceptions.count(name->text) == 0 || !punct_at(j + 1, "(")) {
        continue;
      }
      emit(t.line, "RL004",
           "raw std::" + name->text +
               " thrown — callers at parse boundaries dispatch on the "
               "repo's typed errors and will not recover from this",
           "throw repro::ParseError (malformed input), repro::ConfigError "
           "(inconsistent configuration) or repro::IoError (OS failure) "
           "from util/error.hpp");
    }
  }

  // RL005 — float equality in clustering metrics.
  void check_float_equality() {
    if (!in_dir(path, "cluster")) return;
    const auto is_float_literal = [](const Token& t) {
      if (t.kind != TokKind::kNumber) return false;
      if (t.text.size() > 1 && (t.text[1] == 'x' || t.text[1] == 'X')) {
        return false;
      }
      return t.text.find('.') != std::string::npos ||
             t.text.find('e') != std::string::npos ||
             t.text.find('E') != std::string::npos ||
             t.text.back() == 'f' || t.text.back() == 'F';
    };
    std::set<std::string> float_names;
    for (std::size_t i = 0; i + 1 < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier ||
          (t.text != "double" && t.text != "float")) {
        continue;
      }
      const Token& next = lx.tokens[i + 1];
      if (next.kind == TokKind::kIdentifier && next.text != "const") {
        float_names.insert(next.text);
      }
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kPunct || (t.text != "==" && t.text != "!=")) {
        continue;
      }
      const auto is_float_operand = [&](const Token* side) {
        if (side == nullptr) return false;
        if (is_float_literal(*side)) return true;
        return side->kind == TokKind::kIdentifier &&
               float_names.count(side->text) > 0;
      };
      if (!is_float_operand(i > 0 ? &lx.tokens[i - 1] : nullptr) &&
          !is_float_operand(at(i + 1))) {
        continue;
      }
      emit(t.line, "RL005",
           "floating-point '" + t.text +
               "' in clustering metrics — exact equality on similarity "
               "scores is input-perturbation-fragile",
           "compare std::abs(a - b) against an explicit epsilon, or make "
           "the sentinel an integer");
    }
  }
};

}  // namespace

std::vector<std::pair<std::string, std::string>> rule_catalog() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const RuleDef& rule : kRules) {
    out.emplace_back(std::string{rule.id}, std::string{rule.summary});
  }
  return out;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    std::string_view content,
                                    const Options& options) {
  const LexedFile lx = lex(content);
  Checker checker{normalized(path), lx, options, {}};
  checker.check_parse_calls();
  checker.check_nondeterminism();
  checker.check_chrono_quarantine();
  checker.check_unordered_iteration();
  checker.check_raw_throws();
  checker.check_float_equality();
  std::stable_sort(checker.diagnostics.begin(), checker.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line != b.line ? a.line < b.line
                                             : a.rule < b.rule;
                   });
  return std::move(checker.diagnostics);
}

namespace {

bool lintable_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("repro-lint: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

std::vector<Diagnostic> lint_path(const std::filesystem::path& path,
                                  const Options& options) {
  std::vector<std::filesystem::path> files;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(path)) {
      if (entry.is_regular_file() && lintable_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  } else {
    files.push_back(path);
  }
  std::sort(files.begin(), files.end());
  std::vector<Diagnostic> out;
  for (const std::filesystem::path& file : files) {
    std::vector<Diagnostic> found =
        lint_source(file.generic_string(), read_file(file), options);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

int run_cli(int argc, const char* const* argv) {
  Options options;
  bool fix_suggestions = false;
  std::vector<std::filesystem::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg.rfind("--only=", 0) == 0) {
      std::string_view list = arg.substr(7);
      while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view rule = trimmed(
            comma == std::string_view::npos ? list : list.substr(0, comma));
        if (!rule.empty()) options.only.emplace(rule);
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
    } else if (arg == "--list-rules") {
      for (const auto& [id, summary] : rule_catalog()) {
        std::cout << id << "  " << summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: repro_lint [--fix-suggestions] [--only=RL001,...] "
                   "[--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "repro-lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: repro_lint [--fix-suggestions] [--only=RL001,...] "
                 "<file-or-dir>...\n";
    return 2;
  }
  std::size_t total = 0;
  std::size_t files = 0;
  for (const std::filesystem::path& path : paths) {
    std::vector<Diagnostic> diagnostics;
    try {
      diagnostics = lint_path(path, options);
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 2;
    }
    ++files;
    for (const Diagnostic& d : diagnostics) {
      std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
                << d.message << "\n";
      if (fix_suggestions && !d.suggestion.empty()) {
        std::cout << "    suggestion: " << d.suggestion << "\n";
      }
    }
    total += diagnostics.size();
  }
  if (total == 0) {
    std::cerr << "repro-lint: clean\n";
    return 0;
  }
  std::cerr << "repro-lint: " << total << " diagnostic(s)\n";
  return 1;
}

}  // namespace repro::lint
