#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "index.hpp"
#include "lexer.hpp"
#include "util/error.hpp"

namespace repro::lint {

namespace {

// ----------------------------------------------------------- rule engine

struct RuleDef {
  std::string_view id;
  std::string_view summary;
};

constexpr RuleDef kRules[] = {
    {"RL001",
     "unchecked numeric parsing (stoi/atoi/strtol/sscanf family); use "
     "repro::parse_* from util/parse.hpp"},
    {"RL002",
     "wall-clock or global-RNG nondeterminism (time/rand/random_device/"
     "chrono clocks) outside util/rng and util/simtime"},
    {"RL003",
     "range-for over unordered containers on export or clustering paths "
     "(src/io, src/report, src/snapshot, src/cluster, src/ingest, "
     "src/serve); use repro::sorted_keys/sorted_items"},
    {"RL004",
     "raw std:: exception throw; translate to repro::ParseError / "
     "ConfigError / IoError"},
    {"RL005",
     "floating-point == or != in clustering metrics (src/cluster); compare "
     "against an epsilon"},
    {"RL006",
     "direct <chrono> use outside src/obs and util/simtime; all wall-clock "
     "access goes through the audited obs/stopwatch seam"},
    {"RL007",
     "lock-order cycle in the cross-TU lock acquisition graph; a cycle is "
     "a potential deadlock between pool, queues, WAL and serve workers"},
    {"RL008",
     "explicit non-seq_cst memory order or volatile without a written "
     "proof (// repro-lint: allow(RL008) <why the weaker order is safe>)"},
    {"RL009",
     "blocking call (fsync/read/write/accept/sleep/std::filesystem I/O or "
     "predicate-less condition-variable wait) inside a held lock scope, "
     "directly or one call level deep"},
    {"RL010",
     "rename on the durability path (src/ingest, src/snapshot) not "
     "dominated by an fsync of the written file and followed by a "
     "directory fsync"},
};

const std::set<std::string_view> kParseFns = {
    "stoi",    "stol",    "stoll",   "stoul",   "stoull", "stof",
    "stod",    "stold",   "atoi",    "atol",    "atoll",  "atof",
    "strtol",  "strtoul", "strtoll", "strtoull", "strtof", "strtod",
    "strtold", "sscanf",  "fscanf",  "scanf",
};

const std::set<std::string_view> kNondetIdents = {
    "rand",          "srand",        "random_device",
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "localtime",    "gmtime",
};

const std::set<std::string_view> kNondetCalls = {"time", "clock"};

const std::set<std::string_view> kStdExceptions = {
    "runtime_error", "logic_error",     "invalid_argument",
    "out_of_range",  "domain_error",    "length_error",
    "range_error",   "overflow_error",  "underflow_error",
};

const std::set<std::string_view> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

const std::set<std::string_view> kWeakOrders = {
    "memory_order_relaxed", "memory_order_acquire", "memory_order_release",
    "memory_order_acq_rel", "memory_order_consume",
};

const std::set<std::string_view> kWeakOrderTails = {
    "relaxed", "acquire", "release", "acq_rel", "consume",
};

/// Normalizes to forward slashes so directory gating works on any host.
std::string normalized(std::string_view path) {
  std::string out{path};
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool in_dir(const std::string& path, std::string_view dir) {
  return path.find(std::string{"/"} + std::string{dir} + "/") !=
         std::string::npos;
}

bool rule_enabled(const Options& options, std::string_view rule) {
  return options.only.empty() || options.only.count(rule) > 0;
}

bool suppressed(const LexedFile& lx, int line, std::string_view rule) {
  if (lx.file_allows.count(rule) > 0) return true;
  const auto it = lx.allows.find(line);
  return it != lx.allows.end() && it->second.count(rule) > 0;
}

// ----------------------------------------------- per-file rules (phase 2a)

struct Checker {
  const std::string& path;
  const LexedFile& lx;
  const Options& options;
  std::vector<Diagnostic>& diagnostics;

  void emit(int line, std::string_view rule, std::string message,
            std::string suggestion) {
    if (!rule_enabled(options, rule) || suppressed(lx, line, rule)) return;
    diagnostics.push_back(Diagnostic{path, line, std::string{rule},
                                     std::move(message),
                                     std::move(suggestion)});
  }

  [[nodiscard]] const Token* at(std::size_t i) const {
    return i < lx.tokens.size() ? &lx.tokens[i] : nullptr;
  }

  [[nodiscard]] bool punct_at(std::size_t i, std::string_view text) const {
    const Token* t = at(i);
    return t != nullptr && t->kind == TokKind::kPunct && t->text == text;
  }

  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    const Token& prev = lx.tokens[i - 1];
    return prev.kind == TokKind::kPunct &&
           (prev.text == "." || prev.text == "->");
  }

  // RL001 — unchecked numeric parsing.
  void check_parse_calls() {
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || kParseFns.count(t.text) == 0) {
        continue;
      }
      if (!punct_at(i + 1, "(") || member_access_before(i)) continue;
      emit(t.line, "RL001",
           "unchecked numeric parsing via " + t.text +
               "() — silently accepts prefixes and leaks "
               "std::invalid_argument/out_of_range on hostile input",
           "replace with repro::parse_u16/parse_u32/parse_i32/... "
           "(util/parse.hpp): full-string match, throws ParseError with "
           "context");
    }
  }

  // RL002 — wall-clock / global-RNG nondeterminism.
  void check_nondeterminism() {
    if (in_dir(path, "util") &&
        (path.find("/rng.") != std::string::npos ||
         path.find("/simtime.") != std::string::npos)) {
      return;
    }
    // obs/stopwatch is the audited wall-clock seam: the one place a
    // real clock identifier may legitimately appear.
    if (in_dir(path, "obs") &&
        path.find("/stopwatch.") != std::string::npos) {
      return;
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier) continue;
      const bool banned_ident = kNondetIdents.count(t.text) > 0;
      const bool banned_call = kNondetCalls.count(t.text) > 0 &&
                               punct_at(i + 1, "(") &&
                               !member_access_before(i);
      if (!banned_ident && !banned_call) continue;
      emit(t.line, "RL002",
           "nondeterminism source '" + t.text +
               "' — wall-clock time and global RNG state make runs "
               "non-reproducible",
           "thread a seeded repro::Rng (util/rng.hpp) or SimTime "
           "(util/simtime.hpp) through the call site instead");
    }
  }

  // RL003 — unordered iteration on export paths, and since the
  // clustering stages went parallel, on src/cluster too: a hash-order
  // walk there decides tie-breaks (metric sums, candidate ordering)
  // that must not vary run to run or with thread width. src/ingest is
  // gated for the same reason: WAL bytes are replayed for byte-identity
  // and recovery scans feed deterministic counters, so nothing on that
  // path may depend on hash order.
  void check_unordered_iteration() {
    if (!in_dir(path, "io") && !in_dir(path, "report") &&
        !in_dir(path, "snapshot") && !in_dir(path, "cluster") &&
        !in_dir(path, "ingest") && !in_dir(path, "serve")) {
      return;
    }
    // Pass 1: names declared with an unordered_* type in this file.
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || kUnorderedTypes.count(t.text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (punct_at(j, "<")) {
        int depth = 0;
        for (; j < lx.tokens.size(); ++j) {
          const Token& u = lx.tokens[j];
          if (u.kind != TokKind::kPunct) continue;
          if (u.text == "<") ++depth;
          if (u.text == ">") --depth;
          if (u.text == ">>") depth -= 2;
          if (depth <= 0) {
            ++j;
            break;
          }
        }
      }
      while (j < lx.tokens.size()) {
        const Token& u = lx.tokens[j];
        if (u.kind == TokKind::kPunct && (u.text == "&" || u.text == "*")) {
          ++j;
        } else if (u.kind == TokKind::kIdentifier && u.text == "const") {
          ++j;
        } else {
          break;
        }
      }
      const Token* name = at(j);
      if (name != nullptr && name->kind == TokKind::kIdentifier) {
        unordered_names.insert(name->text);
      }
    }
    // Pass 2: range-fors whose range expression names one of them.
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "for" ||
          !punct_at(i + 1, "(")) {
        continue;
      }
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < lx.tokens.size(); ++j) {
        const Token& u = lx.tokens[j];
        if (u.kind != TokKind::kPunct) continue;
        if (u.text == "(") ++depth;
        if (u.text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (u.text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        const Token& u = lx.tokens[j];
        if (u.kind != TokKind::kIdentifier) continue;
        if (unordered_names.count(u.text) == 0 &&
            kUnorderedTypes.count(u.text) == 0) {
          continue;
        }
        emit(t.line, "RL003",
             "range-for over unordered container '" + u.text +
                 "' on an export path — hash-seed iteration order leaks "
                 "into serialized output",
             "iterate repro::sorted_keys(" + u.text + ") / sorted_items(" +
                 u.text + ") (util/sorted.hpp), or store in std::map");
        break;
      }
    }
  }

  // RL006 — direct <chrono> use outside the sanctioned modules. RL002
  // catches the clock *identifiers*; this rule catches the header and
  // any chrono-qualified name (duration arithmetic, literals scopes),
  // so timing code cannot creep in under aliases the identifier list
  // does not know about.
  void check_chrono_quarantine() {
    if (in_dir(path, "obs")) return;
    if (in_dir(path, "util") &&
        path.find("/simtime.") != std::string::npos) {
      return;
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "chrono") continue;
      const bool include_directive =
          i >= 3 && punct_at(i - 1, "<") && at(i - 2)->text == "include" &&
          punct_at(i - 3, "#") && punct_at(i + 1, ">");
      const bool qualified_use = punct_at(i + 1, "::");
      if (!include_directive && !qualified_use) continue;
      emit(t.line, "RL006",
           include_directive
               ? std::string{"direct #include <chrono> — wall-clock access "
                             "is quarantined to the obs/stopwatch seam"}
               : std::string{"chrono:: qualified name — wall-clock access "
                             "is quarantined to the obs/stopwatch seam"},
           "take timings via obs::monotonic_now_ns()/obs::Stopwatch "
           "(src/obs/stopwatch.hpp), or simulated time via SimTime "
           "(util/simtime.hpp)");
    }
  }

  // RL004 — raw std:: exception throws.
  void check_raw_throws() {
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier || t.text != "throw") continue;
      std::size_t j = i + 1;
      const Token* next = at(j);
      if (next != nullptr && next->kind == TokKind::kIdentifier &&
          next->text == "std" && punct_at(j + 1, "::")) {
        j += 2;
      }
      const Token* name = at(j);
      if (name == nullptr || name->kind != TokKind::kIdentifier ||
          kStdExceptions.count(name->text) == 0 || !punct_at(j + 1, "(")) {
        continue;
      }
      emit(t.line, "RL004",
           "raw std::" + name->text +
               " thrown — callers at parse boundaries dispatch on the "
               "repo's typed errors and will not recover from this",
           "throw repro::ParseError (malformed input), repro::ConfigError "
           "(inconsistent configuration) or repro::IoError (OS failure) "
           "from util/error.hpp");
    }
  }

  // RL005 — float equality in clustering metrics.
  void check_float_equality() {
    if (!in_dir(path, "cluster")) return;
    const auto is_float_literal = [](const Token& t) {
      if (t.kind != TokKind::kNumber) return false;
      if (t.text.size() > 1 && (t.text[1] == 'x' || t.text[1] == 'X')) {
        return false;
      }
      return t.text.find('.') != std::string::npos ||
             t.text.find('e') != std::string::npos ||
             t.text.find('E') != std::string::npos ||
             t.text.back() == 'f' || t.text.back() == 'F';
    };
    std::set<std::string> float_names;
    for (std::size_t i = 0; i + 1 < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier ||
          (t.text != "double" && t.text != "float")) {
        continue;
      }
      const Token& next = lx.tokens[i + 1];
      if (next.kind == TokKind::kIdentifier && next.text != "const") {
        float_names.insert(next.text);
      }
    }
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kPunct || (t.text != "==" && t.text != "!=")) {
        continue;
      }
      const auto is_float_operand = [&](const Token* side) {
        if (side == nullptr) return false;
        if (is_float_literal(*side)) return true;
        return side->kind == TokKind::kIdentifier &&
               float_names.count(side->text) > 0;
      };
      if (!is_float_operand(i > 0 ? &lx.tokens[i - 1] : nullptr) &&
          !is_float_operand(at(i + 1))) {
        continue;
      }
      emit(t.line, "RL005",
           "floating-point '" + t.text +
               "' in clustering metrics — exact equality on similarity "
               "scores is input-perturbation-fragile",
           "compare std::abs(a - b) against an explicit epsilon, or make "
           "the sentinel an integer");
    }
  }

  // RL008 — atomics audit: every explicit weakening of the default
  // seq_cst ordering (and every volatile, which provides neither
  // atomicity nor ordering) must carry a written proof in an allow
  // annotation. Weak orders are correct exactly when someone has
  // argued why; this rule makes the argument a build artifact.
  void check_atomics_audit() {
    for (std::size_t i = 0; i < lx.tokens.size(); ++i) {
      const Token& t = lx.tokens[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "volatile") {
        emit(t.line, "RL008",
             "'volatile' — provides neither atomicity nor inter-thread "
             "ordering; concurrent state goes through std::atomic",
             "use std::atomic<> (default seq_cst), or annotate with "
             "// repro-lint: allow(RL008) <proof> if this is MMIO-style "
             "access the repo genuinely needs");
        continue;
      }
      std::string order;
      if (kWeakOrders.count(t.text) > 0) {
        order = t.text;
      } else if (t.text == "memory_order" && punct_at(i + 1, "::")) {
        const Token* tail = at(i + 2);
        if (tail != nullptr && tail->kind == TokKind::kIdentifier &&
            kWeakOrderTails.count(tail->text) > 0) {
          order = "memory_order::" + tail->text;
        }
      }
      if (order.empty()) continue;
      emit(t.line, "RL008",
           "explicit weak memory order '" + order +
               "' — non-seq_cst orderings are banned unless the line (or "
               "file) carries a written proof of why the weaker order is "
               "safe",
           "drop the argument to use the default seq_cst ordering, or "
           "annotate with // repro-lint: allow(RL008) <proof> (allow-file "
           "when one argument covers every site in the file)");
    }
  }
};

// ------------------------------------------- project rules (phase 2b)

/// Shared emit path for the index-backed rules: finds the lexed file a
/// diagnostic lands in so line and file-scope suppressions apply.
struct ProjectChecker {
  const ProjectIndex& index;
  const Options& options;
  std::vector<Diagnostic>& diagnostics;
  std::map<std::string, const LexedFile*, std::less<>> lexed_by_path;

  explicit ProjectChecker(const ProjectIndex& index_, const Options& options_,
                          std::vector<Diagnostic>& diagnostics_)
      : index(index_), options(options_), diagnostics(diagnostics_) {
    for (const IndexedFile& file : index.files()) {
      lexed_by_path.emplace(file.path, &file.lexed);
    }
  }

  void emit(const std::string& file, int line, std::string_view rule,
            std::string message, std::string suggestion) {
    if (!rule_enabled(options, rule)) return;
    const auto it = lexed_by_path.find(file);
    if (it != lexed_by_path.end() && suppressed(*it->second, line, rule)) {
      return;
    }
    diagnostics.push_back(Diagnostic{file, line, std::string{rule},
                                     std::move(message),
                                     std::move(suggestion)});
  }

  // RL007 — lock-order cycles. Build the acquisition graph (edge M -> N
  // when N is acquired while M is held, directly or through one level
  // of resolved calls), then flag every edge inside a strongly
  // connected component: those are the acquisitions that can deadlock.
  void check_lock_order() {
    struct Edge {
      std::string from;
      std::string to;
      std::string file;
      int line = 0;
      std::string via;  // callee qualified name, "" for direct nesting
    };
    std::vector<Edge> edges;
    for (const FunctionInfo& fn : index.functions()) {
      for (const LockScope& held : fn.locks) {
        for (const LockScope& inner : fn.locks) {
          if (inner.begin <= held.begin || inner.begin >= held.end) continue;
          edges.push_back(
              Edge{held.mutex, inner.mutex, fn.file, inner.line, ""});
        }
        for (const CallSite& call : fn.calls) {
          if (call.token <= held.begin || call.token >= held.end) continue;
          const FunctionInfo* callee = index.resolve(call);
          if (callee == nullptr || callee == &fn) continue;
          for (const std::string& target : index.direct_locks(*callee)) {
            edges.push_back(Edge{held.mutex, target, fn.file, call.line,
                                 callee->qualified_name});
          }
        }
      }
    }

    // Strongly connected components over the mutex graph (iterative
    // Tarjan). Any SCC of size > 1, or any self-edge, is a cycle.
    std::map<std::string, std::vector<std::string>> adjacency;
    for (const Edge& e : edges) adjacency[e.from].push_back(e.to);
    std::map<std::string, int> component;
    {
      std::map<std::string, int> order_of;
      std::map<std::string, int> low_of;
      std::map<std::string, bool> on_stack;
      std::vector<std::string> stack;
      int order = 0;
      int components = 0;
      struct Frame {
        std::string node;
        std::size_t next_child = 0;
      };
      for (const auto& [root, unused] : adjacency) {
        (void)unused;
        if (order_of.count(root) > 0) continue;
        std::vector<Frame> frames{Frame{root, 0}};
        while (!frames.empty()) {
          Frame& frame = frames.back();
          const std::string node = frame.node;
          if (frame.next_child == 0 && order_of.count(node) == 0) {
            order_of[node] = low_of[node] = order++;
            stack.push_back(node);
            on_stack[node] = true;
          }
          bool descended = false;
          const auto adj_it = adjacency.find(node);
          if (adj_it != adjacency.end()) {
            while (frame.next_child < adj_it->second.size()) {
              const std::string& child = adj_it->second[frame.next_child++];
              if (order_of.count(child) == 0) {
                frames.push_back(Frame{child, 0});
                descended = true;
                break;
              }
              if (on_stack[child]) {
                low_of[node] = std::min(low_of[node], order_of[child]);
              }
            }
          }
          if (descended) continue;
          if (low_of[node] == order_of[node]) {
            for (;;) {
              const std::string popped = stack.back();
              stack.pop_back();
              on_stack[popped] = false;
              component[popped] = components;
              if (popped == node) break;
            }
            ++components;
          }
          frames.pop_back();
          if (!frames.empty()) {
            low_of[frames.back().node] =
                std::min(low_of[frames.back().node], low_of[node]);
          }
        }
      }
    }
    std::map<int, std::size_t> scc_size;
    for (const auto& [node, c] : component) ++scc_size[c];

    for (const Edge& e : edges) {
      const bool self_cycle = e.from == e.to;
      const auto from_it = component.find(e.from);
      const auto to_it = component.find(e.to);
      const bool in_cycle =
          self_cycle ||
          (from_it != component.end() && to_it != component.end() &&
           from_it->second == to_it->second &&
           scc_size[from_it->second] > 1);
      if (!in_cycle) continue;
      std::string message =
          self_cycle
              ? "mutex '" + e.from + "' acquired again while already held"
              : "lock-order cycle: '" + e.to + "' acquired while '" +
                    e.from + "' is held, and the reverse order exists "
                    "elsewhere in the acquisition graph";
      if (!e.via.empty()) message += " (via call to " + e.via + "())";
      emit(e.file, e.line, "RL007", std::move(message),
           "acquire mutexes in one documented order everywhere (see the "
           "lock hierarchy in DESIGN.md §9), or narrow one guard so the "
           "scopes never nest");
    }
  }

  // RL009 — no blocking calls under a held lock, directly or through
  // one level of resolved intra-project calls.
  void check_blocking_under_lock() {
    for (const FunctionInfo& fn : index.functions()) {
      for (const LockScope& held : fn.locks) {
        for (const BlockingOp& op : fn.blocking) {
          if (op.token <= held.begin || op.token >= held.end) continue;
          emit(fn.file, op.line, "RL009",
               "blocking '" + op.what + "' while holding '" + held.mutex +
                   "' — stalls every thread contending on the lock and "
                   "invites deadlock on the serve/WAL hot paths",
               "hoist the blocking operation out of the critical section: "
               "copy what it needs under the lock, unlock, then block");
        }
        for (const CallSite& call : fn.calls) {
          if (call.token <= held.begin || call.token >= held.end) continue;
          const FunctionInfo* callee = index.resolve(call);
          if (callee == nullptr || callee == &fn || callee->blocking.empty()) {
            continue;
          }
          emit(fn.file, call.line, "RL009",
               "call to " + callee->qualified_name + "() performs blocking '" +
                   callee->blocking.front().what + "' while '" + held.mutex +
                   "' is held",
               "hoist the call out of the critical section: copy what it "
               "needs under the lock, unlock, then call");
        }
      }
    }
  }

  // RL010 — durability ordering on the crash-safety paths: every rename
  // must see an fsync of the written file before it and a directory
  // fsync after it, in the same function (an fsync inside a directly
  // called project function counts — that is how fsync_or_throw and
  // fsync_dir factor the protocol).
  void check_durability_ordering() {
    const auto fsyncs_directly = [](const FunctionInfo& fn) {
      return std::any_of(fn.durability.begin(), fn.durability.end(),
                         [](const DurabilityOp& op) {
                           return op.kind == DurabilityOp::Kind::kFsync;
                         });
    };
    for (const FunctionInfo& fn : index.functions()) {
      if (!in_dir(fn.file, "ingest") && !in_dir(fn.file, "snapshot")) {
        continue;
      }
      for (const DurabilityOp& op : fn.durability) {
        if (op.kind != DurabilityOp::Kind::kRename) continue;
        const auto fsync_on_side = [&](bool before) {
          for (const DurabilityOp& other : fn.durability) {
            if (other.kind != DurabilityOp::Kind::kFsync) continue;
            if (before ? other.token < op.token : other.token > op.token) {
              return true;
            }
          }
          for (const CallSite& call : fn.calls) {
            if (before ? call.token >= op.token : call.token <= op.token) {
              continue;
            }
            const FunctionInfo* callee = index.resolve(call);
            if (callee != nullptr && callee != &fn &&
                fsyncs_directly(*callee)) {
              return true;
            }
          }
          return false;
        };
        if (!fsync_on_side(/*before=*/true)) {
          emit(fn.file, op.line, "RL010",
               "rename in " + fn.qualified_name +
                   "() without a preceding fsync of the written file — a "
                   "crash can publish the final name over unsynced bytes",
               "fsync the written file (or call a helper that does, e.g. "
               "fsync_or_throw) before the rename, as in snapshot "
               "atomic_write");
        }
        if (!fsync_on_side(/*before=*/false)) {
          emit(fn.file, op.line, "RL010",
               "rename in " + fn.qualified_name +
                   "() not followed by a directory fsync — the directory "
                   "entry itself can vanish in a crash after the rename",
               "fsync the parent directory (or call a helper that does, "
               "e.g. fsync_dir) after the rename, as in snapshot "
               "atomic_write");
        }
      }
    }
  }
};

void sort_and_dedupe(std::vector<Diagnostic>& diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  diagnostics.erase(
      std::unique(diagnostics.begin(), diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      diagnostics.end());
}

bool excluded(const Options& options, const std::string& path) {
  for (const std::string& needle : options.excludes) {
    if (path.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> rule_catalog() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const RuleDef& rule : kRules) {
    out.emplace_back(std::string{rule.id}, std::string{rule.summary});
  }
  return out;
}

std::vector<Diagnostic> lint_project(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const Options& options) {
  std::vector<std::pair<std::string, std::string>> kept;
  kept.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    if (!excluded(options, normalized(path))) kept.emplace_back(path, content);
  }
  const ProjectIndex index = ProjectIndex::build(kept);
  std::vector<Diagnostic> diagnostics;
  for (const IndexedFile& file : index.files()) {
    Checker checker{file.path, file.lexed, options, diagnostics};
    checker.check_parse_calls();
    checker.check_nondeterminism();
    checker.check_chrono_quarantine();
    checker.check_unordered_iteration();
    checker.check_raw_throws();
    checker.check_float_equality();
    checker.check_atomics_audit();
  }
  ProjectChecker project{index, options, diagnostics};
  project.check_lock_order();
  project.check_blocking_under_lock();
  project.check_durability_ordering();
  sort_and_dedupe(diagnostics);
  return diagnostics;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    std::string_view content,
                                    const Options& options) {
  return lint_project({{path, std::string{content}}}, options);
}

namespace {

bool lintable_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string read_file_or_throw(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    // RL004's own discipline applies to the linter too: an unreadable
    // input is an OS-level failure, so it surfaces as the typed IoError.
    throw IoError("repro-lint: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> lint_paths(
    const std::vector<std::filesystem::path>& paths, const Options& options) {
  std::vector<std::filesystem::path> files;
  for (const std::filesystem::path& path : paths) {
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable_extension(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    const std::string path = file.generic_string();
    if (excluded(options, normalized(path))) continue;
    sources.emplace_back(path, read_file_or_throw(file));
  }
  return lint_project(sources, options);
}

std::vector<Diagnostic> lint_path(const std::filesystem::path& path,
                                  const Options& options) {
  return lint_paths({path}, options);
}

std::string diagnostics_to_json(const std::vector<Diagnostic>& diagnostics) {
  std::map<std::string, std::size_t> counts;
  for (const auto& [id, summary] : rule_catalog()) {
    (void)summary;
    counts[id] = 0;
  }
  for (const Diagnostic& d : diagnostics) ++counts[d.rule];

  std::string out = "{\n  \"tool\": \"repro-lint\",\n  \"version\": 2,\n";
  out += "  \"total\": " + std::to_string(diagnostics.size()) + ",\n";
  out += "  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : counts) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escaped(rule) + "\": " + std::to_string(count);
    first = false;
  }
  out += "\n  },\n  \"diagnostics\": [";
  first = true;
  for (const Diagnostic& d : diagnostics) {
    out += first ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escaped(d.file) + "\", ";
    out += "\"line\": " + std::to_string(d.line) + ", ";
    out += "\"rule\": \"" + json_escaped(d.rule) + "\", ";
    out += "\"message\": \"" + json_escaped(d.message) + "\", ";
    out += "\"suggestion\": \"" + json_escaped(d.suggestion) + "\"}";
    first = false;
  }
  out += diagnostics.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::vector<Diagnostic> apply_baseline(std::vector<Diagnostic> diagnostics,
                                       std::string_view baseline_text) {
  struct Entry {
    std::string rule;
    std::string file_suffix;
    std::string message;
  };
  std::vector<Entry> entries;
  std::size_t start = 0;
  while (start <= baseline_text.size()) {
    std::size_t end = baseline_text.find('\n', start);
    if (end == std::string_view::npos) end = baseline_text.size();
    const std::string_view line =
        trimmed(baseline_text.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line.front() == '#') {
      if (end == baseline_text.size()) break;
      continue;
    }
    const std::size_t first = line.find('|');
    const std::size_t second =
        first == std::string_view::npos ? std::string_view::npos
                                        : line.find('|', first + 1);
    if (second == std::string_view::npos) {
      if (end == baseline_text.size()) break;
      continue;  // malformed line: never silently suppress by accident
    }
    entries.push_back(Entry{std::string{line.substr(0, first)},
                            std::string{line.substr(first + 1,
                                                    second - first - 1)},
                            std::string{line.substr(second + 1)}});
    if (end == baseline_text.size()) break;
  }
  const auto matches = [&](const Diagnostic& d) {
    for (const Entry& entry : entries) {
      if (d.rule != entry.rule || d.message != entry.message) continue;
      if (d.file == entry.file_suffix || d.file.ends_with(entry.file_suffix)) {
        return true;
      }
    }
    return false;
  };
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(), matches),
      diagnostics.end());
  return diagnostics;
}

std::string diagnostics_to_baseline(const std::vector<Diagnostic>& diagnostics,
                                    std::string_view strip_prefix) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    std::string file = d.file;
    if (!strip_prefix.empty() && file.rfind(strip_prefix, 0) == 0) {
      file.erase(0, strip_prefix.size());
    }
    out += d.rule + "|" + file + "|" + d.message + "\n";
  }
  return out;
}

int run_cli(int argc, const char* const* argv) {
  Options options;
  bool fix_suggestions = false;
  bool emit_baseline = false;
  std::string format = "text";
  std::string baseline_path;
  std::vector<std::filesystem::path> paths;
  const auto split_rules = [&](std::string_view list) {
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view rule = trimmed(
          comma == std::string_view::npos ? list : list.substr(0, comma));
      if (!rule.empty()) options.only.emplace(rule);
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--emit-baseline") {
      emit_baseline = true;
    } else if (arg.rfind("--only=", 0) == 0) {
      split_rules(arg.substr(7));
    } else if (arg == "--only" && i + 1 < argc) {
      split_rules(argv[++i]);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = std::string{arg.substr(9)};
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = std::string{arg.substr(11)};
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg.rfind("--exclude=", 0) == 0) {
      options.excludes.emplace_back(arg.substr(10));
    } else if (arg == "--exclude" && i + 1 < argc) {
      options.excludes.emplace_back(argv[++i]);
    } else if (arg == "--list-rules") {
      for (const auto& [id, summary] : rule_catalog()) {
        std::cout << id << "  " << summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: repro_lint [--fix-suggestions] [--only=RL001,...]\n"
             "                  [--format=text|json] [--baseline=FILE]\n"
             "                  [--exclude=SUBSTR]... [--emit-baseline]\n"
             "                  [--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "repro-lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: repro_lint [--fix-suggestions] [--only=RL001,...] "
                 "[--format=text|json] [--baseline=FILE] <file-or-dir>...\n";
    return 2;
  }
  if (format != "text" && format != "json") {
    std::cerr << "repro-lint: unknown format '" << format << "'\n";
    return 2;
  }

  std::vector<Diagnostic> diagnostics;
  try {
    diagnostics = lint_paths(paths, options);
    if (!baseline_path.empty()) {
      diagnostics = apply_baseline(
          diagnostics,
          read_file_or_throw(std::filesystem::path{baseline_path}));
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }

  if (emit_baseline) {
    std::cout << diagnostics_to_baseline(diagnostics);
    return diagnostics.empty() ? 0 : 1;
  }
  if (format == "json") {
    std::cout << diagnostics_to_json(diagnostics);
  } else {
    for (const Diagnostic& d : diagnostics) {
      std::cout << d.file << ":" << d.line << ": " << d.rule << ": "
                << d.message << "\n";
      if (fix_suggestions && !d.suggestion.empty()) {
        std::cout << "    suggestion: " << d.suggestion << "\n";
      }
    }
  }
  // Per-rule counts on stderr in every mode, so a CI log shows at a
  // glance which rule regressed even when the JSON went to an artifact.
  std::map<std::string, std::size_t> counts;
  for (const Diagnostic& d : diagnostics) ++counts[d.rule];
  for (const auto& [rule, count] : counts) {
    std::cerr << "repro-lint: " << rule << ": " << count << "\n";
  }
  if (diagnostics.empty()) {
    std::cerr << "repro-lint: clean\n";
    return 0;
  }
  std::cerr << "repro-lint: " << diagnostics.size() << " diagnostic(s)\n";
  return 1;
}

}  // namespace repro::lint
