// Lexer-lite tokenizer shared by both analyzer phases.
//
// Phase 1 (tools/repro_lint/index.*) builds the cross-TU index from
// these token streams; phase 2 (lint.cpp) runs the per-file rules over
// the same stream. The lexer strips comments, collapses string/char
// literals to empty placeholders (so literal contents never reach a
// rule), and records suppression comments:
//
//   // repro-lint: allow(RL001, RL002) reason
//     silences the named rule(s) on its own line, or on the next line
//     when the comment stands alone.
//   // repro-lint: allow-file(RL008) reason
//     silences the named rule(s) for the whole file — used where one
//     written argument genuinely covers every site in the file (e.g. a
//     bank of independent relaxed statistic counters).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace repro::lint {

enum class TokKind { kIdentifier, kNumber, kString, kCharLit, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line -> rule ids allowed on that line by inline suppressions.
  std::map<int, std::set<std::string, std::less<>>> allows;
  /// rule ids allowed for the whole file by allow-file suppressions.
  std::set<std::string, std::less<>> file_allows;
};

[[nodiscard]] LexedFile lex(std::string_view src);

/// Strips leading and trailing whitespace.
[[nodiscard]] std::string_view trimmed(std::string_view text);

}  // namespace repro::lint
