// Phase 1 of repro-lint v2: the cross-TU project index.
//
// The concurrency/durability rules (RL007–RL010) cannot be answered
// from one token stream in isolation: whether `seal()` holds a lock
// while calling `fsync_dir()` depends on what both functions do, and a
// lock-order cycle is by definition a property of the whole program.
// This index is the shared substrate those rules query:
//
//   - every function definition, with a qualified name built from the
//     enclosing class/struct scopes (`ThreadPool::work_on`,
//     `BoundedQueue::offer`) and its body token range;
//   - every `std::mutex` member/global declaration, qualified the same
//     way, so two classes both naming a member `mutex_` stay distinct;
//   - every lock-guard scope (`lock_guard`, `unique_lock`,
//     `scoped_lock`, `shared_lock`): which mutex it acquires, resolved
//     against the declarations, and the token range it covers (to the
//     end of the enclosing brace block);
//   - every call site by bare callee name, resolved to a unique indexed
//     function where possible (same-class candidates win; ambiguous
//     bare names resolve only if all candidates agree);
//   - per-function "direct effect" summaries the rules consume: which
//     mutexes a function acquires, whether it performs a blocking
//     syscall, an fsync, or a rename.
//
// Resolution is deliberately name-based (no types, no overloads): the
// repo's style — distinct member names per class, one definition per
// qualified name — makes this reliable, and the index tests pin the
// collision behavior (ambiguous names resolve to nothing rather than
// to the wrong TU).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace repro::lint {

/// One mutex acquisition scope inside a function body.
struct LockScope {
  std::string mutex;        ///< resolved mutex id, e.g. "ThreadPool::queue_mutex_"
  std::string raw_name;     ///< last identifier of the guard expression
  int line = 0;             ///< line of the guard declaration
  std::size_t begin = 0;    ///< token index of the guard declaration
  std::size_t end = 0;      ///< one past the last token the lock covers
};

/// One call site inside a function body.
struct CallSite {
  std::string name;         ///< bare callee name as written
  int callee = -1;          ///< index into ProjectIndex::functions, -1 unresolved
  int line = 0;
  std::size_t token = 0;    ///< token index of the callee name
  bool member = false;      ///< preceded by `.` or `->`
};

/// One direct blocking operation (RL009's primitive events).
struct BlockingOp {
  std::string what;         ///< e.g. "fsync", "filesystem::rename", "wait without predicate"
  int line = 0;
  std::size_t token = 0;
};

/// One rename/fsync event on the durability path (RL010's primitives).
struct DurabilityOp {
  enum class Kind { kFsync, kRename } kind = Kind::kFsync;
  int line = 0;
  std::size_t token = 0;
};

struct FunctionInfo {
  std::string name;            ///< bare name, e.g. "work_on"
  std::string qualified_name;  ///< e.g. "ThreadPool::work_on"
  std::string class_name;      ///< enclosing class path, "" for free functions
  std::string file;
  int line = 0;
  std::size_t body_begin = 0;  ///< token index of the opening `{`
  std::size_t body_end = 0;    ///< token index of the matching `}`
  std::vector<LockScope> locks;
  std::vector<CallSite> calls;
  std::vector<BlockingOp> blocking;
  std::vector<DurabilityOp> durability;
};

struct MutexDecl {
  std::string qualified_name;  ///< e.g. "BoundedQueue::mutex_"
  std::string member_name;     ///< e.g. "mutex_"
  std::string file;
  int line = 0;
};

/// One file's lexed stream plus where its functions live, kept so the
/// per-file rules and the project rules share a single lex pass.
struct IndexedFile {
  std::string path;            ///< normalized (forward slashes)
  LexedFile lexed;
  std::vector<int> functions;  ///< indices into ProjectIndex::functions
};

class ProjectIndex {
 public:
  /// Builds the index over a set of (path, content) translation units.
  /// Paths are normalized to forward slashes.
  static ProjectIndex build(
      const std::vector<std::pair<std::string, std::string>>& sources);

  [[nodiscard]] const std::vector<IndexedFile>& files() const {
    return files_;
  }
  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  [[nodiscard]] const std::vector<MutexDecl>& mutexes() const {
    return mutexes_;
  }

  /// Function lookup by bare name: indices of every candidate.
  [[nodiscard]] std::vector<int> functions_named(std::string_view name) const;

  /// The function (if any) a call site resolves to, or nullptr.
  [[nodiscard]] const FunctionInfo* resolve(const CallSite& call) const;

  /// Mutex ids `fn` acquires directly (its own guard scopes).
  [[nodiscard]] std::set<std::string> direct_locks(const FunctionInfo& fn) const;

 private:
  void index_file(IndexedFile& file);
  void index_body(FunctionInfo& fn, const std::vector<Token>& tokens,
                  const std::vector<std::size_t>& match);
  void resolve_calls();
  void resolve_lock_names(IndexedFile& file);

  std::vector<IndexedFile> files_;
  std::vector<FunctionInfo> functions_;
  std::vector<MutexDecl> mutexes_;
  std::map<std::string, std::vector<int>, std::less<>> functions_by_name_;
  std::map<std::string, std::vector<int>, std::less<>> mutexes_by_member_;
};

}  // namespace repro::lint
