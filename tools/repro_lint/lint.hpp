// repro-lint: a repo-specific determinism, error-handling and
// concurrency/durability linter.
//
// The reproduction's value rests on bit-identical pipeline output and
// on crash guarantees that survive a 17-month-style live deployment,
// so a handful of C++ constructs that are merely stylistic elsewhere
// are correctness bugs here. This tool enforces them as named,
// suppressible rules in two phases: phase 1 builds a cross-TU project
// index (per-function token streams, mutex declarations, lock-guard
// scopes, call edges by qualified name — see index.hpp), phase 2 runs
// the rules over it (no libclang dependency):
//
//   RL001  unchecked numeric parsing (std::stoi/atoi/strtol/sscanf
//          family) — use the checked repro::parse_* wrappers
//          (util/parse.hpp) that throw ParseError.
//   RL002  wall-clock / global-RNG nondeterminism (time(), rand(),
//          std::random_device, std::chrono clocks) outside util/rng
//          and util/simtime.
//   RL003  range-for over unordered_{map,set} in export-path
//          directories (src/io, src/report, src/snapshot, src/cluster,
//          src/ingest, src/serve) — iteration order leaks into
//          serialized bytes; use repro::sorted_keys/sorted_items
//          (util/sorted.hpp).
//   RL004  raw std:: exception throws (std::runtime_error,
//          std::invalid_argument, ...) — translate to ParseError /
//          ConfigError / IoError so parse boundaries stay typed.
//   RL005  floating-point == / != in clustering metrics (src/cluster)
//          — compare against an epsilon.
//   RL006  direct <chrono> use (the include itself, or any chrono::
//          qualified name) outside src/obs and util/simtime — all wall-
//          clock access goes through the audited obs/stopwatch seam so
//          timing can never leak into deterministic output.
//   RL007  lock-order cycles — the lock acquisition graph (which
//          mutexes are acquired while which others are held, across
//          one level of call edges) must stay acyclic; a cycle is a
//          potential deadlock between the pool, queues, WAL and serve
//          workers.
//   RL008  atomics audit — explicit non-seq_cst memory orders and
//          `volatile` are banned outside an annotated allowlist
//          (`// repro-lint: allow(RL008) <proof>`), so every relaxed
//          ordering carries a written argument.
//   RL009  no blocking calls under a lock — fsync/read/write/accept/
//          sleep_ms/std::filesystem I/O and condition-variable waits
//          without a predicate inside a held lock-guard scope
//          (including via one level of intra-project call indirection).
//   RL010  durability ordering — in src/ingest and src/snapshot every
//          rename must be dominated by an fsync of the written file in
//          the same function and followed by a directory fsync (the
//          WAL's crash-safety protocol as a checkable state machine).
//
// Inline suppression: `// repro-lint: allow(RL001) reason` silences the
// named rule(s) on its own line, or on the next line when the comment
// stands alone; `// repro-lint: allow-file(RL008) reason` silences a
// rule for the whole file when one written argument covers every site.
// Diagnostics are GCC-style `file:line: RLxxx: message`, or a sorted,
// byte-stable JSON document under --format=json.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace repro::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;        // "RL001" .. "RL010"
  std::string message;
  std::string suggestion;  // printed by --fix-suggestions
};

struct Options {
  /// When non-empty, only these rule ids are checked.
  std::set<std::string, std::less<>> only;
  /// Files whose normalized path contains any of these substrings are
  /// skipped entirely (e.g. the golden corpus under tests/lint).
  std::vector<std::string> excludes;
};

/// All rule ids this build knows, with a one-line description each.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> rule_catalog();

/// Lints one in-memory translation unit. `path` supplies the directory
/// context rules RL003/RL005/RL010 key on; it is not opened. The
/// project rules (RL007–RL010) run over a single-file index, so call
/// edges resolve within this TU only.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  std::string_view content,
                                                  const Options& options = {});

/// Two-phase lint over a set of in-memory translation units: builds the
/// cross-TU index once, then runs every rule. Diagnostics come back
/// sorted by (file, line, rule, message).
[[nodiscard]] std::vector<Diagnostic> lint_project(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const Options& options = {});

/// Lints a file or directory tree (*.cpp, *.cc, *.hpp, *.h), reading
/// from disk. All files under every path form one project index, so
/// cross-TU call edges resolve across the whole tree. Throws
/// repro::IoError when a file cannot be read.
[[nodiscard]] std::vector<Diagnostic> lint_path(
    const std::filesystem::path& path, const Options& options = {});

/// Like lint_path but over several roots sharing one project index.
[[nodiscard]] std::vector<Diagnostic> lint_paths(
    const std::vector<std::filesystem::path>& paths,
    const Options& options = {});

/// Machine-readable diagnostics: a single JSON document with the
/// diagnostics sorted by (file, line, rule, message) and a per-rule
/// count summary. Byte-stable: same diagnostics, same bytes — no
/// timestamps, no environment, fixed key order.
[[nodiscard]] std::string diagnostics_to_json(
    const std::vector<Diagnostic>& diagnostics);

/// One baseline entry per line: `rule|path-suffix|message`. Diagnostics
/// matching an entry (rule and message exactly, file by path suffix)
/// are suppressed; `#` lines and blank lines are ignored.
[[nodiscard]] std::vector<Diagnostic> apply_baseline(
    std::vector<Diagnostic> diagnostics, std::string_view baseline_text);

/// Renders diagnostics in the baseline format accepted by
/// apply_baseline, with `strip_prefix` removed from file paths so the
/// committed baseline stays machine-independent.
[[nodiscard]] std::string diagnostics_to_baseline(
    const std::vector<Diagnostic>& diagnostics,
    std::string_view strip_prefix = {});

/// The `repro_lint` CLI: returns 0 when clean, 1 when diagnostics were
/// emitted, 2 on usage or I/O errors.
int run_cli(int argc, const char* const* argv);

}  // namespace repro::lint
