// repro-lint: a repo-specific determinism & error-handling linter.
//
// The reproduction's value rests on bit-identical pipeline output, so a
// handful of C++ constructs that are merely stylistic elsewhere are
// correctness bugs here. This tool enforces them as named, suppressible
// rules over a lexer-lite token stream (no libclang dependency):
//
//   RL001  unchecked numeric parsing (std::stoi/atoi/strtol/sscanf
//          family) — use the checked repro::parse_* wrappers
//          (util/parse.hpp) that throw ParseError.
//   RL002  wall-clock / global-RNG nondeterminism (time(), rand(),
//          std::random_device, std::chrono clocks) outside util/rng
//          and util/simtime.
//   RL003  range-for over unordered_{map,set} in export-path
//          directories (src/io, src/report, src/snapshot) — iteration
//          order leaks into serialized bytes; use
//          repro::sorted_keys/sorted_items (util/sorted.hpp).
//   RL004  raw std:: exception throws (std::runtime_error,
//          std::invalid_argument, ...) — translate to ParseError /
//          ConfigError / IoError so parse boundaries stay typed.
//   RL005  floating-point == / != in clustering metrics (src/cluster)
//          — compare against an epsilon.
//   RL006  direct <chrono> use (the include itself, or any chrono::
//          qualified name) outside src/obs and util/simtime — all wall-
//          clock access goes through the audited obs/stopwatch seam so
//          timing can never leak into deterministic output.
//
// Inline suppression: `// repro-lint: allow(RL001) reason` silences the
// named rule(s) on its own line, or on the next line when the comment
// stands alone. Diagnostics are GCC-style `file:line: RLxxx: message`.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace repro::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;        // "RL001" .. "RL006"
  std::string message;
  std::string suggestion;  // printed by --fix-suggestions
};

struct Options {
  /// When non-empty, only these rule ids are checked.
  std::set<std::string, std::less<>> only;
};

/// All rule ids this build knows, with a one-line description each.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> rule_catalog();

/// Lints one in-memory translation unit. `path` supplies the directory
/// context rules RL003/RL005 key on; it is not opened.
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  std::string_view content,
                                                  const Options& options = {});

/// Lints a file or directory tree (*.cpp, *.cc, *.hpp, *.h), reading
/// from disk. Throws std::runtime_error when a file cannot be read.
[[nodiscard]] std::vector<Diagnostic> lint_path(
    const std::filesystem::path& path, const Options& options = {});

/// The `repro_lint` CLI: returns 0 when clean, 1 when diagnostics were
/// emitted, 2 on usage or I/O errors.
int run_cli(int argc, const char* const* argv);

}  // namespace repro::lint
